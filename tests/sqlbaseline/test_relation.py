"""Unit tests for the relational storage layer."""

import pytest

from repro.sqlbaseline import Relation, RelationalDatabase, SchemaError


class TestRelation:
    def test_insert_and_scan(self):
        r = Relation("V", ["vid", "label"])
        r.insert(("n1", "A"))
        r.insert_many([("n2", "B"), ("n3", "A")])
        assert len(r) == 3
        assert [row for _, row in r.scan()] == [
            ("n1", "A"), ("n2", "B"), ("n3", "A"),
        ]

    def test_arity_checked(self):
        r = Relation("V", ["vid", "label"])
        with pytest.raises(SchemaError):
            r.insert(("only-one",))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Relation("T", ["a", "a"])

    def test_column_position(self):
        r = Relation("V", ["vid", "label"])
        assert r.column_position("label") == 1
        with pytest.raises(SchemaError):
            r.column_position("missing")

    def test_index_lookup(self):
        r = Relation("V", ["vid", "label"])
        r.insert_many([("n1", "A"), ("n2", "B"), ("n3", "A")])
        r.create_index("label")
        assert sorted(r.index_lookup("label", "A")) == [0, 2]
        assert r.index_lookup("label", "Z") == []
        with pytest.raises(SchemaError):
            r.index_lookup("vid", "n1")  # not indexed

    def test_index_maintained_on_insert(self):
        r = Relation("V", ["vid", "label"])
        r.create_index("label")
        r.insert(("n1", "A"))
        assert r.index_lookup("label", "A") == [0]

    def test_index_range(self):
        r = Relation("T", ["k"])
        r.insert_many([(3,), (1,), (7,)])
        r.create_index("k")
        assert sorted(r.index_range("k", 2, 7)) == [0, 2]


class TestDatabase:
    def test_create_and_lookup(self):
        db = RelationalDatabase()
        db.create_table("T", ["a"])
        assert db.has_table("T")
        assert db.tables() == ["T"]
        assert db.table("T").columns == ["a"]

    def test_duplicate_table_rejected(self):
        db = RelationalDatabase()
        db.create_table("T", ["a"])
        with pytest.raises(SchemaError):
            db.create_table("T", ["b"])

    def test_drop(self):
        db = RelationalDatabase()
        db.create_table("T", ["a"])
        db.drop_table("T")
        assert not db.has_table("T")
        with pytest.raises(SchemaError):
            db.drop_table("T")
