"""Unit tests for the SQL parser, engine and graph translator."""

import pytest

from repro.core import GroundPattern
from repro.core.motif import SimpleMotif
from repro.matching import find_matches
from repro.sqlbaseline import (
    ColumnRef,
    ExecutionStats,
    RelationalDatabase,
    SQLEngine,
    SQLGraphMatcher,
    SQLSyntaxError,
    TranslationError,
    WorkBudgetExceeded,
    load_graph,
    parse_sql,
    pattern_to_sql,
)


class TestParser:
    def test_fig_4_2_query_parses(self):
        query = parse_sql("""
            SELECT V1.vid, V2.vid, V3.vid
            FROM V AS V1, V AS V2, V AS V3, E AS E1, E AS E2, E AS E3
            WHERE V1.label = 'A' AND V2.label = 'B' AND V3.label = 'C'
              AND V1.vid = E1.vid1 AND V1.vid = E3.vid1
              AND V2.vid = E1.vid2 AND V2.vid = E2.vid1
              AND V3.vid = E2.vid2 AND V3.vid = E3.vid2
              AND V1.vid <> V2.vid AND V1.vid <> V3.vid
              AND V2.vid <> V3.vid;
        """)
        assert len(query.tables) == 6
        assert len(query.where) == 12
        assert query.select == [
            ColumnRef("V1", "vid"), ColumnRef("V2", "vid"), ColumnRef("V3", "vid"),
        ]

    def test_select_star(self):
        query = parse_sql("SELECT * FROM T AS t")
        assert query.select_star

    def test_alias_without_as(self):
        query = parse_sql("SELECT t.a FROM T t WHERE t.a = 1")
        assert query.tables == [("T", "t")]

    def test_numeric_and_string_literals(self):
        query = parse_sql("SELECT t.a FROM T t WHERE t.a > 3.5 AND t.b = 'x'")
        assert query.where[0].right == 3.5
        assert query.where[1].right == "x"

    def test_not_equals_normalized(self):
        query = parse_sql("SELECT t.a FROM T t WHERE t.a != 1")
        assert query.where[0].op == "<>"

    def test_syntax_errors(self):
        for bad in (
            "FROM T", "SELECT FROM T", "SELECT t.a FROM",
            "SELECT t.a FROM T WHERE", "SELECT bare FROM T t",
        ):
            with pytest.raises(SQLSyntaxError):
                parse_sql(bad)


class TestEngine:
    def make_db(self):
        db = RelationalDatabase()
        t = db.create_table("T", ["id", "val"])
        t.insert_many([(1, "a"), (2, "b"), (3, "a")])
        u = db.create_table("U", ["ref", "score"])
        u.insert_many([(1, 10), (1, 20), (3, 30)])
        for table, col in (("T", "id"), ("T", "val"), ("U", "ref")):
            db.table(table).create_index(col)
        return db

    def test_single_table_filter(self):
        engine = SQLEngine(self.make_db())
        rows = engine.execute("SELECT t.id FROM T t WHERE t.val = 'a'")
        assert sorted(rows) == [(1,), (3,)]

    def test_join(self):
        engine = SQLEngine(self.make_db())
        rows = engine.execute(
            "SELECT t.id, u.score FROM T t, U u WHERE t.id = u.ref"
        )
        assert sorted(rows) == [(1, 10), (1, 20), (3, 30)]

    def test_join_with_inequality(self):
        engine = SQLEngine(self.make_db())
        rows = engine.execute(
            "SELECT t.id, u.score FROM T t, U u "
            "WHERE t.id = u.ref AND u.score > 15"
        )
        assert sorted(rows) == [(1, 20), (3, 30)]

    def test_select_star_joins(self):
        engine = SQLEngine(self.make_db())
        rows = engine.execute(
            "SELECT * FROM T t, U u WHERE t.id = u.ref AND u.score = 30"
        )
        assert rows == [(3, "a", 3, 30)]

    def test_limit(self):
        engine = SQLEngine(self.make_db())
        rows = engine.execute("SELECT t.id FROM T t", limit=2)
        assert len(rows) == 2

    def test_stats_and_index_use(self):
        engine = SQLEngine(self.make_db())
        stats = ExecutionStats()
        engine.execute(
            "SELECT t.id FROM T t WHERE t.val = 'a'", stats=stats
        )
        assert stats.index_lookups >= 1
        assert stats.results == 2

    def test_work_budget(self):
        engine = SQLEngine(self.make_db())
        with pytest.raises(WorkBudgetExceeded):
            engine.execute(
                "SELECT t.id, u.score FROM T t, U u",  # cross product
                max_rows_examined=3,
            )

    def test_constant_false_predicate(self):
        engine = SQLEngine(self.make_db())
        rows = engine.execute("SELECT t.id FROM T t WHERE t.id = 99")
        assert rows == []

    def test_greedy_join_order(self):
        engine = SQLEngine(self.make_db(), join_order="greedy")
        rows = engine.execute(
            "SELECT t.id, u.score FROM U u, T t "
            "WHERE t.id = u.ref AND t.val = 'a'"
        )
        assert sorted(rows) == [(1, 10), (1, 20), (3, 30)]

    def test_unknown_alias_rejected(self):
        engine = SQLEngine(self.make_db())
        from repro.sqlbaseline import SchemaError

        with pytest.raises(SchemaError):
            engine.execute("SELECT z.id FROM T t")


class TestTranslator:
    def test_load_graph_doubles_undirected_edges(self, paper_graph):
        db = load_graph(paper_graph)
        assert len(db.table("V")) == 6
        assert len(db.table("E")) == 12  # 6 edges x 2 orientations

    def test_directed_graph_single_orientation(self):
        from repro.core import Graph

        g = Graph(directed=True)
        g.add_node("a", label="A")
        g.add_node("b", label="B")
        g.add_edge("a", "b")
        db = load_graph(g)
        assert len(db.table("E")) == 1

    def test_sql_text_shape(self, triangle_pattern):
        sql = pattern_to_sql(triangle_pattern)
        assert sql.count("V AS") == 3
        assert sql.count("E AS") == 3
        assert sql.count("<>") == 3

    def test_matches_equal_native(self, paper_graph, triangle_pattern):
        sql_matcher = SQLGraphMatcher(paper_graph)
        native = {frozenset(m.nodes.items())
                  for m in find_matches(triangle_pattern, paper_graph)}
        relational = {frozenset(m.nodes.items())
                      for m in sql_matcher.match(triangle_pattern)}
        assert native == relational

    def test_untranslatable_pattern_rejected(self):
        motif = SimpleMotif()
        motif.add_node("u", attrs={"label": "A", "extra": 1})
        with pytest.raises(TranslationError):
            pattern_to_sql(GroundPattern(motif))

    def test_residual_predicate_rejected(self):
        from repro.core.predicate import AttrRef, BinOp

        motif = SimpleMotif()
        motif.add_node("u1")
        motif.add_node("u2")
        where = BinOp("==", AttrRef(("u1", "label")), AttrRef(("u2", "label")))
        with pytest.raises(TranslationError):
            pattern_to_sql(GroundPattern(motif, where))
