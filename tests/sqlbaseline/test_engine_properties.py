"""Property tests: the SQL engine agrees with a naive reference evaluator.

Random conjunctive queries over random tables, executed by (a) the
engine's index-nested-loop pipeline under both join-order policies and
(b) a brute-force cross-product filter.  Result multisets must be equal.
"""

import itertools
import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlbaseline import (
    ColumnRef,
    Comparison,
    RelationalDatabase,
    SelectQuery,
    SQLEngine,
)

_OPS = ("=", "<>", "<", "<=", ">", ">=")


def _apply(op, left, right):
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def reference_execute(db, query):
    tables = [(db.table(name), alias) for name, alias in query.tables]
    columns = {alias: t.columns for t, alias in tables}

    def value(operand, row_by_alias):
        if isinstance(operand, ColumnRef):
            position = columns[operand.alias].index(operand.column)
            return row_by_alias[operand.alias][position]
        return operand

    results = []
    for combo in itertools.product(*[t.rows for t, _ in tables]):
        row_by_alias = {alias: row for (t, alias), row in zip(tables, combo)}
        if all(
            _apply(c.op, value(c.left, row_by_alias),
                   value(c.right, row_by_alias))
            for c in query.where
        ):
            results.append(tuple(
                value(ref, row_by_alias) for ref in query.select
            ))
    return results


def build_random_case(rng: random.Random):
    db = RelationalDatabase()
    aliases = []
    for t_index in range(rng.randint(1, 3)):
        name = f"T{t_index}"
        table = db.create_table(name, ["a", "b"])
        for _ in range(rng.randint(0, 6)):
            table.insert((rng.randint(0, 4), rng.randint(0, 4)))
        if rng.random() < 0.7:
            table.create_index("a")
        if rng.random() < 0.3:
            table.create_index("b")
        aliases.append((name, f"t{t_index}"))
    conditions = []
    for _ in range(rng.randint(0, 4)):
        left_alias = rng.choice(aliases)[1]
        left = ColumnRef(left_alias, rng.choice(["a", "b"]))
        if rng.random() < 0.5:
            right = rng.randint(0, 4)
        else:
            right_alias = rng.choice(aliases)[1]
            right = ColumnRef(right_alias, rng.choice(["a", "b"]))
        conditions.append(Comparison(rng.choice(_OPS), left, right))
    select = [ColumnRef(alias, "a") for _, alias in aliases]
    return db, SelectQuery(select, aliases, conditions)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_engine_matches_reference(seed):
    rng = random.Random(seed)
    db, query = build_random_case(rng)
    expected = Counter(reference_execute(db, query))
    for policy in ("from", "greedy"):
        got = Counter(SQLEngine(db, join_order=policy).execute(query))
        assert got == expected, policy


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_limit_is_prefix_of_full_result(seed):
    rng = random.Random(seed)
    db, query = build_random_case(rng)
    engine = SQLEngine(db)
    full = engine.execute(query)
    limited = engine.execute(query, limit=2)
    assert limited == full[: len(limited)]
    assert len(limited) <= 2
