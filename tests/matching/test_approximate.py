"""Unit and property tests for approximate (edge-tolerant) matching."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Graph, GroundPattern
from repro.core.motif import SimpleMotif, clique_motif
from repro.matching import find_matches
from repro.matching.approximate import find_approximate_matches


def near_clique_graph() -> Graph:
    """Labels A,B,C,D; the A-B-C-D 'clique' is missing the A-C edge."""
    g = Graph()
    for nid, label in [("a", "A"), ("b", "B"), ("c", "C"), ("d", "D")]:
        g.add_node(nid, label=label)
    for s, t in [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d"), ("b", "d")]:
        g.add_edge(s, t)
    return g


class TestApproximateMatching:
    def test_zero_budget_equals_exact(self, paper_graph, triangle_pattern):
        exact = {frozenset(m.nodes.items())
                 for m in find_matches(triangle_pattern, paper_graph)}
        approx = find_approximate_matches(triangle_pattern, paper_graph,
                                          max_missing_edges=0)
        assert {frozenset(m.mapping.nodes.items()) for m in approx} == exact
        assert all(m.similarity == 1.0 for m in approx)

    def test_one_missing_edge_found(self):
        graph = near_clique_graph()
        pattern = GroundPattern(clique_motif(["A", "B", "C", "D"]))
        assert find_matches(pattern, graph) == []  # not exactly there
        approx = find_approximate_matches(pattern, graph,
                                          max_missing_edges=1)
        assert len(approx) == 1
        match = approx[0]
        assert len(match.missing_edges) == 1
        assert match.matched_edges == 5
        assert match.similarity == 5 / 6

    def test_budget_respected(self):
        graph = near_clique_graph()
        graph.remove_edge(graph.edge_between("b", "d").id)  # two edges short
        pattern = GroundPattern(clique_motif(["A", "B", "C", "D"]))
        assert find_approximate_matches(pattern, graph,
                                        max_missing_edges=1) == []
        approx = find_approximate_matches(pattern, graph,
                                          max_missing_edges=2)
        assert len(approx) == 1
        assert len(approx[0].missing_edges) == 2

    def test_exact_matches_ranked_first(self, paper_graph):
        motif = SimpleMotif()
        motif.add_node("u1", attrs={"label": "A"})
        motif.add_node("u2", attrs={"label": "B"})
        motif.add_edge("u1", "u2")
        pattern = GroundPattern(motif)
        approx = find_approximate_matches(pattern, paper_graph,
                                          max_missing_edges=1)
        missing_counts = [len(m.missing_edges) for m in approx]
        assert missing_counts == sorted(missing_counts)
        assert missing_counts[0] == 0  # A1-B1 and A2-B2 exist exactly

    def test_node_constraints_stay_exact(self, paper_graph):
        motif = SimpleMotif()
        motif.add_node("u", attrs={"label": "Z"})  # no Z-labeled node
        pattern = GroundPattern(motif)
        assert find_approximate_matches(pattern, paper_graph,
                                        max_missing_edges=5) == []

    def test_limit(self, paper_graph):
        motif = SimpleMotif()
        motif.add_node("u1")
        motif.add_node("u2")
        motif.add_edge("u1", "u2")
        approx = find_approximate_matches(GroundPattern(motif), paper_graph,
                                          max_missing_edges=1, limit=3)
        assert len(approx) <= 3


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_budget_zero_equals_exact_on_random_graphs(seed):
    rng = random.Random(seed)
    graph = Graph()
    for i in range(rng.randint(3, 7)):
        graph.add_node(f"n{i}", label=rng.choice("AB"))
    ids = graph.node_ids()
    for _ in range(rng.randint(2, 10)):
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b)
    motif = SimpleMotif()
    for i in range(rng.randint(1, 3)):
        motif.add_node(f"u{i}", attrs={"label": rng.choice("AB")})
    names = motif.node_names()
    for _ in range(rng.randint(0, 3)):
        a, b = rng.choice(names), rng.choice(names)
        if a != b and not motif.edges_between(a, b):
            motif.add_edge(a, b)
    pattern = GroundPattern(motif)
    exact = {frozenset(m.nodes.items())
             for m in find_matches(pattern, graph)}
    approx = find_approximate_matches(pattern, graph, max_missing_edges=0)
    assert {frozenset(m.mapping.nodes.items()) for m in approx} == exact


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_larger_budget_is_superset(seed):
    rng = random.Random(seed)
    graph = Graph()
    for i in range(rng.randint(3, 6)):
        graph.add_node(f"n{i}", label=rng.choice("AB"))
    ids = graph.node_ids()
    for _ in range(rng.randint(1, 8)):
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b)
    motif = SimpleMotif()
    for i in range(rng.randint(2, 3)):
        motif.add_node(f"u{i}", attrs={"label": rng.choice("AB")})
    names = motif.node_names()
    for _ in range(rng.randint(1, 3)):
        a, b = rng.choice(names), rng.choice(names)
        if a != b and not motif.edges_between(a, b):
            motif.add_edge(a, b)
    pattern = GroundPattern(motif)
    tight = {frozenset(m.mapping.nodes.items())
             for m in find_approximate_matches(pattern, graph, 0)}
    loose = {frozenset(m.mapping.nodes.items())
             for m in find_approximate_matches(pattern, graph, 1)}
    assert tight <= loose
