"""Tests for whole-graph isomorphism."""

import random

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Graph
from repro.core.motif import cycle_motif, path_motif
from repro.interop import from_networkx
from repro.matching.isomorphism import (
    deduplicate_isomorphic,
    isomorphic,
    isomorphism_mapping,
)


def labeled(edges, labels):
    g = Graph()
    for node_id, label in labels.items():
        g.add_node(node_id, label=label)
    for a, b in edges:
        g.add_edge(a, b)
    return g


class TestIsomorphic:
    def test_relabeled_graph_is_isomorphic(self):
        g = cycle_motif(5).to_graph()
        h = g.relabeled({f"v{i + 1}": f"x{i}" for i in range(5)})
        assert isomorphic(g, h, attrs=())
        mapping = isomorphism_mapping(g, h, attrs=())
        assert mapping is not None and len(mapping) == 5

    def test_path_vs_cycle(self):
        # same node count; different edge count
        assert not isomorphic(path_motif(4).to_graph(),
                              cycle_motif(5).to_graph(), attrs=())

    def test_same_counts_different_structure(self):
        # star vs path: 4 nodes, 3 edges, different degree sequences
        star = labeled([("c", "a"), ("c", "b"), ("c", "d")],
                       {n: "X" for n in "abcd"})
        path = labeled([("a", "b"), ("b", "c"), ("c", "d")],
                       {n: "X" for n in "abcd"})
        assert not isomorphic(star, path)

    def test_labels_matter(self):
        g = labeled([("a", "b")], {"a": "A", "b": "B"})
        h = labeled([("x", "y")], {"x": "A", "y": "A"})
        assert not isomorphic(g, h)
        assert isomorphic(g, h, attrs=())  # structure alone matches

    def test_directedness_matters(self):
        g = Graph(directed=True)
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b")
        h = Graph()
        h.add_node("a")
        h.add_node("b")
        h.add_edge("a", "b")
        assert not isomorphic(g, h, attrs=())

    def test_dedup(self):
        g = cycle_motif(4).to_graph()
        h = g.relabeled({"v1": "z1"})
        p = path_motif(3).to_graph()
        kept = deduplicate_isomorphic([g, h, p], attrs=())
        assert len(kept) == 2


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_agrees_with_networkx(seed):
    """Property: structural isomorphism agrees with networkx's VF2."""
    rng = random.Random(seed)
    a = nx.gnm_random_graph(rng.randint(2, 7), rng.randint(1, 10), seed=seed)
    if rng.random() < 0.5:
        # a relabeled copy of a (isomorphic by construction)
        relabel = {n: f"r{n}" for n in a.nodes}
        b = nx.relabel_nodes(a, relabel)
    else:
        b = nx.gnm_random_graph(rng.randint(2, 7), rng.randint(1, 10),
                                seed=seed + 1)
    ga, gb = from_networkx(a), from_networkx(b)
    ours = isomorphic(ga, gb, attrs=())
    theirs = nx.is_isomorphic(a, b)
    assert ours == theirs
