"""Index staleness: matchers follow graph mutations automatically."""

from repro.core import Graph, GroundPattern, clique_motif
from repro.matching import GraphMatcher, optimized_options


class TestVersioning:
    def test_version_bumps_on_mutations(self):
        g = Graph()
        v0 = g.version
        g.add_node("a")
        assert g.version > v0
        v1 = g.version
        g.add_node("b")
        g.add_edge("a", "b", edge_id="e1")
        assert g.version > v1
        v2 = g.version
        g.remove_edge("e1")
        assert g.version > v2
        v3 = g.version
        g.remove_node("b")
        assert g.version > v3


class TestMatcherRefresh:
    def test_new_data_visible_after_mutation(self, paper_graph):
        matcher = GraphMatcher(paper_graph)
        pattern = GroundPattern(clique_motif(["A", "B", "C"]))
        assert len(matcher.match(pattern, optimized_options()).mappings) == 1
        # plant a second labeled triangle
        paper_graph.add_node("A3", label="A")
        paper_graph.add_node("B3", label="B")
        paper_graph.add_node("C3", label="C")
        paper_graph.add_edge("A3", "B3")
        paper_graph.add_edge("B3", "C3")
        paper_graph.add_edge("C3", "A3")
        report = matcher.match(pattern, optimized_options())
        assert len(report.mappings) == 2

    def test_removed_data_disappears(self, paper_graph):
        matcher = GraphMatcher(paper_graph)
        pattern = GroundPattern(clique_motif(["A", "B", "C"]))
        assert matcher.match(pattern).mappings
        paper_graph.remove_edge(
            paper_graph.edge_between("A1", "C2").id
        )
        assert matcher.match(pattern).mappings == []

    def test_refresh_is_noop_without_mutation(self, paper_graph):
        matcher = GraphMatcher(paper_graph)
        assert not matcher.refresh()
        paper_graph.add_node("zzz")
        assert matcher.refresh()
        assert not matcher.refresh()
