"""Cross-validation against networkx's VF2 subgraph monomorphism.

Definition 4.2's matching (injective node mapping, every pattern edge
present) is exactly a label-preserving subgraph *monomorphism* — not the
induced isomorphism VF2 computes by default — so we compare against
``subgraph_monomorphisms_iter`` with a node-label semantic check.
An entirely independent implementation agreeing on random inputs is the
strongest correctness evidence we can get for Algorithm 4.1.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Graph, GroundPattern
from repro.core.motif import SimpleMotif
from repro.interop import to_networkx
from repro.matching import GraphMatcher, find_matches, optimized_options


def vf2_matches(pattern: GroundPattern, graph: Graph):
    """Label-constrained monomorphisms via networkx VF2."""
    from networkx.algorithms import isomorphism

    # build the pattern structure with the data graph's directedness so
    # VF2 compares like with like
    pattern_graph = Graph(directed=graph.directed)
    for node in pattern.motif.nodes():
        attrs = {"label": node.attrs["label"]} if "label" in node.attrs else {}
        pattern_graph.add_node(node.name, **attrs)
    for edge in pattern.motif.edges():
        pattern_graph.add_edge(edge.source, edge.target)
    nx_pattern = to_networkx(pattern_graph)
    nx_graph = to_networkx(graph)

    def node_match(data_attrs, pattern_attrs):
        label = pattern_attrs.get("label")
        return label is None or data_attrs.get("label") == label

    matcher_cls = (isomorphism.DiGraphMatcher if graph.directed
                   else isomorphism.GraphMatcher)
    vf2 = matcher_cls(nx_graph, nx_pattern, node_match=node_match)
    out = set()
    for mapping in vf2.subgraph_monomorphisms_iter():
        # VF2 maps data -> pattern; invert to pattern -> data
        out.add(frozenset((p, d) for d, p in mapping.items()))
    return out


def our_matches(pattern: GroundPattern, graph: Graph):
    return {frozenset(m.nodes.items())
            for m in find_matches(pattern, graph)}


def random_case(seed):
    rng = random.Random(seed)
    graph = Graph("G", directed=rng.random() < 0.3)
    for i in range(rng.randint(3, 8)):
        graph.add_node(f"n{i}", label=rng.choice("ABC"))
    ids = graph.node_ids()
    for _ in range(rng.randint(2, 14)):
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b)
    motif = SimpleMotif()
    for i in range(rng.randint(1, 4)):
        if rng.random() < 0.85:
            motif.add_node(f"u{i}", attrs={"label": rng.choice("ABC")})
        else:
            motif.add_node(f"u{i}")
    names = motif.node_names()
    for _ in range(rng.randint(0, 4)):
        a, b = rng.choice(names), rng.choice(names)
        if a != b and not motif.edges_between(a, b):
            motif.add_edge(a, b)
    return GroundPattern(motif), graph


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_matches_agree_with_vf2(seed):
    pattern, graph = random_case(seed)
    assert our_matches(pattern, graph) == vf2_matches(pattern, graph)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_optimized_pipeline_agrees_with_vf2(seed):
    pattern, graph = random_case(seed)
    matcher = GraphMatcher(graph)
    report = matcher.match(pattern, optimized_options())
    ours = {frozenset(m.nodes.items()) for m in report.mappings}
    assert ours == vf2_matches(pattern, graph)


def test_paper_example_agrees_with_vf2(paper_graph, triangle_pattern):
    assert our_matches(triangle_pattern, paper_graph) == vf2_matches(
        triangle_pattern, paper_graph
    )
