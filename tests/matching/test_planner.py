"""Unit tests for the full access-method pipeline (GraphMatcher)."""

import pytest

from repro.core import GraphPattern, GroundPattern
from repro.core.motif import MotifBlock, clique_motif
from repro.matching import (
    GraphMatcher,
    MatchOptions,
    baseline_options,
    optimized_options,
)


class TestPipeline:
    def test_all_strategies_agree(self, paper_graph, triangle_pattern):
        matcher = GraphMatcher(paper_graph)
        expected = None
        for local in ("none", "profile", "subgraph"):
            for refine in (False, True):
                for optimize in (False, True):
                    options = MatchOptions(
                        local=local, refine=refine, optimize_order=optimize
                    )
                    report = matcher.match(triangle_pattern, options)
                    found = {frozenset(m.nodes.items()) for m in report.mappings}
                    if expected is None:
                        expected = found
                    assert found == expected, (local, refine, optimize)

    def test_space_sizes_follow_fig_4_17(self, paper_graph, triangle_pattern):
        matcher = GraphMatcher(paper_graph)
        profile_report = matcher.match(
            triangle_pattern, MatchOptions(local="profile", refine=False)
        )
        subgraph_report = matcher.match(
            triangle_pattern, MatchOptions(local="subgraph", refine=False)
        )
        refined_report = matcher.match(
            triangle_pattern, MatchOptions(local="profile", refine=True)
        )
        assert profile_report.baseline_space == 8  # 2 x 2 x 2
        assert profile_report.retrieved_space == 2  # {A1} x {B1,B2} x {C2}
        assert subgraph_report.retrieved_space == 1
        assert refined_report.refined_space == 1

    def test_reduction_ratio(self, paper_graph, triangle_pattern):
        matcher = GraphMatcher(paper_graph)
        report = matcher.match(triangle_pattern, optimized_options())
        assert report.reduction_ratio("retrieved") == pytest.approx(2 / 8)
        assert report.reduction_ratio("refined") == pytest.approx(1 / 8)

    def test_times_recorded(self, paper_graph, triangle_pattern):
        matcher = GraphMatcher(paper_graph)
        report = matcher.match(triangle_pattern, optimized_options())
        for step in ("retrieve_baseline", "local_pruning", "refine",
                     "order", "search"):
            assert step in report.times
        assert report.total_time >= 0

    def test_limit(self, paper_graph):
        motif = clique_motif(["A"])
        matcher = GraphMatcher(paper_graph)
        report = matcher.match(GroundPattern(motif),
                               MatchOptions(limit=1))
        assert len(report.mappings) == 1

    def test_first_match_mode(self, paper_graph):
        motif = clique_motif(["B"])
        matcher = GraphMatcher(paper_graph)
        report = matcher.match(GroundPattern(motif),
                               MatchOptions(exhaustive=False))
        assert len(report.mappings) == 1

    def test_without_indexes(self, paper_graph, triangle_pattern):
        matcher = GraphMatcher(paper_graph, build_attribute_index=False,
                               build_profile_index=False)
        report = matcher.match(triangle_pattern, optimized_options())
        assert len(report.mappings) == 1

    def test_option_presets(self):
        base = baseline_options()
        assert (base.local, base.refine, base.optimize_order) == (
            "none", False, False,
        )
        opt = optimized_options(limit=7)
        assert (opt.local, opt.refine, opt.optimize_order) == (
            "profile", True, True,
        )
        assert opt.limit == 7


class TestRecursivePatterns:
    def test_match_pattern_unions_derivations(self, paper_graph):
        from repro.core.motif import Disjunction

        a = MotifBlock()
        a.add_node("u", attrs={"label": "A"})
        b = MotifBlock()
        b.add_node("u", attrs={"label": "C"})
        pattern = GraphPattern(Disjunction([a, b]), name="AorC")
        matcher = GraphMatcher(paper_graph)
        report = matcher.match_pattern(pattern)
        labels = {paper_graph.node(m.nodes["u"]).label for m in report.mappings}
        assert labels == {"A", "C"}
        assert len(report.mappings) == 4
