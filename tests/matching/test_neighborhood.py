"""Unit tests for neighborhood subgraphs and profiles (Section 4.2)."""

from repro.core import GroundPattern
from repro.matching import (
    motif_profile,
    neighborhood_subgraph,
    neighborhood_subisomorphic,
    profile,
    profile_contained,
)
from repro.matching.neighborhood import (
    motif_neighborhood,
    motif_nodes_within_radius,
    nodes_within_radius,
)


class TestNeighborhoods:
    def test_radius_zero_is_node_itself(self, paper_graph):
        assert nodes_within_radius(paper_graph, "A1", 0) == ["A1"]
        sub = neighborhood_subgraph(paper_graph, "A1", 0)
        assert sub.node_ids() == ["A1"]
        assert sub.num_edges() == 0

    def test_radius_one(self, paper_graph):
        nodes = set(nodes_within_radius(paper_graph, "B1", 1))
        assert nodes == {"B1", "A1", "C1", "C2"}

    def test_radius_one_subgraph_keeps_internal_edges(self, paper_graph):
        sub = neighborhood_subgraph(paper_graph, "A1", 1)
        assert set(sub.node_ids()) == {"A1", "B1", "C2"}
        # includes the B1-C2 edge (both end points inside)
        assert sub.has_edge("B1", "C2")
        assert sub.num_edges() == 3

    def test_radius_two_reaches_everything_close(self, paper_graph):
        nodes = set(nodes_within_radius(paper_graph, "A2", 2))
        assert nodes == {"A2", "B2", "C2"}


class TestProfiles:
    def test_fig_4_17_profiles(self, paper_graph):
        """The exact profiles shown in Fig. 4.17."""
        expected = {
            "A1": "ABC",
            "B1": "ABCC",
            "B2": "ABC",
            "C1": "BC",
            "C2": "ABBC",
            "A2": "AB",
        }
        for node_id, profile_string in expected.items():
            assert "".join(profile(paper_graph, node_id, 1)) == profile_string

    def test_profile_contains_self_label(self, paper_graph):
        assert "A" in profile(paper_graph, "A1", 1)

    def test_containment(self):
        assert profile_contained(("A", "B"), ("A", "B", "C"))
        assert profile_contained((), ("A",))
        assert not profile_contained(("A", "A"), ("A", "B"))
        assert not profile_contained(("D",), ("A", "B", "C"))

    def test_motif_profile_ignores_unconstrained_nodes(self):
        from repro.core.motif import SimpleMotif

        motif = SimpleMotif()
        motif.add_node("u", attrs={"label": "A"})
        motif.add_node("w")  # no label constraint
        motif.add_edge("u", "w")
        assert motif_profile(motif, "u", 1) == ("A",)


class TestMotifNeighborhood:
    def test_pattern_neighborhood_structure(self, triangle_pattern):
        sub = motif_neighborhood(triangle_pattern, "u1", 1)
        assert sub.num_nodes() == 3
        assert sub.num_edges() == 3  # the whole clique is within radius 1

    def test_radius_limits_pattern_nodes(self):
        from repro.core.motif import path_motif

        pattern = GroundPattern(path_motif(4))
        names = motif_nodes_within_radius(pattern.motif, "v1", 1)
        assert set(names) == {"v1", "v2"}


class TestSubisomorphismPruning:
    def test_fig_4_17_subgraph_retrieval(self, paper_graph, triangle_pattern):
        """Retrieval by neighborhood subgraphs keeps exactly A1, B1, C2."""
        keeps = {}
        for pattern_node, candidates in {
            "u1": ["A1", "A2"], "u2": ["B1", "B2"], "u3": ["C1", "C2"],
        }.items():
            keeps[pattern_node] = [
                c for c in candidates
                if neighborhood_subisomorphic(
                    triangle_pattern, pattern_node, paper_graph, c, 1
                )
            ]
        assert keeps == {"u1": ["A1"], "u2": ["B1"], "u3": ["C2"]}

    def test_prune_is_sound(self, paper_graph, triangle_pattern):
        """A node in a real match always survives the neighborhood test."""
        from repro.matching import find_matches

        for mapping in find_matches(triangle_pattern, paper_graph):
            for pattern_node, data_node in mapping.nodes.items():
                assert neighborhood_subisomorphic(
                    triangle_pattern, pattern_node, paper_graph, data_node, 1
                )
