"""Unit tests for Algorithm 4.2 (joint search-space reduction)."""

from repro.core import GroundPattern
from repro.core.motif import SimpleMotif, path_motif
from repro.matching import (
    RefinementStats,
    find_matches,
    refine_search_space,
    scan_feasible_mates,
    space_reduction_ratio,
    space_size,
)


class TestPaperExample:
    def test_fig_4_18_execution(self, paper_graph, triangle_pattern):
        """Level 1 removes A2 and C1; level 2 removes B2."""
        space = scan_feasible_mates(triangle_pattern, paper_graph)
        stats = RefinementStats()
        refined = refine_search_space(
            triangle_pattern.motif, paper_graph, space, level=3, stats=stats
        )
        assert refined == {"u1": ["A1"], "u2": ["B1"], "u3": ["C2"]}
        assert stats.pairs_removed == 3  # A2, C1, B2
        assert stats.levels_run >= 2

    def test_level_one_only(self, paper_graph, triangle_pattern):
        """With a single level, only degree-driven removals happen."""
        space = scan_feasible_mates(triangle_pattern, paper_graph)
        refined = refine_search_space(
            triangle_pattern.motif, paper_graph, space, level=1
        )
        # A2 and C1 go at level 1 (their neighborhoods cannot cover two
        # distinct pattern neighbors); B2 needs the second level
        assert refined["u1"] == ["A1"]
        assert refined["u3"] == ["C2"]
        assert refined["u2"] == ["B1", "B2"]


class TestSoundness:
    def test_never_removes_true_match(self, paper_graph, triangle_pattern):
        space = scan_feasible_mates(triangle_pattern, paper_graph)
        refined = refine_search_space(
            triangle_pattern.motif, paper_graph, space, level=10
        )
        for mapping in find_matches(triangle_pattern, paper_graph):
            for pattern_node, data_node in mapping.nodes.items():
                assert data_node in refined[pattern_node]

    def test_matches_unchanged_after_refinement(self, paper_graph, triangle_pattern):
        space = scan_feasible_mates(triangle_pattern, paper_graph)
        refined = refine_search_space(
            triangle_pattern.motif, paper_graph, space, level=5
        )
        before = {frozenset(m.nodes.items())
                  for m in find_matches(triangle_pattern, paper_graph)}
        after = {frozenset(m.nodes.items())
                 for m in find_matches(triangle_pattern, paper_graph,
                                       candidates=refined)}
        assert before == after


class TestBehaviour:
    def test_empty_space_stays_empty(self, paper_graph, triangle_pattern):
        refined = refine_search_space(
            triangle_pattern.motif, paper_graph,
            {"u1": [], "u2": ["B1"], "u3": ["C2"]},
        )
        assert refined["u1"] == []

    def test_isolated_pattern_node_untouched(self, paper_graph):
        motif = SimpleMotif()
        motif.add_node("solo", attrs={"label": "A"})
        pattern = GroundPattern(motif)
        space = scan_feasible_mates(pattern, paper_graph)
        refined = refine_search_space(motif, paper_graph, space)
        assert refined == space

    def test_path_pattern_on_path_graph(self):
        graph = path_motif(4).to_graph()
        pattern = GroundPattern(path_motif(4))
        space = scan_feasible_mates(pattern, graph)
        refined = refine_search_space(pattern.motif, graph, space, level=5)
        # end pattern nodes can only map to end graph nodes after
        # refinement (interior nodes need two distinct neighbors)
        assert set(refined["v1"]) <= {"v1", "v5"} or len(refined["v1"]) <= 5
        # all true matches survive
        for mapping in find_matches(pattern, graph):
            for pattern_node, data_node in mapping.nodes.items():
                assert data_node in refined[pattern_node]

    def test_monotone_in_level(self, paper_graph, triangle_pattern):
        space = scan_feasible_mates(triangle_pattern, paper_graph)
        sizes = []
        for level in (1, 2, 3, 4):
            refined = refine_search_space(
                triangle_pattern.motif, paper_graph, space, level=level
            )
            sizes.append(space_size(refined))
        assert sizes == sorted(sizes, reverse=True)


class TestSpaceMetrics:
    def test_space_size(self):
        assert space_size({"a": [1, 2], "b": [1, 2, 3]}) == 6
        assert space_size({"a": []}) == 0

    def test_reduction_ratio(self):
        baseline = {"a": ["x", "y"], "b": ["x", "y"]}
        refined = {"a": ["x"], "b": ["x"]}
        assert space_reduction_ratio(refined, baseline) == 0.25
        assert space_reduction_ratio({"a": [], "b": []}, baseline) == 0.0
        assert space_reduction_ratio(refined, {"a": [], "b": []}) == 0.0
