"""Property-based tests: all matching strategies agree with brute force.

These are the core soundness/completeness guarantees of the access
methods: local pruning (profiles, neighborhood subgraphs), global
refinement, search ordering, SQL translation and Datalog translation must
never change the set of reported mappings.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Graph, GroundPattern
from repro.core.motif import SimpleMotif
from repro.datalog import match_with_datalog
from repro.matching import (
    GraphMatcher,
    MatchOptions,
    brute_force_matches,
    find_matches,
)
from repro.sqlbaseline import SQLGraphMatcher

LABELS = "ABC"


def random_graph(rng: random.Random, n_nodes: int, n_edges: int) -> Graph:
    graph = Graph("G")
    for i in range(n_nodes):
        graph.add_node(f"n{i}", label=rng.choice(LABELS))
    ids = graph.node_ids()
    for _ in range(n_edges):
        u, v = rng.choice(ids), rng.choice(ids)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def random_pattern(rng: random.Random, n_nodes: int, n_edges: int) -> GroundPattern:
    motif = SimpleMotif()
    for i in range(n_nodes):
        if rng.random() < 0.8:
            motif.add_node(f"u{i}", attrs={"label": rng.choice(LABELS)})
        else:
            motif.add_node(f"u{i}")  # unconstrained node
    names = motif.node_names()
    for _ in range(n_edges):
        a, b = rng.choice(names), rng.choice(names)
        if a != b and not motif.edges_between(a, b):
            motif.add_edge(a, b)
    return GroundPattern(motif)


def mapping_set(mappings):
    return {frozenset(m.nodes.items()) for m in mappings}


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_pipeline_matches_brute_force(seed):
    rng = random.Random(seed)
    graph = random_graph(rng, rng.randint(3, 8), rng.randint(2, 12))
    pattern = random_pattern(rng, rng.randint(1, 3), rng.randint(0, 3))
    expected = mapping_set(brute_force_matches(pattern, graph))
    matcher = GraphMatcher(graph)
    for local in ("none", "profile", "subgraph"):
        for refine in (False, True):
            report = matcher.match(
                pattern, MatchOptions(local=local, refine=refine)
            )
            assert mapping_set(report.mappings) == expected, (local, refine)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_sql_baseline_matches_graph_matcher(seed):
    rng = random.Random(seed)
    graph = random_graph(rng, rng.randint(3, 8), rng.randint(2, 12))
    pattern = random_pattern(rng, rng.randint(1, 3), rng.randint(0, 3))
    native = mapping_set(find_matches(pattern, graph))
    sql = mapping_set(SQLGraphMatcher(graph).match(pattern))
    assert native == sql


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_datalog_translation_matches_graph_matcher(seed):
    rng = random.Random(seed)
    graph = random_graph(rng, rng.randint(3, 6), rng.randint(2, 8))
    pattern = random_pattern(rng, rng.randint(1, 3), rng.randint(0, 2))
    native = mapping_set(find_matches(pattern, graph))
    datalog = mapping_set(match_with_datalog(pattern, graph))
    assert native == datalog


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_search_order_never_changes_results(seed):
    rng = random.Random(seed)
    graph = random_graph(rng, rng.randint(4, 9), rng.randint(3, 14))
    pattern = random_pattern(rng, rng.randint(2, 4), rng.randint(1, 4))
    names = pattern.motif.node_names()
    baseline = mapping_set(find_matches(pattern, graph))
    for _ in range(3):
        order = names[:]
        rng.shuffle(order)
        assert mapping_set(find_matches(pattern, graph, order=order)) == baseline


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_extracted_query_always_has_a_match(seed):
    """An extracted connected subgraph query matches at its own site."""
    from repro.datasets.queries import extract_connected_query

    rng = random.Random(seed)
    graph = random_graph(rng, 10, 18)
    try:
        pattern = extract_connected_query(graph, rng.randint(2, 4), rng)
    except ValueError:
        return  # graph too sparse for the requested size; nothing to assert
    assert find_matches(pattern, graph, exhaustive=False)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_directed_pipeline_matches_brute_force(seed):
    rng = random.Random(seed)
    graph = Graph("G", directed=True)
    for i in range(rng.randint(3, 7)):
        graph.add_node(f"n{i}", label=rng.choice(LABELS))
    ids = graph.node_ids()
    for _ in range(rng.randint(2, 10)):
        u, v = rng.choice(ids), rng.choice(ids)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    pattern = random_pattern(rng, rng.randint(1, 3), rng.randint(0, 2))
    expected = mapping_set(brute_force_matches(pattern, graph))
    matcher = GraphMatcher(graph)
    report = matcher.match(pattern, MatchOptions(local="profile", refine=True))
    assert mapping_set(report.mappings) == expected
