"""Tests for the EXPLAIN-style access-plan rendering."""

from repro.matching import GraphMatcher, MatchOptions, baseline_options


class TestExplain:
    def test_optimized_plan_sections(self, paper_graph, triangle_pattern):
        matcher = GraphMatcher(paper_graph)
        text = matcher.explain(triangle_pattern)
        assert "retrieve + local pruning [profile]" in text
        assert "refine (Algorithm 4.2)" in text
        assert "greedy cost-based" in text
        assert "space size 1" in text
        # the Fig. 4.17/4.18 spaces appear in the plan
        assert "u1:1, u2:2, u3:1" in text
        assert "u1:1, u2:1, u3:1" in text

    def test_baseline_plan(self, paper_graph, triangle_pattern):
        matcher = GraphMatcher(paper_graph)
        text = matcher.explain(triangle_pattern, baseline_options())
        assert "[none]" in text
        assert "refine: skipped" in text
        assert "connected" in text
        assert "space size 8" in text

    def test_explain_does_not_run_search(self, paper_graph, triangle_pattern):
        """explain must stay cheap: no mappings are materialized."""
        matcher = GraphMatcher(paper_graph)
        text = matcher.explain(
            triangle_pattern, MatchOptions(local="profile", refine=True)
        )
        assert "Mapping(" not in text
