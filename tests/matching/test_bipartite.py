"""Unit and property tests for Hopcroft–Karp bipartite matching."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import has_semi_perfect_matching, hopcroft_karp


class TestHopcroftKarp:
    def test_perfect_matching(self):
        adjacency = {"a": ["1", "2"], "b": ["1"], "c": ["3"]}
        matching = hopcroft_karp(["a", "b", "c"], adjacency)
        assert len(matching) == 3
        assert matching["b"] == "1"

    def test_no_matching_for_isolated(self):
        adjacency = {"a": [], "b": ["1"]}
        matching = hopcroft_karp(["a", "b"], adjacency)
        assert len(matching) == 1

    def test_contention(self):
        # three left nodes all want the same right node
        adjacency = {"a": ["1"], "b": ["1"], "c": ["1"]}
        matching = hopcroft_karp(["a", "b", "c"], adjacency)
        assert len(matching) == 1

    def test_augmenting_path_needed(self):
        # greedy (a->1) forces augmentation for b
        adjacency = {"a": ["1", "2"], "b": ["1"]}
        matching = hopcroft_karp(["a", "b"], adjacency)
        assert len(matching) == 2

    def test_matching_is_consistent(self):
        adjacency = {"a": ["1", "2"], "b": ["2", "3"], "c": ["1", "3"]}
        matching = hopcroft_karp(["a", "b", "c"], adjacency)
        # injective on the right side
        assert len(set(matching.values())) == len(matching)
        # only uses allowed edges
        for left, right in matching.items():
            assert right in adjacency[left]

    def test_empty(self):
        assert hopcroft_karp([], {}) == {}


class TestSemiPerfect:
    def test_semi_perfect_true(self):
        assert has_semi_perfect_matching(["a"], {"a": ["1"]})

    def test_semi_perfect_false_fast_path(self):
        assert not has_semi_perfect_matching(["a", "b"], {"a": ["1"], "b": []})

    def test_paper_example_b_b2(self, paper_graph):
        """Fig. 4.18, level 2: B(B, B2) has no semi-perfect matching once
        A2 has been removed from Phi(A)."""
        # neighbors of pattern B: {A, C}; neighbors of B2: {A2, C2}
        # after level 1, Phi(A)={A1}, Phi(C)={C2}: A can only use A1,
        # which is not adjacent to B2
        adjacency = {"A": [], "C": ["C2"]}
        assert not has_semi_perfect_matching(["A", "C"], adjacency)


def _reference_max_matching(left, adjacency):
    """Exponential reference: try all injective assignments."""
    best = 0
    rights = sorted({r for rs in adjacency.values() for r in rs})
    for k in range(len(left), 0, -1):
        for subset in itertools.combinations(left, k):
            for assignment in itertools.permutations(rights, k):
                if all(r in adjacency.get(l, ()) for l, r in zip(subset, assignment)):
                    return k
    return best


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 5), st.integers(0, 5), st.integers(0, 2 ** 25 - 1))
def test_matching_size_matches_reference(n_left, n_right, mask):
    """Property: Hopcroft–Karp finds the same maximum size as brute force."""
    left = [f"l{i}" for i in range(n_left)]
    right = [f"r{j}" for j in range(n_right)]
    adjacency = {
        l: [right[j] for j in range(n_right) if (mask >> (i * 5 + j)) & 1]
        for i, l in enumerate(left)
    }
    fast = len(hopcroft_karp(left, adjacency))
    slow = _reference_max_matching(left, adjacency)
    assert fast == slow
