"""Unit tests for feasible-mate retrieval variants (Section 4.2)."""

import pytest

from repro.core import Graph, GroundPattern
from repro.core.motif import SimpleMotif
from repro.core.predicate import AttrRef, BinOp, Literal
from repro.index import AttributeIndexSet, ProfileIndex
from repro.matching import RetrievalStats, retrieve_feasible_mates


def ref(path):
    return AttrRef(tuple(path.split(".")))


def year_graph() -> Graph:
    g = Graph()
    for i, year in enumerate([1998, 2002, 2005, 2008, 2011]):
        g.add_node(f"n{i}", label="paper", year=year)
    g.add_edge("n0", "n1")
    g.add_edge("n1", "n2")
    return g


class TestIndexDrivenRetrieval:
    def test_range_predicate_uses_btree(self):
        g = year_graph()
        index = AttributeIndexSet(g)
        motif = SimpleMotif()
        motif.add_node("u", predicate=BinOp(">", ref("year"), Literal(2004)))
        pattern = GroundPattern(motif)
        stats = RetrievalStats()
        space = retrieve_feasible_mates(pattern, g, attribute_index=index,
                                        stats=stats)
        assert sorted(space["u"]) == ["n2", "n3", "n4"]
        assert stats.used_index["u"]
        # only the indexed candidates were scanned, not all 5 nodes
        assert stats.scanned["u"] == 3

    def test_label_hash_fallback(self, paper_graph):
        profile_index = ProfileIndex(paper_graph, radius=1)
        motif = SimpleMotif()
        motif.add_node("u", attrs={"label": "B"})
        pattern = GroundPattern(motif)
        stats = RetrievalStats()
        space = retrieve_feasible_mates(
            pattern, paper_graph, profile_index=profile_index, stats=stats
        )
        assert sorted(space["u"]) == ["B1", "B2"]
        assert stats.used_index["u"]

    def test_full_scan_when_nothing_indexable(self, paper_graph):
        motif = SimpleMotif()
        motif.add_node("u")
        pattern = GroundPattern(motif)
        stats = RetrievalStats()
        space = retrieve_feasible_mates(pattern, paper_graph, stats=stats)
        assert len(space["u"]) == 6
        assert not stats.used_index["u"]

    def test_index_retrieval_still_applies_full_fu(self):
        """Index gives a superset; the exact F_u check must still run."""
        g = year_graph()
        index = AttributeIndexSet(g, attributes=["label"])
        motif = SimpleMotif()
        motif.add_node(
            "u",
            attrs={"label": "paper"},
            predicate=BinOp("<", ref("year"), Literal(2000)),
        )
        pattern = GroundPattern(motif)
        space = retrieve_feasible_mates(pattern, g, attribute_index=index)
        assert space["u"] == ["n0"]


class TestValidation:
    def test_unknown_strategy(self, paper_graph, triangle_pattern):
        with pytest.raises(ValueError):
            retrieve_feasible_mates(triangle_pattern, paper_graph,
                                    local="magic")

    def test_radius_mismatch(self, paper_graph, triangle_pattern):
        profile_index = ProfileIndex(paper_graph, radius=1)
        with pytest.raises(ValueError):
            retrieve_feasible_mates(
                triangle_pattern, paper_graph,
                profile_index=profile_index, local="profile", radius=2,
            )

    def test_radius_zero_profiles_equal_labels(self, paper_graph,
                                               triangle_pattern):
        space_none = retrieve_feasible_mates(triangle_pattern, paper_graph,
                                             local="none")
        space_r0 = retrieve_feasible_mates(triangle_pattern, paper_graph,
                                           local="profile", radius=0)
        assert space_none == space_r0

    def test_radius_two_subgraph_prunes_monotonically(self, paper_graph,
                                                      triangle_pattern):
        """The exact subgraph test only gets stronger with radius."""
        r1 = retrieve_feasible_mates(triangle_pattern, paper_graph,
                                     local="subgraph", radius=1)
        r2 = retrieve_feasible_mates(triangle_pattern, paper_graph,
                                     local="subgraph", radius=2)
        for name in triangle_pattern.node_names():
            assert set(r2[name]) <= set(r1[name])
