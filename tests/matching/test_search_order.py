"""Unit tests for the cost model and search-order optimization (4.4)."""

import pytest

from repro.core.motif import SimpleMotif, clique_motif, path_motif
from repro.matching import (
    CostModel,
    GraphStatistics,
    connected_order,
    exhaustive_order,
    greedy_order,
    order_cost,
)


def triangle_sizes():
    """The paper's running example: {A1} x {B1, B2} x {C2}."""
    return {"u1": 1, "u2": 2, "u3": 1}


class TestCostModel:
    def test_constant_gamma(self):
        motif = clique_motif(["A", "B", "C"])
        model = CostModel(motif, stats=None, gamma_const=0.1)
        assert model.gamma(["u1"], "u2") == pytest.approx(0.1)
        # joining u3 onto {u1, u2} closes two edges
        assert model.gamma(["u1", "u2"], "u3") == pytest.approx(0.01)

    def test_gamma_is_one_for_cartesian_step(self):
        motif = SimpleMotif()
        motif.add_node("a")
        motif.add_node("b")  # no edges
        model = CostModel(motif, gamma_const=0.1)
        assert model.gamma(["a"], "b") == 1.0

    def test_frequency_gamma(self, paper_graph):
        motif = clique_motif(["A", "B", "C"])
        stats = GraphStatistics(paper_graph)
        model = CostModel(motif, stats=stats)
        # freq(A-B edges)=2, freq(A)=2, freq(B)=2 -> P = 2/4
        assert model.edge_probability("u1", "u2") == pytest.approx(0.5)

    def test_paper_cost_example(self):
        """Section 4.4: cost((A⋈B)⋈C) = 2 + 2γ; cost((A⋈C)⋈B) = 1 + 2γ."""
        motif = clique_motif(["A", "B", "C"])
        model = CostModel(motif, gamma_const=0.1)
        sizes = triangle_sizes()
        cost_ab_c, _ = order_cost(["u1", "u2", "u3"], sizes, model)
        cost_ac_b, _ = order_cost(["u1", "u3", "u2"], sizes, model)
        gamma = 0.1
        assert cost_ab_c == pytest.approx(2 + 2 * gamma)
        assert cost_ac_b == pytest.approx(1 + 2 * gamma)
        assert cost_ac_b < cost_ab_c


class TestGreedyOrder:
    def test_picks_paper_order(self):
        """Greedy should choose (A ⋈ C) ⋈ B on the running example."""
        motif = clique_motif(["A", "B", "C"])
        model = CostModel(motif, gamma_const=0.1)
        order = greedy_order(motif, triangle_sizes(), model)
        assert order == ["u1", "u3", "u2"]

    def test_greedy_matches_exhaustive_on_small_patterns(self, paper_graph):
        stats = GraphStatistics(paper_graph)
        motif = clique_motif(["A", "B", "C"])
        model = CostModel(motif, stats=stats)
        sizes = {"u1": 2, "u2": 2, "u3": 2}
        greedy = greedy_order(motif, sizes, model)
        best = exhaustive_order(motif, sizes, model)
        greedy_cost, _ = order_cost(greedy, sizes, model)
        best_cost, _ = order_cost(best, sizes, model)
        assert greedy_cost <= best_cost * 1.5  # greedy is near-optimal here

    def test_single_node(self):
        motif = SimpleMotif()
        motif.add_node("only")
        model = CostModel(motif)
        assert greedy_order(motif, {"only": 5}, model) == ["only"]

    def test_order_covers_all_nodes(self):
        motif = path_motif(5)
        model = CostModel(motif, gamma_const=0.2)
        sizes = {name: i + 1 for i, name in enumerate(motif.node_names())}
        order = greedy_order(motif, sizes, model)
        assert sorted(order) == sorted(motif.node_names())


class TestExhaustiveOrder:
    def test_size_cap(self):
        motif = path_motif(10)
        model = CostModel(motif)
        with pytest.raises(ValueError):
            exhaustive_order(motif, {n: 1 for n in motif.node_names()}, model)

    def test_exhaustive_is_optimal(self):
        motif = clique_motif(["A", "B", "C"])
        model = CostModel(motif, gamma_const=0.1)
        sizes = triangle_sizes()
        best = exhaustive_order(motif, sizes, model)
        best_cost, _ = order_cost(best, sizes, model)
        import itertools

        for perm in itertools.permutations(motif.node_names()):
            cost, _ = order_cost(list(perm), sizes, model)
            assert best_cost <= cost + 1e-12


class TestConnectedOrder:
    def test_connected_when_possible(self):
        motif = path_motif(3)
        order = connected_order(motif, {n: 1 for n in motif.node_names()})
        placed = {order[0]}
        for name in order[1:]:
            assert any(n in placed for n in motif.neighbors(name))
            placed.add(name)

    def test_handles_disconnected_patterns(self):
        motif = SimpleMotif()
        motif.add_node("a")
        motif.add_node("b")
        order = connected_order(motif, {"a": 1, "b": 1})
        assert sorted(order) == ["a", "b"]
