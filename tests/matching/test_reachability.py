"""Unit and property tests for the reachability access method."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Graph
from repro.matching.reachability import (
    ReachabilityIndex,
    match_path_pattern,
)


def directed_graph(edges, nodes=None) -> Graph:
    g = Graph(directed=True)
    node_ids = set()
    for a, b in edges:
        node_ids.add(a)
        node_ids.add(b)
    if nodes:
        node_ids.update(nodes)
    for n in sorted(node_ids):
        g.add_node(n)
    for a, b in edges:
        g.add_edge(a, b)
    return g


class TestDirectedReachability:
    def test_chain(self):
        index = ReachabilityIndex(directed_graph([("a", "b"), ("b", "c")]))
        assert index.reachable("a", "c")
        assert not index.reachable("c", "a")
        assert index.reachable("b", "b")

    def test_diamond(self):
        index = ReachabilityIndex(directed_graph(
            [("s", "l"), ("s", "r"), ("l", "t"), ("r", "t")]
        ))
        assert index.reachable("s", "t")
        assert not index.reachable("l", "r")

    def test_cycle_collapses_to_component(self):
        index = ReachabilityIndex(directed_graph(
            [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]
        ))
        assert index.reachable("a", "c")
        assert index.reachable("c", "a")  # inside the cycle
        assert index.reachable("a", "d")
        assert not index.reachable("d", "a")
        assert index.component_of("a") == index.component_of("c")
        assert index.component_of("d") != index.component_of("a")

    def test_disconnected(self):
        index = ReachabilityIndex(directed_graph(
            [("a", "b")], nodes=["z"]
        ))
        assert not index.reachable("a", "z")
        assert index.num_components() == 3

    def test_two_cycles_bridged(self):
        index = ReachabilityIndex(directed_graph(
            [("a", "b"), ("b", "a"), ("b", "x"),
             ("x", "y"), ("y", "x")]
        ))
        assert index.reachable("a", "y")
        assert not index.reachable("y", "a")


class TestUndirectedReachability:
    def test_connected_components(self):
        g = Graph()
        for n in "abcde":
            g.add_node(n)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("d", "e")
        index = ReachabilityIndex(g)
        assert index.reachable("a", "c")
        assert index.reachable("c", "a")
        assert not index.reachable("a", "d")
        assert index.num_components() == 2


class TestPathPatternMatching:
    def test_labeled_endpoints(self):
        g = Graph(directed=True)
        g.add_node("s1", label="S")
        g.add_node("s2", label="S")
        g.add_node("m", label="M")
        g.add_node("t1", label="T")
        g.add_edge("s1", "m")
        g.add_edge("m", "t1")
        pairs = match_path_pattern(
            g,
            source_filter=lambda n: n.label == "S",
            target_filter=lambda n: n.label == "T",
        )
        assert pairs == [("s1", "t1")]

    def test_reuses_prebuilt_index(self):
        g = directed_graph([("a", "b")])
        index = ReachabilityIndex(g)
        pairs = match_path_pattern(
            g, lambda n: n.id == "a", lambda n: n.id == "b", index=index
        )
        assert pairs == [("a", "b")]


def _bfs_reachable(graph: Graph, source: str, target: str) -> bool:
    seen = {source}
    stack = [source]
    while stack:
        node = stack.pop()
        if node == target:
            return True
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return False


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_index_matches_bfs(seed):
    """Property: the index agrees with plain BFS on random digraphs."""
    rng = random.Random(seed)
    n = rng.randint(2, 12)
    g = Graph(directed=True)
    for i in range(n):
        g.add_node(f"n{i}")
    ids = g.node_ids()
    for _ in range(rng.randint(0, 3 * n)):
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b and not g.has_edge(a, b):
            g.add_edge(a, b)
    index = ReachabilityIndex(g)
    for _ in range(20):
        s, t = rng.choice(ids), rng.choice(ids)
        assert index.reachable(s, t) == (s == t or _bfs_reachable(g, s, t))
