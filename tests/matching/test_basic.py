"""Unit tests for Algorithm 4.1 (basic graph pattern matching)."""

import pytest

from repro.core import Graph, GroundPattern
from repro.core.motif import SimpleMotif, clique_motif, cycle_motif, path_motif
from repro.core.predicate import AttrRef, BinOp, Literal
from repro.matching import (
    SearchCounters,
    brute_force_matches,
    find_matches,
    scan_feasible_mates,
)


def ref(path):
    return AttrRef(tuple(path.split(".")))


class TestFeasibleMates:
    def test_scan_by_label(self, paper_graph, triangle_pattern):
        space = scan_feasible_mates(triangle_pattern, paper_graph)
        assert space == {
            "u1": ["A1", "A2"],
            "u2": ["B1", "B2"],
            "u3": ["C1", "C2"],
        }


class TestSearch:
    def test_triangle_match(self, paper_graph, triangle_pattern):
        matches = find_matches(triangle_pattern, paper_graph)
        assert len(matches) == 1
        assert matches[0].nodes == {"u1": "A1", "u2": "B1", "u3": "C2"}

    def test_edge_assignment_recorded(self, paper_graph, triangle_pattern):
        (match,) = find_matches(triangle_pattern, paper_graph)
        assert len(match.edges) == 3
        for edge_name, edge_id in match.edges.items():
            edge = paper_graph.edge(edge_id)
            motif_edge = triangle_pattern.motif.edge(edge_name)
            endpoints = {match.nodes[motif_edge.source],
                         match.nodes[motif_edge.target]}
            assert {edge.source, edge.target} == endpoints

    def test_first_match_only(self, paper_graph):
        motif = SimpleMotif()
        motif.add_node("u", attrs={"label": "B"})
        pattern = GroundPattern(motif)
        assert len(find_matches(pattern, paper_graph, exhaustive=False)) == 1
        assert len(find_matches(pattern, paper_graph, exhaustive=True)) == 2

    def test_limit(self, paper_graph):
        motif = SimpleMotif()
        motif.add_node("u")
        pattern = GroundPattern(motif)
        assert len(find_matches(pattern, paper_graph, limit=3)) == 3

    def test_injectivity(self):
        """Two same-label pattern nodes cannot map to the same data node."""
        graph = Graph()
        graph.add_node("x", label="A")
        motif = SimpleMotif()
        motif.add_node("u1", attrs={"label": "A"})
        motif.add_node("u2", attrs={"label": "A"})
        assert find_matches(GroundPattern(motif), graph) == []

    def test_path_in_cycle(self):
        graph = cycle_motif(5).to_graph()
        pattern = GroundPattern(path_motif(2))
        # every node is the middle of exactly one path, times 2 directions,
        # times 5 starting positions => 10 mappings
        assert len(find_matches(pattern, graph)) == 10

    def test_no_match_when_edge_missing(self):
        graph = Graph()
        graph.add_node("x", label="A")
        graph.add_node("y", label="B")
        pattern = GroundPattern(clique_motif(["A", "B"]))
        assert find_matches(pattern, graph) == []

    def test_initial_assignment_pins_node(self, paper_graph, triangle_pattern):
        matches = find_matches(triangle_pattern, paper_graph,
                               initial={"u1": "A1"})
        assert len(matches) == 1
        bad = find_matches(triangle_pattern, paper_graph, initial={"u1": "A2"})
        assert bad == []

    def test_initial_assignment_respects_label(self, paper_graph, triangle_pattern):
        assert find_matches(triangle_pattern, paper_graph,
                            initial={"u1": "B1"}) == []

    def test_invalid_order_rejected(self, paper_graph, triangle_pattern):
        with pytest.raises(ValueError):
            find_matches(triangle_pattern, paper_graph, order=["u1"])

    def test_counters(self, paper_graph, triangle_pattern):
        counters = SearchCounters()
        find_matches(triangle_pattern, paper_graph, counters=counters)
        assert counters.results == 1
        assert counters.candidates_tried >= 3
        assert counters.check_calls >= 3


class TestDirectedMatching:
    def test_direction_respected(self):
        graph = Graph(directed=True)
        graph.add_node("a", label="A")
        graph.add_node("b", label="B")
        graph.add_edge("a", "b")
        forward = SimpleMotif()
        forward.add_node("u", attrs={"label": "A"})
        forward.add_node("w", attrs={"label": "B"})
        forward.add_edge("u", "w")
        assert len(find_matches(GroundPattern(forward), graph)) == 1
        backward = SimpleMotif()
        backward.add_node("u", attrs={"label": "A"})
        backward.add_node("w", attrs={"label": "B"})
        backward.add_edge("w", "u")
        assert find_matches(GroundPattern(backward), graph) == []


class TestSelfLoops:
    def test_pattern_self_loop(self):
        graph = Graph()
        graph.add_node("x", label="A")
        graph.add_node("y", label="A")
        graph.add_edge("x", "x")
        motif = SimpleMotif()
        motif.add_node("u", attrs={"label": "A"})
        motif.add_edge("u", "u")
        matches = find_matches(GroundPattern(motif), graph)
        assert [m.nodes["u"] for m in matches] == ["x"]


class TestEdgePredicates:
    def test_edge_predicate_enforced(self):
        graph = Graph()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_node("c")
        graph.add_edge("a", "b", weight=5)
        graph.add_edge("b", "c", weight=1)
        motif = SimpleMotif()
        motif.add_node("u")
        motif.add_node("w")
        motif.add_edge("u", "w", name="e",
                       predicate=BinOp(">", ref("weight"), Literal(3)))
        matches = find_matches(GroundPattern(motif), graph)
        assert len(matches) == 2  # a-b in both directions
        assert all(set(m.nodes.values()) == {"a", "b"} for m in matches)


class TestBruteForceAgreement:
    def test_agrees_on_paper_example(self, paper_graph, triangle_pattern):
        fast = {frozenset(m.nodes.items())
                for m in find_matches(triangle_pattern, paper_graph)}
        slow = {frozenset(m.nodes.items())
                for m in brute_force_matches(triangle_pattern, paper_graph)}
        assert fast == slow
