"""Service + database durability: write-through stores, recovery stats."""

import pytest

from repro.core import Graph
from repro.service import QueryService, ServiceConfig
from repro.storage import GraphDatabase, SimulatedCrash, scan_wal, wal_path_for
from repro.storage.faults import CrashPoint
from repro.storage.graphstore import GraphStore

QUERY = ('graph P { node x <label="A">; node y <label="B">; '
         'edge e (x, y); }')


def sample_graph(extra: int = 0) -> Graph:
    g = Graph("g1")
    g.add_node("a", label="A")
    g.add_node("b", label="B")
    g.add_edge("a", "b")
    for i in range(extra):
        g.add_node(f"x{i}", label="X")
    return g


class TestDatabaseDurable:
    def test_attach_register_reload(self, tmp_path):
        path = str(tmp_path / "db.bin")
        database = GraphDatabase()
        recovery = database.attach_durable(path, fsync="never")
        assert recovery.clean
        database.register_durable("data", sample_graph())
        database.close_store()

        fresh = GraphDatabase()
        fresh.attach_durable(path, fsync="never")
        assert fresh.names() == ["data"]
        back = fresh.doc("data")[0]
        assert back.equals(sample_graph())
        assert back.version == sample_graph().version
        fresh.close_store()

    def test_register_durable_requires_store(self):
        database = GraphDatabase()
        with pytest.raises(RuntimeError):
            database.register_durable("data", sample_graph())

    def test_double_attach_rejected(self, tmp_path):
        database = GraphDatabase()
        database.attach_durable(str(tmp_path / "a.bin"), fsync="never")
        with pytest.raises(RuntimeError):
            database.attach_durable(str(tmp_path / "b.bin"), fsync="never")
        database.close_store()

    def test_close_checkpoints_wal(self, tmp_path):
        path = str(tmp_path / "db.bin")
        database = GraphDatabase()
        database.attach_durable(path, fsync="never")
        database.register_durable("data", sample_graph())
        assert database.durable_store.wal.size > 0
        database.close_store()
        assert scan_wal(wal_path_for(path)).records == []

    def test_crashed_write_recovers_previous_state(self, tmp_path):
        path = str(tmp_path / "db.bin")
        database = GraphDatabase()
        database.attach_durable(path, fsync="never")
        database.register_durable("data", sample_graph())
        database.close_store()

        store = GraphStore(path, durable=True, fsync="never",
                           crashpoint=CrashPoint(crash_after=2, seed=1))
        with pytest.raises(SimulatedCrash):
            store.save_document("data", [sample_graph(extra=5)])

        fresh = GraphDatabase()
        recovery = fresh.attach_durable(path, fsync="never")
        assert recovery.ran
        back = fresh.doc("data")[0]
        assert back.equals(sample_graph()) or back.equals(
            sample_graph(extra=5))
        fresh.close_store()


class TestServiceDurable:
    def service(self, tmp_path, **overrides) -> QueryService:
        config = ServiceConfig(workers=2,
                               store_path=str(tmp_path / "svc.bin"),
                               fsync="never", **overrides)
        return QueryService(config)

    def test_write_through_and_restart(self, tmp_path):
        service = self.service(tmp_path)
        assert service.recovery is not None and service.recovery.clean
        service.register("data", sample_graph())
        first = service.execute(QUERY, document="data")
        assert len(first.results) == 1
        stats = service.shutdown()
        assert stats["durability"]["store_version"] >= 1

        restarted = self.service(tmp_path)
        assert restarted.database.names() == ["data"]
        again = restarted.execute(QUERY, document="data")
        assert len(again.results) == 1
        assert again.results == first.results
        restarted.shutdown()

    def test_result_cache_keyed_on_recovered_version(self, tmp_path):
        service = self.service(tmp_path)
        service.register("data", sample_graph())
        version = service.document_version("data")
        service.shutdown()

        restarted = self.service(tmp_path)
        # the persisted Graph.version survives the restart, so cache
        # keys from before/after recovery can never alias
        assert restarted.document_version("data") == version
        miss = restarted.execute(QUERY, document="data")
        hit = restarted.execute(QUERY, document="data")
        assert miss.cache == "miss"
        assert hit.cache == "hit"
        assert hit.results == miss.results
        restarted.shutdown()

    def test_stats_have_durability_section(self, tmp_path):
        service = self.service(tmp_path)
        service.register("data", sample_graph())
        durability = service.stats()["durability"]
        assert durability["fsync"] == "never"
        assert durability["recovery"]["ran"] is True
        assert durability["wal_bytes"] > 0  # not yet checkpointed
        service.shutdown()

    def test_no_store_no_durability_section(self):
        service = QueryService(ServiceConfig(workers=1))
        service.register("data", sample_graph())
        assert "durability" not in service.stats()
        service.shutdown()
