"""Resilience layer: breakers, shedding, watchdog, dedup, chaos proxy."""

import json
import socket
import threading
import time

import pytest

from repro.datasets.random_graphs import erdos_renyi_graph
from repro.runtime import Outcome
from repro.service import (
    QueryRequest,
    QueryServer,
    QueryService,
    ServiceClient,
    ServiceConfig,
)
from repro.service.protocol import ProtocolError, decode
from repro.service.resilience import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerRegistry,
    CircuitBreaker,
    DuplicateRequestTable,
    QueueWaitEstimator,
)

from tests.service.chaos import ChaosProxy

EDGE_QUERY = ('graph P { node u1 <label="L001">; node u2 <label="L002">; '
              'edge e1 (u1, u2); }')


def make_service(**overrides) -> QueryService:
    defaults = dict(workers=2, default_timeout=10.0)
    defaults.update(overrides)
    service = QueryService(ServiceConfig(**defaults))
    service.register("data", erdos_renyi_graph(
        150, 450, num_labels=5, seed=7, name="g"))
    return service


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_closed_allows_and_failures_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        assert breaker.allow() == (True, None)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.opened_total == 1
        allowed, retry_after = breaker.allow()
        assert not allowed
        assert retry_after == pytest.approx(5.0)

    def test_cooldown_half_open_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.now += 6.0
        assert breaker.allow() == (True, None)  # the probe
        assert breaker.state == STATE_HALF_OPEN
        allowed, retry_after = breaker.allow()  # a second concurrent ask
        assert not allowed and retry_after is not None
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow() == (True, None)

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.now += 6.0
        assert breaker.allow()[0]
        breaker.record_failure()  # one failure suffices in HALF_OPEN
        assert breaker.state == STATE_OPEN
        assert breaker.opened_total == 2
        assert not breaker.allow()[0]

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(threshold=2, cooldown=5.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_released_probe_slot_is_reoffered_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.now += 6.0
        assert breaker.allow() == (True, None)  # the probe
        assert not breaker.allow()[0]
        # the probe request was turned away downstream (shed/rejected):
        # giving the slot back re-opens it to the very next request
        breaker.release_probe()
        assert breaker.allow() == (True, None)
        assert breaker.state == STATE_HALF_OPEN

    def test_lost_probe_times_out_and_is_reoffered(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.now += 6.0
        assert breaker.allow()[0]  # probe taken, outcome never arrives
        allowed, retry_after = breaker.allow()
        assert not allowed and retry_after == pytest.approx(5.0)
        clock.now += 5.5  # a full cooldown later: the probe is presumed
        assert breaker.allow() == (True, None)  # lost and re-offered
        breaker.record_success()
        assert breaker.state == STATE_CLOSED

    def test_straggler_success_while_open_is_ignored(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        # a slow request admitted before the circuit opened succeeds:
        # it must not short-circuit the cooldown
        breaker.record_success()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()[0]
        clock.now += 6.0  # ... only the HALF_OPEN probe may close it
        assert breaker.allow()[0]
        breaker.record_success()
        assert breaker.state == STATE_CLOSED

    def test_registry_tracks_clients_independently(self):
        clock = FakeClock()
        registry = BreakerRegistry(threshold=1, cooldown=5.0, clock=clock)
        registry.record("alice", failed=True)
        assert not registry.allow("alice")[0]
        assert registry.allow("bob") == (True, None)
        counts = registry.state_counts()
        assert counts[STATE_OPEN] == 1
        assert counts[STATE_CLOSED] == 1
        assert registry.snapshot()["alice"]["state"] == STATE_OPEN


class TestQueueWaitEstimator:
    def test_cold_estimator_returns_none(self):
        estimator = QueueWaitEstimator(window=32, min_samples=5)
        for _ in range(4):
            estimator.observe(1.0)
        assert estimator.p95() is None

    def test_p95_of_known_window(self):
        estimator = QueueWaitEstimator(window=100, min_samples=5)
        for wait in range(1, 101):  # 1..100
            estimator.observe(float(wait))
        assert estimator.p95() == pytest.approx(96.0)

    def test_window_is_bounded(self):
        estimator = QueueWaitEstimator(window=4, min_samples=1)
        for wait in (10.0, 10.0, 1.0, 1.0, 1.0, 1.0):
            estimator.observe(wait)
        assert len(estimator) == 4
        assert estimator.p95() == pytest.approx(1.0)


class TestDuplicateRequestTable:
    def test_roundtrip_returns_a_top_level_copy(self):
        table = DuplicateRequestTable(capacity=4)
        table.put(("c", "id", "q1"), {"ok": True, "n": 1})
        stored = table.get(("c", "id", "q1"))
        stored["duplicate"] = True  # the server's replay annotation
        assert "duplicate" not in table.get(("c", "id", "q1"))
        assert table.get(("c", "id", "nope")) is None
        assert table.stats()["hits"] == 2

    def test_lru_eviction(self):
        table = DuplicateRequestTable(capacity=2)
        table.put("a", {"n": 1})
        table.put("b", {"n": 2})
        table.get("a")  # refresh a
        table.put("c", {"n": 3})  # evicts b
        assert table.get("b") is None
        assert table.get("a") is not None

    def test_capacity_zero_disables(self):
        table = DuplicateRequestTable(capacity=0)
        table.put("a", {"n": 1})
        assert table.get("a") is None
        assert len(table) == 0


class TestDeadlineShedding:
    def test_sheds_when_deadline_below_p95_wait(self):
        with make_service(shed_min_samples=5) as service:
            for _ in range(5):
                service.queue_wait.observe(2.0)
            request = QueryRequest(query=EDGE_QUERY, timeout=0.1,
                                   client="impatient")
            response = service.submit(request).result(timeout=5)
            assert response.outcome.status is Outcome.SHED
            assert response.shed
            assert "p95 queue wait" in response.outcome.reason
            assert response.retry_after is not None
            # nothing was admitted, nothing leaked
            assert service.admission.in_flight == 0
            stats = service.stats()
            assert stats["shed"]["total"] == 1
            assert stats["shed"]["deadline"] == 1
            assert stats["submitted"] == (stats["admitted"]
                                          + stats["rejected"] + 1)

    def test_generous_deadline_still_runs(self):
        with make_service(shed_min_samples=5) as service:
            for _ in range(5):
                service.queue_wait.observe(0.001)
            response = service.submit(
                QueryRequest(query=EDGE_QUERY, timeout=5.0)).result(timeout=10)
            assert response.outcome.status is Outcome.COMPLETE

    def test_cold_estimator_never_sheds(self):
        with make_service(shed_min_samples=50) as service:
            response = service.submit(
                QueryRequest(query=EDGE_QUERY, timeout=0.001)
            ).result(timeout=10)
            assert response.outcome.status is not Outcome.SHED

    def test_shed_disabled_by_config(self):
        with make_service(shed_enabled=False, shed_min_samples=1) as service:
            service.queue_wait.observe(10.0)
            response = service.submit(
                QueryRequest(query=EDGE_QUERY, timeout=0.001)
            ).result(timeout=10)
            assert response.outcome.status is not Outcome.SHED


class TestBreakerShedding:
    def test_open_breaker_sheds_only_that_client(self):
        with make_service(breaker_threshold=2, shed_enabled=False) as service:
            service.breakers.record("hot", failed=True)
            service.breakers.record("hot", failed=True)
            shed = service.submit(QueryRequest(
                query=EDGE_QUERY, client="hot")).result(timeout=5)
            assert shed.outcome.status is Outcome.SHED
            assert "circuit breaker" in shed.outcome.reason
            assert shed.retry_after is not None
            ok = service.submit(QueryRequest(
                query=EDGE_QUERY, client="cool")).result(timeout=10)
            assert ok.outcome.status is Outcome.COMPLETE
            stats = service.stats()
            assert stats["shed"]["breaker"] == 1
            assert stats["resilience"]["breaker_states"][STATE_OPEN] == 1

    def test_timeouts_open_the_breaker_and_success_closes_it(self):
        with make_service(breaker_threshold=2, breaker_cooldown=0.2,
                          shed_enabled=False) as service:
            request = QueryRequest(query=EDGE_QUERY, client="slow")
            # the failure source must pass static analysis (a syntax-bad
            # query is now rejected before the breaker sees it), so fail
            # at execution instead: the document does not exist
            error = service.submit(QueryRequest(
                query=EDGE_QUERY, document="nope",
                client="slow")).result(timeout=5)
            assert error.error is not None
            error = service.submit(QueryRequest(
                query=EDGE_QUERY, document="nope",
                client="slow")).result(timeout=5)
            assert error.error is not None
            breaker = service.breakers.breaker("slow")
            assert breaker.state == STATE_OPEN
            shed = service.submit(request).result(timeout=5)
            assert shed.outcome.status is Outcome.SHED
            time.sleep(0.25)  # cooldown elapses: half-open probe runs
            probe = service.submit(request).result(timeout=10)
            assert probe.outcome.status is Outcome.COMPLETE
            assert breaker.state == STATE_CLOSED

    def test_turned_away_probe_releases_the_half_open_slot(self):
        with make_service(breaker_threshold=1, breaker_cooldown=0.1,
                          shed_min_samples=5) as service:
            error = service.submit(QueryRequest(
                query=EDGE_QUERY, document="nope",
                client="flaky")).result(timeout=5)
            assert error.error is not None
            breaker = service.breakers.breaker("flaky")
            assert breaker.state == STATE_OPEN
            time.sleep(0.15)  # cooldown elapses: HALF_OPEN next
            for _ in range(5):
                service.queue_wait.observe(2.0)
            # the HALF_OPEN probe itself is deadline-shed downstream:
            # the slot must come back instead of wedging the breaker
            shed = service.submit(QueryRequest(
                query=EDGE_QUERY, client="flaky", timeout=0.01,
            )).result(timeout=5)
            assert shed.outcome.status is Outcome.SHED
            assert "queue wait" in shed.outcome.reason
            probe = service.submit(QueryRequest(
                query=EDGE_QUERY, client="flaky", timeout=10.0,
            )).result(timeout=10)
            assert probe.outcome.status is Outcome.COMPLETE
            assert breaker.state == STATE_CLOSED

    def test_breaker_disabled_by_config(self):
        with make_service(breaker_threshold=0) as service:
            for _ in range(20):
                service._record_breaker(
                    QueryRequest(query=EDGE_QUERY, client="c"),
                    service.submit(QueryRequest(
                        query=EDGE_QUERY, document="nope", client="c")
                    ).result(timeout=5))
            response = service.submit(QueryRequest(
                query=EDGE_QUERY, client="c")).result(timeout=10)
            assert response.outcome.status is Outcome.COMPLETE


class TestPoolWatchdog:
    def test_hung_worker_is_recycled_and_caches_survive(self):
        with make_service(workers=1, default_timeout=0.2,
                          watchdog_multiple=2.0, watchdog_interval=0.05,
                          shed_enabled=False) as service:
            warm = service.submit(
                QueryRequest(query=EDGE_QUERY, limit=10)).result(timeout=10)
            assert warm.outcome.status is Outcome.COMPLETE
            assert warm.cache == "miss"

            def hook(request):
                if request.client == "hang":
                    time.sleep(1.2)  # well past 2 x 0.2s hard deadline

            service.execute_hook = hook
            hung = service.submit(QueryRequest(
                query=EDGE_QUERY, client="hang", use_cache=False,
            )).result(timeout=10)
            assert hung.outcome.status is Outcome.TIMED_OUT
            assert "watchdog" in hung.outcome.reason
            assert service.metrics.watchdog_recycles == 1
            assert service.admission.in_flight == 0

            # the pool self-healed: new queries run, caches intact
            service.execute_hook = None
            cached = service.submit(
                QueryRequest(query=EDGE_QUERY, limit=10)).result(timeout=10)
            assert cached.outcome.status is Outcome.COMPLETE
            assert cached.cache == "hit"
            fresh = service.submit(QueryRequest(
                query=EDGE_QUERY, limit=10, use_cache=False,
            )).result(timeout=10)
            assert fresh.outcome.status is Outcome.COMPLETE

    def test_late_result_from_abandoned_worker_is_dropped(self):
        with make_service(workers=1, default_timeout=0.1,
                          watchdog_multiple=2.0, watchdog_interval=0.05,
                          shed_enabled=False) as service:
            service.execute_hook = lambda request: time.sleep(0.8)
            response = service.submit(QueryRequest(
                query=EDGE_QUERY, use_cache=False)).result(timeout=10)
            assert response.outcome.status is Outcome.TIMED_OUT
            before = service.stats()["outcomes"]
            time.sleep(1.0)  # let the stuck worker finish its run
            after = service.stats()["outcomes"]
            # the late completion must not double-count an outcome
            assert before == after
            assert service.admission.in_flight == 0

    def test_queued_backlog_is_abandoned_not_recycled(self):
        with make_service(workers=1, default_timeout=10.0,
                          watchdog_multiple=2.0, watchdog_interval=0.05,
                          shed_enabled=False,
                          breaker_threshold=0) as service:
            release = threading.Event()

            def hook(request):
                if request.client == "busy":
                    release.wait(5.0)

            service.execute_hook = hook
            busy = service.submit(QueryRequest(
                query=EDGE_QUERY, client="busy", use_cache=False,
                timeout=5.0))
            time.sleep(0.1)  # the single worker has claimed "busy"
            queued = [service.submit(QueryRequest(
                query=EDGE_QUERY, client="waiting", use_cache=False,
                timeout=0.05)) for _ in range(3)]
            responses = [future.result(timeout=10) for future in queued]
            for response in responses:
                assert response.outcome.status is Outcome.TIMED_OUT
                assert "still queued" in response.outcome.reason
            # a backlog is not a wedged worker: the pool stays intact
            assert service.metrics.watchdog_recycles == 0
            assert service.metrics.watchdog_abandoned == 3
            release.set()
            done = busy.result(timeout=10)
            assert done.outcome.status is Outcome.COMPLETE
            assert service.admission.in_flight == 0

    def test_watchdog_disabled_by_config(self):
        with make_service(watchdog_multiple=0.0) as service:
            response = service.submit(
                QueryRequest(query=EDGE_QUERY)).result(timeout=10)
            assert response.outcome.status is Outcome.COMPLETE
            assert service._watchdog is None

    def test_process_pool_recycle_preserves_document_versions(self):
        with make_service(use_processes=True, workers=2) as service:
            first = service.submit(QueryRequest(
                query=EDGE_QUERY, limit=10)).result(timeout=60)
            assert first.outcome.status is Outcome.COMPLETE
            # process mode feeds the shed estimator too (round-trip
            # minus worker-reported execution time)
            assert len(service.queue_wait) >= 1
            service._recycle_pool("test recycle")
            second = service.submit(QueryRequest(
                query=EDGE_QUERY, limit=10, use_cache=False,
            )).result(timeout=60)
            assert second.outcome.status is Outcome.COMPLETE
            assert second.results == first.results


class TestHealthReady:
    def test_health_and_ready_lifecycle(self):
        service = make_service()
        health = service.health()
        assert health["status"] == "ok"
        assert health["documents"] == 1
        assert health["watchdog_recycles"] == 0
        assert service.ready() == (True, "ok")
        service.drain(timeout=5)
        ready, reason = service.ready()
        assert not ready and reason == "draining"
        assert service.health()["status"] == "draining"
        service.shutdown()
        assert service.ready()[0] is False

    def test_no_documents_not_ready(self):
        service = QueryService(ServiceConfig(workers=1))
        try:
            ready, reason = service.ready()
            assert not ready and "document" in reason
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# wire level


@pytest.fixture()
def server():
    service = make_service(queue_depth=16, per_client=16)
    srv = QueryServer(service, ("127.0.0.1", 0))
    thread = threading.Thread(target=srv.serve_until_shutdown, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown_gracefully(drain_timeout=2.0)
        thread.join(timeout=10)


def connect(server, name="test", **kwargs):
    host, port = server.address
    return ServiceClient(host, port, timeout=30.0, client_name=name,
                         **kwargs)


class TestWireResilience:
    def test_health_and_ready_ops(self, server):
        with connect(server) as client:
            health = client.health()
            assert health["status"] == "ok"
            assert "breakers" in health and "shed" in health
            assert client.ready() == (True, "ok")

    def test_declared_retry_replays_from_dup_table(self, server):
        with connect(server, name="dup") as client:
            first = client.query(EDGE_QUERY, limit=10,
                                 idempotency_key="op-42")
            assert first.ok and not first.duplicate
            reply = client.call({
                "op": "query", "query": EDGE_QUERY, "document": "data",
                "client": "dup", "limit": 10, "id": first.request_id,
                "idempotency_key": "op-42", "attempt": 2,
            })
            assert reply["duplicate"] is True
            assert reply["results"] == first.raw["results"]
            stats = client.stats()
            assert stats["duplicate_requests"] == 1
            assert stats["client_retries"] == {"dup": 1}

    def test_timed_out_response_is_not_replayed_to_a_retry(self):
        from concurrent.futures import Future

        from repro.runtime import QueryOutcome
        from repro.service.service import QueryResponse

        service = make_service()
        srv = QueryServer(service, ("127.0.0.1", 0))
        try:
            statuses = [Outcome.TIMED_OUT, Outcome.COMPLETE]

            def fake_submit(request):
                future = Future()
                future.set_result(QueryResponse(
                    request_id=request.request_id, client=request.client,
                    outcome=QueryOutcome(status=statuses.pop(0)),
                ))
                return future

            service.submit = fake_submit
            message = {"op": "query", "query": EDGE_QUERY, "client": "r",
                       "id": "q1", "idempotency_key": "k1"}
            first = srv.handle_message(json.dumps(message).encode())
            assert first["outcome"]["status"] == "TIMED_OUT"
            # the declared retry of a timed-out attempt must run fresh,
            # not be answered with the replayed timeout
            second = srv.handle_message(
                json.dumps({**message, "attempt": 2}).encode())
            assert "duplicate" not in second
            assert second["outcome"]["status"] == "COMPLETE"
            # ... and only the useful outcome entered the table
            third = srv.handle_message(
                json.dumps({**message, "attempt": 3}).encode())
            assert third.get("duplicate") is True
            assert third["outcome"]["status"] == "COMPLETE"
        finally:
            srv.server_close()
            del service.submit
            service.shutdown()

    def test_undeclared_id_reuse_is_not_replayed(self, server):
        # two client instances restart their id counters: same wire id,
        # different queries — the second must execute, not replay
        with connect(server, name="anon") as one:
            first = one.query(EDGE_QUERY, limit=5)
        with connect(server, name="anon") as two:
            second = two.query(EDGE_QUERY, limit=1)
        assert first.request_id == second.request_id
        assert not second.duplicate
        assert len(second.results) <= 1

    def test_empty_line_gets_a_structured_error(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"\n")
            reply = json.loads(reader.readline())
            assert reply["ok"] is False
            assert "empty line" in reply["error"]
            sock.sendall(b"   \t \n")
            reply = json.loads(reader.readline())
            assert reply["ok"] is False
            # the session survives blank-line noise
            sock.sendall(b'{"op": "ping", "id": "p1"}\n')
            reply = json.loads(reader.readline())
            assert reply["ok"] is True and reply["op"] == "ping"

    def test_decode_rejects_empty_and_whitespace_lines(self):
        for line in (b"", b"\n", b"   \n", b"\t\r\n"):
            with pytest.raises(ProtocolError, match="empty line"):
                decode(line)

    def test_graceful_shutdown_joins_handler_threads(self):
        service = make_service()
        srv = QueryServer(service, ("127.0.0.1", 0))
        thread = threading.Thread(target=srv.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        try:
            client = connect(srv, name="idle")
            client.ping()  # the handler thread is now alive and idle
            with srv._handlers_lock:
                handler_threads = list(srv._handlers.values())
            assert handler_threads and all(t.is_alive()
                                           for t in handler_threads)
            assert srv.shutdown_gracefully(drain_timeout=2.0)
            # the drain join closed the idle connection and reaped the
            # handler before the final log dump
            for t in handler_threads:
                t.join(timeout=2.0)
            assert not any(t.is_alive() for t in handler_threads)
            with srv._handlers_lock:
                assert not srv._handlers
            with pytest.raises((ConnectionError, OSError)):
                client.ping()
            client.close()
        finally:
            thread.join(timeout=10)


class TestRetryingClient:
    def _fake_server(self, drop_first: int):
        """A one-thread ndjson server that drops the first N
        connections at accept, then answers pings."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        state = {"accepted": 0}

        def serve():
            while True:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                state["accepted"] += 1
                if state["accepted"] <= drop_first:
                    conn.close()
                    continue
                with conn, conn.makefile("rb") as reader:
                    while True:
                        line = reader.readline()
                        if not line:
                            break
                        message = json.loads(line)
                        reply = {"id": message.get("id"), "ok": True,
                                 "op": "ping", "version": 1,
                                 "draining": False}
                        conn.sendall(json.dumps(reply).encode() + b"\n")

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return listener, state

    def test_retries_reconnect_after_connection_loss(self):
        listener, state = self._fake_server(drop_first=1)
        host, port = listener.getsockname()
        client = ServiceClient(host, port, timeout=5.0, retries=2,
                               backoff_base=0.01, retry_seed=1)
        try:
            reply = client.ping()
            assert reply["ok"] is True
            assert client.retry_count == 1
            assert client.reconnects == 1
        finally:
            client.close()
            listener.close()

    def test_no_retries_by_default(self):
        listener, state = self._fake_server(drop_first=10)
        host, port = listener.getsockname()
        client = ServiceClient(host, port, timeout=5.0)
        try:
            with pytest.raises((ConnectionError, OSError)):
                client.ping()
            assert client.retry_count == 0
        finally:
            client.close()
            listener.close()

    def test_retries_exhaust_within_the_overall_budget(self):
        listener, state = self._fake_server(drop_first=100)
        host, port = listener.getsockname()
        client = ServiceClient(host, port, timeout=2.0, retries=3,
                               backoff_base=0.01, retry_seed=1)
        started = time.monotonic()
        try:
            with pytest.raises((ConnectionError, OSError)):
                client.ping()
        finally:
            client.close()
            listener.close()
        assert time.monotonic() - started < 5.0
        assert client.retry_count <= 3

    def test_connect_timeout_is_honored_everywhere(self, monkeypatch):
        import repro.service.client as client_module

        seen = []
        real_create = socket.create_connection

        def spy(address, timeout=None, **kwargs):
            seen.append(timeout)
            return real_create(address, timeout=timeout, **kwargs)

        monkeypatch.setattr(client_module.socket,
                            "create_connection", spy)
        listener, state = self._fake_server(drop_first=1)
        host, port = listener.getsockname()
        client = ServiceClient(host, port, timeout=30.0,
                               connect_timeout=2.5, retries=2,
                               backoff_base=0.01, retry_seed=1)
        try:
            client.ping()
        finally:
            client.close()
            listener.close()
        # the initial connect AND the retry reconnect both used it
        assert len(seen) >= 2
        assert all(timeout == 2.5 for timeout in seen)

    def test_connect_timeout_defaults_to_timeout(self):
        client = ServiceClient(timeout=7.0)
        assert client.connect_timeout == 7.0
        tight = ServiceClient(timeout=30.0, connect_timeout=0.5)
        assert tight.connect_timeout == 0.5


class TestHTTPProbes:
    def test_health_and_ready_routes(self):
        import urllib.error
        import urllib.request

        from repro.obs.httpexport import MetricsHTTPExporter

        state = {"ready": True}
        exporter = MetricsHTTPExporter(
            lambda: "# metrics\n",
            health_fn=lambda: {"status": "ok", "draining": False},
            ready_fn=lambda: ((True, "ok") if state["ready"]
                              else (False, "draining")),
        ).start()
        host, port = exporter.address
        base = f"http://{host}:{port}"
        try:
            with urllib.request.urlopen(f"{base}/health", timeout=5) as resp:
                assert resp.status == 200
                assert json.loads(resp.read())["status"] == "ok"
            with urllib.request.urlopen(f"{base}/ready", timeout=5) as resp:
                assert resp.status == 200
                assert json.loads(resp.read())["ready"] is True
            state["ready"] = False
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/ready", timeout=5)
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["reason"] == "draining"
        finally:
            exporter.close()

    def test_routes_absent_without_callbacks(self):
        import urllib.error
        import urllib.request

        from repro.obs.httpexport import MetricsHTTPExporter

        exporter = MetricsHTTPExporter(lambda: "# metrics\n").start()
        host, port = exporter.address
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{host}:{port}/ready", timeout=5)
            assert excinfo.value.code == 404
        finally:
            exporter.close()


class TestChaosProxy:
    def _echo_server(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)

        def serve():
            while True:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                with conn:
                    while True:
                        try:
                            data = conn.recv(4096)
                        except OSError:
                            break
                        if not data:
                            break
                        try:
                            conn.sendall(data)
                        except OSError:
                            break

        threading.Thread(target=serve, daemon=True).start()
        return listener

    def test_benign_faults_preserve_the_byte_stream(self):
        listener = self._echo_server()
        proxy = ChaosProxy(listener.getsockname(), seed=1, rates={
            "reset": 0.0, "corrupt": 0.0, "duplicate": 0.0,
            "delay": 0.3, "split": 0.5,
        }).start()
        try:
            with socket.create_connection(proxy.address, timeout=5) as sock:
                sock.settimeout(5)
                payload = b"x" * 1000 + b"\n"
                for _ in range(10):
                    sock.sendall(payload)
                    got = b""
                    while len(got) < len(payload):
                        got += sock.recv(4096)
                    assert got == payload
            assert proxy.stats["split"] + proxy.stats["delay"] > 0
        finally:
            proxy.close()
            listener.close()

    def test_reset_rate_one_drops_the_connection(self):
        listener = self._echo_server()
        proxy = ChaosProxy(listener.getsockname(), seed=1, rates={
            "reset": 1.0, "corrupt": 0.0, "duplicate": 0.0,
            "delay": 0.0, "split": 0.0,
        }).start()
        try:
            with socket.create_connection(proxy.address, timeout=5) as sock:
                sock.settimeout(5)
                sock.sendall(b"hello\n")
                assert sock.recv(4096) == b""  # peer gone
            assert proxy.stats["reset"] >= 1
        finally:
            proxy.close()
            listener.close()

    def test_fault_schedule_is_deterministic_per_seed(self):
        import random as random_module

        rng_a = random_module.Random("7:1:c2s")
        rng_b = random_module.Random("7:1:c2s")
        assert [rng_a.random() for _ in range(32)] == \
               [rng_b.random() for _ in range(32)]
