"""Admission control: bounds, quotas, draining."""

from repro.service import AdmissionController, ServiceConfig
from repro.service.admission import (
    REASON_CLIENT_QUOTA,
    REASON_DRAINING,
    REASON_QUEUE_FULL,
)


def controller(**overrides) -> AdmissionController:
    defaults = dict(workers=2, queue_depth=2, per_client=2)
    defaults.update(overrides)
    return AdmissionController(ServiceConfig(**defaults))


class TestBounds:
    def test_admits_up_to_workers_plus_queue(self):
        control = controller()
        for i in range(4):
            assert control.try_admit(f"c{i}") is None
        assert control.try_admit("late") == REASON_QUEUE_FULL
        assert control.in_flight == 4

    def test_release_frees_a_slot(self):
        control = controller()
        for i in range(4):
            control.try_admit(f"c{i}")
        control.release("c0")
        assert control.try_admit("next") is None

    def test_per_client_quota(self):
        control = controller(queue_depth=10)
        assert control.try_admit("greedy") is None
        assert control.try_admit("greedy") is None
        assert control.try_admit("greedy") == REASON_CLIENT_QUOTA
        # other clients are unaffected
        assert control.try_admit("polite") is None
        assert control.client_load("greedy") == 2

    def test_quota_recovers_after_release(self):
        control = controller(queue_depth=10)
        control.try_admit("c")
        control.try_admit("c")
        control.release("c")
        assert control.try_admit("c") is None

    def test_release_cleans_up_client_entry(self):
        control = controller()
        control.try_admit("c")
        control.release("c")
        assert control.client_load("c") == 0
        assert control.in_flight == 0


class TestDraining:
    def test_draining_rejects_everything(self):
        control = controller()
        control.try_admit("before")
        control.start_draining()
        assert control.draining
        assert control.try_admit("after") == REASON_DRAINING
        # admitted work keeps its slot until released
        assert control.in_flight == 1
        control.release("before")
        assert control.in_flight == 0
