"""Observability through the service: traces, metrics, slow log, explain."""

import json

import pytest

from repro.datasets.random_graphs import erdos_renyi_graph
from repro.obs.metrics import parse_prometheus_text
from repro.obs.trace import SpanCollector, tracer
from repro.service import (
    QueryRequest,
    QueryServer,
    QueryService,
    ServiceConfig,
)

EDGE_QUERY = ('graph P { node u1 <label="L001">; node u2 <label="L002">; '
              'edge e1 (u1, u2); }')


def make_service(**overrides) -> QueryService:
    defaults = dict(workers=2, default_timeout=10.0)
    defaults.update(overrides)
    service = QueryService(ServiceConfig(**defaults))
    service.register("data", erdos_renyi_graph(
        150, 450, num_labels=5, seed=7, name="g"))
    return service


def request_roots(collector: SpanCollector):
    return collector.by_name("service.request")


class TestRequestTracing:
    def test_one_request_yields_one_tree(self):
        service = make_service()
        collector = SpanCollector()
        try:
            with tracer().session(collector):
                response = service.submit(
                    QueryRequest(query=EDGE_QUERY, request_id="t1")).result()
            assert response.error is None
            roots = request_roots(collector)
            assert len(roots) == 1
            root = roots[0]
            assert root.tags["request_id"] == "t1"
            assert root.tags["status"] == "COMPLETE"
            assert root.tags["cache"] in ("miss", "bypass")
            names = {s.name for s in collector.spans
                     if s.trace_id == root.trace_id}
            assert {"service.admission", "service.cache_probe",
                    "service.execute", "match.query",
                    "match.search"} <= names
            top = root.top_spans()
            assert top["service.request"]["count"] == 1
            assert "match.query" in top
        finally:
            service.shutdown(timeout=0)

    def test_cache_hit_requests_skip_the_execute_span(self):
        service = make_service()
        collector = SpanCollector()
        try:
            with tracer().session(collector):
                service.submit(QueryRequest(query=EDGE_QUERY,
                                            request_id="cold")).result()
                warm = service.submit(QueryRequest(query=EDGE_QUERY,
                                                   request_id="warm")).result()
            assert warm.cache == "hit"
            warm_root = next(r for r in request_roots(collector)
                             if r.tags["request_id"] == "warm")
            warm_names = {s.name for s in collector.spans
                          if s.trace_id == warm_root.trace_id}
            assert "service.execute" not in warm_names
            probes = [s for s in collector.by_name("service.cache_probe")
                      if s.trace_id == warm_root.trace_id]
            assert probes[0].tags["hit"] is True
        finally:
            service.shutdown(timeout=0)

    def test_rejected_requests_finish_their_root(self):
        from repro.core import Graph

        # one worker, no queue: while the heavy blocker is in flight,
        # any further request is shed at admission — deterministically
        dense = Graph("dense")
        ids = [f"v{i}" for i in range(22)]
        for node_id in ids:
            dense.add_node(node_id, label="A")
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                dense.add_edge(a, b)
        heavy = ("graph P { "
                 + " ".join(f'node u{i} <label="A">;' for i in range(7))
                 + " ".join(f' edge e{i} (u{i}, u{i + 1});'
                            for i in range(6))
                 + " }")
        service = make_service(workers=1, queue_depth=0, per_client=8,
                               default_timeout=30.0)
        service.register("dense", dense)
        collector = SpanCollector()
        try:
            with tracer().session(collector):
                blocker = service.submit(QueryRequest(
                    query=heavy, document="dense", request_id="blocker",
                    use_cache=False))
                rejected = service.submit(QueryRequest(
                    query=EDGE_QUERY, request_id="shed")).result()
                service.cancel("blocker", reason="test over")
                blocker.result()
            assert rejected.outcome.status.value == "REJECTED"
            roots = {r.tags["request_id"]: r
                     for r in request_roots(collector)}
            assert roots["shed"].tags["status"] == "REJECTED"
            admissions = [s for s in collector.by_name("service.admission")
                          if s.trace_id == roots["shed"].trace_id]
            assert admissions[0].tags.get("rejected")
            # every root was finished — durations are set
            assert all(r.duration is not None for r in roots.values())
        finally:
            service.shutdown(timeout=0)

    def test_concurrent_requests_never_interleave_their_trees(self):
        service = make_service(workers=4, queue_depth=32, per_client=32)
        collector = SpanCollector()
        try:
            with tracer().session(collector):
                futures = [
                    service.submit(QueryRequest(
                        query=EDGE_QUERY, request_id=f"r{i}",
                        use_cache=False))
                    for i in range(8)
                ]
                for future in futures:
                    future.result()
            roots = request_roots(collector)
            assert len(roots) == 8
            by_trace = {root.trace_id: root.tags["request_id"]
                        for root in roots}
            assert len(by_trace) == 8  # distinct trace per request
            for finished in collector.spans:
                assert finished.trace_id in by_trace
            for root in roots:
                top = root.top_spans(limit=32)
                # exactly this request's phases, one of each
                assert top["service.execute"]["count"] == 1
                assert top["service.cache_probe"]["count"] == 1
                assert top["match.query"]["count"] == 1
        finally:
            service.shutdown(timeout=0)

    def test_process_pool_requests_carry_a_dispatch_span(self):
        service = make_service(use_processes=True, workers=2)
        collector = SpanCollector()
        try:
            with tracer().session(collector):
                response = service.submit(
                    QueryRequest(query=EDGE_QUERY,
                                 request_id="proc")).result()
            assert response.error is None
            dispatches = collector.by_name("service.dispatch")
            assert len(dispatches) == 1
            assert dispatches[0].tags["mode"] == "process"
            assert dispatches[0].duration is not None
        finally:
            service.shutdown(timeout=0)


class TestMetricsExposition:
    def test_prometheus_text_parses_and_counts_requests(self):
        service = make_service()
        try:
            service.submit(QueryRequest(query=EDGE_QUERY)).result()
            service.submit(QueryRequest(query=EDGE_QUERY)).result()
            parsed = parse_prometheus_text(service.metrics_text())
            assert parsed["repro_service_submitted_total"] == 2
            assert parsed["repro_service_admitted_total"] == 2
            assert parsed[
                'repro_service_outcomes_total{status="COMPLETE"}'] == 2
            assert parsed["repro_service_request_seconds_count"] == 2
            assert parsed["repro_service_in_flight"] == 0
            assert parsed["repro_service_documents"] == 1
            # back-compat plain-int counters still agree
            assert service.metrics.submitted == 2
            assert service.metrics.admitted == 2
        finally:
            service.shutdown(timeout=0)

    def test_wal_gauge_tracks_the_durable_store(self, tmp_path):
        store = str(tmp_path / "state.db")
        service = QueryService(ServiceConfig(workers=1, store_path=store))
        try:
            service.register("data", erdos_renyi_graph(
                40, 80, num_labels=3, seed=1, name="g"))
            parsed = parse_prometheus_text(service.metrics_text())
            assert parsed["repro_store_wal_bytes"] > 0
        finally:
            service.shutdown(timeout=0)


class TestSlowLog:
    def test_over_threshold_requests_land_slowest_first(self):
        service = make_service(slow_log_size=4, slow_log_threshold=0.0)
        collector = SpanCollector()
        try:
            with tracer().session(collector):
                service.submit(QueryRequest(query=EDGE_QUERY,
                                            request_id="s1",
                                            use_cache=False)).result()
            snap = service.stats()["slow_queries"]
            assert snap
            assert snap[0]["request_id"] == "s1"
            assert snap[0]["status"] == "COMPLETE"
            assert snap[0]["elapsed"] > 0
            # tracing was on: the entry carries span aggregates
            assert "service.request" in snap[0]["spans"]
        finally:
            service.shutdown(timeout=0)

    def test_threshold_and_capacity_zero_suppress_entries(self):
        quiet = make_service(slow_log_threshold=60.0)
        disabled = make_service(slow_log_size=0)
        try:
            quiet.submit(QueryRequest(query=EDGE_QUERY)).result()
            disabled.submit(QueryRequest(query=EDGE_QUERY)).result()
            assert quiet.stats()["slow_queries"] == []
            assert disabled.stats()["slow_queries"] == []
        finally:
            quiet.shutdown(timeout=0)
            disabled.shutdown(timeout=0)

    def test_config_rejects_negative_slow_log_values(self):
        with pytest.raises(ValueError):
            ServiceConfig(slow_log_size=-1)
        with pytest.raises(ValueError):
            ServiceConfig(slow_log_threshold=-0.5)


class TestWireOps:
    def make_server(self):
        service = make_service()
        server = QueryServer(service, ("127.0.0.1", 0))
        return service, server

    def call(self, server, message):
        return server.handle_message(json.dumps(message).encode("utf-8"))

    def test_explain_over_the_wire(self):
        service, server = self.make_server()
        try:
            reply = self.call(server, {
                "op": "explain", "id": "e1", "query": EDGE_QUERY,
                "analyze": True,
            })
            assert reply["ok"], reply
            document = reply["explain"]
            assert document["document"] == "data"
            entry = document["graphs"][0]
            assert entry["order"]
            assert entry["nodes"][0]["retrieval"]
            assert entry["actual"]["outcome"]["status"] == "COMPLETE"
        finally:
            server.server_close()
            service.shutdown(timeout=0)

    def test_stats_formats_over_the_wire(self):
        service, server = self.make_server()
        try:
            self.call(server, {"op": "query", "id": "q1",
                               "query": EDGE_QUERY})
            as_json = self.call(server, {"op": "stats", "id": "s1"})
            assert as_json["stats"]["submitted"] == 1
            assert "slow_queries" in as_json["stats"]
            as_text = self.call(server, {"op": "stats", "id": "s2",
                                         "format": "prometheus"})
            parsed = parse_prometheus_text(as_text["stats_text"])
            assert parsed["repro_service_submitted_total"] == 1
            bad = self.call(server, {"op": "stats", "format": "xml"})
            assert not bad["ok"]
            no_query = self.call(server, {"op": "explain"})
            assert not no_query["ok"]
        finally:
            server.server_close()
            service.shutdown(timeout=0)


class TestDurableWriteSpans:
    def test_registration_emits_wal_spans(self, tmp_path):
        store = str(tmp_path / "state.db")
        collector = SpanCollector()
        service = QueryService(ServiceConfig(workers=1, store_path=store))
        try:
            with tracer().session(collector):
                service.register("data", erdos_renyi_graph(
                    40, 80, num_labels=3, seed=1, name="g"))
            names = {s.name for s in collector.spans}
            assert "wal.append" in names
            assert "wal.commit" in names
            commit = collector.by_name("wal.commit")[0]
            assert commit.counters.get("pages", 0) >= 1
        finally:
            service.shutdown(timeout=0)
