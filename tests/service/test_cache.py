"""Plan/result cache semantics: LRU order, version invalidation,
outcome cacheability."""

from repro.runtime import Outcome, QueryOutcome
from repro.service import LRUCache, ResultCache
from repro.service.cache import make_key


class TestLRU:
    def test_hit_miss_counters(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a
        cache.put("c", 3)       # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_zero_capacity_disables(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_invalidate_all_and_by_predicate(self):
        cache = LRUCache(capacity=8)
        for i in range(4):
            cache.put(("doc", i), i)
        assert cache.invalidate(lambda key: key[1] % 2 == 0) == 2
        assert len(cache) == 2
        assert cache.invalidate() == 2
        assert len(cache) == 0


class TestResultCache:
    def outcome(self, status: Outcome) -> QueryOutcome:
        return QueryOutcome(status=status, results=3)

    def test_complete_and_truncated_are_cacheable(self):
        cache = ResultCache(capacity=4)
        key = make_key("data", "q", ("optimized", 10), 0)
        assert cache.admit(key, [{"g": 1}], self.outcome(Outcome.COMPLETE))
        assert cache.get(key) is not None

    def test_timed_out_and_cancelled_are_never_cached(self):
        cache = ResultCache(capacity=4)
        for status in (Outcome.TIMED_OUT, Outcome.CANCELLED,
                       Outcome.REJECTED):
            key = make_key("data", "q", ("optimized", 10), 0)
            assert not cache.admit(key, [], self.outcome(status))
            assert cache.get(key) is None

    def test_version_bump_changes_the_key(self):
        cache = ResultCache(capacity=4)
        old = make_key("data", "q", ("optimized", 10), version=7)
        new = make_key("data", "q", ("optimized", 10), version=8)
        cache.admit(old, [{"row": 1}], self.outcome(Outcome.COMPLETE))
        assert cache.get(new) is None  # mutation invalidates implicitly
        assert cache.get(old) is not None
