"""Trace context over the wire: one tree across client and server.

The client attaches its active span's ids to outgoing requests and the
server roots its ``service.request`` span under them, so a cluster
fan-out's trace reconstructs as ONE tree even though every hop runs in
its own process.  Here client and server share a process (and thus the
tracer), which lets the test assert directly on the captured spans.
"""

import threading

import pytest

from repro.datasets.random_graphs import erdos_renyi_graph
from repro.obs.trace import SpanCollector, span_tree, tracer
from repro.service import QueryServer, QueryService, ServiceClient, ServiceConfig

QUERY = ('graph P { node u1 <label="L001">; node u2 <label="L002">; '
         'edge e1 (u1, u2); }')


@pytest.fixture()
def server():
    service = QueryService(ServiceConfig(workers=2, queue_depth=8,
                                         default_timeout=10.0))
    service.register("data", erdos_renyi_graph(
        120, 360, num_labels=5, seed=11, name="data"))
    srv = QueryServer(service, ("127.0.0.1", 0))
    thread = threading.Thread(target=srv.serve_until_shutdown, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown_gracefully(drain_timeout=2.0)
        thread.join(timeout=10)


def test_server_roots_its_request_span_under_the_caller(server):
    collector = SpanCollector()
    host, port = server.address
    with tracer().session(collector):
        with tracer().span("caller.fanout") as caller:
            with ServiceClient(host, port, timeout=10.0,
                               client_name="tracer") as client:
                reply = client.query(QUERY, limit=5, no_cache=True)
            assert reply.ok
    requests = collector.by_name("service.request")
    assert len(requests) == 1
    request = requests[0]
    # joined the caller's distributed trace instead of minting its own
    assert request.trace_id == caller.trace_id
    assert request.parent_id == caller.span_id
    # offline reconstruction nests it under the caller too
    roots = span_tree([s.record() for s in collector.spans])
    fanouts = [r for r in roots if r["name"] == "caller.fanout"]
    assert len(fanouts) == 1
    child_names = {child["name"] for child in fanouts[0]["children"]}
    assert "service.request" in child_names


def test_without_an_active_span_the_server_starts_its_own_trace(server):
    collector = SpanCollector()
    host, port = server.address
    with tracer().session(collector):
        with ServiceClient(host, port, timeout=10.0,
                           client_name="untraced") as client:
            assert client.query(QUERY, limit=5, no_cache=True).ok
    request = collector.by_name("service.request")[0]
    assert request.parent_id is None


def test_span_ids_are_unique_across_processes_by_construction():
    # two processes must never mint the same span id: each draws from a
    # pid-prefixed range (collisions would cross-link merged traces)
    from repro.obs import trace as trace_module

    base = next(trace_module._ids)
    assert base >> 40  # the pid prefix is present
    assert base < 2 ** 60  # and ids stay JSON-exact
