"""QueryService facade: execution, caching, cancellation, governance."""

import time

import pytest

from repro.datasets.random_graphs import erdos_renyi_graph
from repro.runtime import Outcome
from repro.service import QueryRequest, QueryService, ServiceConfig


def make_service(**overrides) -> QueryService:
    defaults = dict(workers=2, default_timeout=10.0)
    defaults.update(overrides)
    service = QueryService(ServiceConfig(**defaults))
    service.register("data", erdos_renyi_graph(
        150, 450, num_labels=5, seed=7, name="g"))
    return service


EDGE_QUERY = ('graph P { node u1 <label="L001">; node u2 <label="L002">; '
              'edge e1 (u1, u2); }')


def dense_service(**overrides) -> QueryService:
    """A service over a dense one-label graph (slow exhaustive queries)."""
    from repro.core import Graph

    graph = Graph("dense")
    ids = [f"v{i}" for i in range(22)]
    for node_id in ids:
        graph.add_node(node_id, label="A")
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            graph.add_edge(a, b)
    defaults = dict(workers=2, default_timeout=30.0,
                    default_max_results=None)
    defaults.update(overrides)
    service = QueryService(ServiceConfig(**defaults))
    service.register("data", graph)
    return service


HEAVY_QUERY = ("graph P { "
               + " ".join(f'node u{i} <label="A">;' for i in range(7))
               + " ".join(f' edge e{i} (u{i}, u{i + 1});' for i in range(6))
               + " }")


class TestExecution:
    def test_execute_returns_rows_and_outcome(self):
        with make_service() as service:
            response = service.execute(EDGE_QUERY)
            assert response.outcome.status is Outcome.COMPLETE
            assert response.error is None
            for row in response.results:
                assert set(row) == {"graph", "nodes", "edges"}
                assert row["nodes"]  # pattern nodes are mapped

    def test_compiled_pattern_bypasses_caches(self):
        from repro.core import GroundPattern, clique_motif

        with make_service() as service:
            pattern = GroundPattern(clique_motif(["L001", "L002"]))
            response = service.execute(pattern)
            assert response.cache == "bypass"
            assert response.outcome.status is Outcome.COMPLETE

    def test_compile_error_is_a_rejection_not_an_exception(self):
        with make_service() as service:
            response = service.execute("graph P { this is not a pattern")
            assert response.outcome.status is Outcome.REJECTED
            assert response.outcome.reason == "invalid_query"
            assert response.outcome.detail["diagnostics"]
            assert response.results == []

    def test_unknown_document_is_an_error_response(self):
        with make_service() as service:
            response = service.execute(EDGE_QUERY, document="nope")
            assert response.error is not None


class TestResultCache:
    def test_repeat_query_hits_cache_and_matches_cold_results(self):
        with make_service() as service:
            cold = service.execute(EDGE_QUERY)
            warm = service.execute(EDGE_QUERY)
            assert cold.cache == "miss"
            assert warm.cache == "hit"
            assert warm.results == cold.results
            assert service.metrics.result_cache_hits == 1

    def test_mutation_invalidates_via_version(self):
        with make_service() as service:
            service.execute(EDGE_QUERY)
            graph = service.database.doc("data")[0]
            graph.add_node("fresh", label="L001")
            response = service.execute(EDGE_QUERY)
            assert response.cache == "miss"

    def test_no_cache_request_bypasses(self):
        with make_service() as service:
            service.execute(EDGE_QUERY)
            response = service.execute(EDGE_QUERY, use_cache=False)
            assert response.cache == "bypass"

    def test_different_limits_are_different_entries(self):
        with make_service() as service:
            a = service.execute(EDGE_QUERY, limit=1)
            b = service.execute(EDGE_QUERY, limit=2)
            assert a.cache == "miss" and b.cache == "miss"
            assert len(a.results) == 1
            assert len(b.results) == 2

    def test_budget_truncated_results_not_replayed_without_budget(self):
        """A tiny max_steps run must not poison the unbudgeted entry."""
        with make_service() as service:
            tight = service.execute(EDGE_QUERY, max_steps=10)
            assert tight.outcome.status is Outcome.TRUNCATED
            full = service.execute(EDGE_QUERY)
            assert full.cache == "miss"  # different budgets, different key
            assert full.outcome.status is Outcome.COMPLETE
            assert len(full.results) >= len(tight.results)
            # the truncated entry is still a valid hit for an identical ask
            again = service.execute(EDGE_QUERY, max_steps=10)
            assert again.cache == "hit"
            assert again.results == tight.results

    def test_timed_out_runs_are_not_cached(self):
        with dense_service() as service:
            first = service.execute(HEAVY_QUERY, timeout=0.1)
            assert first.outcome.status is Outcome.TIMED_OUT
            second = service.execute(HEAVY_QUERY, timeout=0.1)
            assert second.cache == "miss"  # never served from cache
            assert service.metrics.result_cache_hits == 0


class TestPlanCache:
    def test_prepared_query_replays_the_search_order(self):
        with make_service() as service:
            cold = service.execute(EDGE_QUERY, use_cache=True)
            # drop only the result entries so execution happens again
            service.result_cache.invalidate()
            warm = service.execute(EDGE_QUERY)
            assert warm.cache == "miss"
            assert warm.results == cold.results
            assert service.metrics.plan_cache_hits == 1


class TestGovernance:
    def test_request_budgets_tighten_but_never_exceed_defaults(self):
        config = ServiceConfig(workers=1, default_timeout=5.0,
                               default_max_results=10)
        context = config.derive_context(timeout=60.0, max_results=50)
        assert context.timeout == 5.0
        assert context.max_results == 10
        tighter = config.derive_context(timeout=0.5)
        assert tighter.timeout == 0.5

    def test_per_request_timeout(self):
        with dense_service() as service:
            response = service.execute(HEAVY_QUERY, timeout=0.1)
            assert response.outcome.status is Outcome.TIMED_OUT
            assert response.outcome.steps > 0

    def test_cancel_in_flight_request(self):
        with dense_service() as service:
            request = QueryRequest(query=HEAVY_QUERY, use_cache=False)
            future = service.submit(request)
            time.sleep(0.15)
            assert service.cancel(request.request_id, "test cancel")
            response = future.result(timeout=30)
            assert response.outcome.status is Outcome.CANCELLED
            assert "test cancel" in response.outcome.reason

    def test_cancel_unknown_id_returns_false(self):
        with make_service() as service:
            assert not service.cancel("never-submitted")

    def test_duplicate_in_flight_id_is_rejected(self):
        """Reusing a running query's id must not orphan its cancel token."""
        with dense_service() as service:
            first = QueryRequest(query=HEAVY_QUERY, request_id="dup",
                                 use_cache=False)
            second = QueryRequest(query=HEAVY_QUERY, request_id="dup",
                                  use_cache=False)
            future = service.submit(first)
            response = service.submit(second).result(timeout=5)
            assert response.rejected
            assert "duplicate" in response.outcome.reason
            # the original request is still tracked and cancellable
            assert service.cancel("dup", "test cancel")
            assert future.result(timeout=30).outcome.status is (
                Outcome.CANCELLED)
            snap = service.stats()
            assert snap["submitted"] == snap["admitted"] + snap["rejected"]


class TestAdmission:
    def test_load_shedding_rejects_with_structured_outcome(self):
        with dense_service(workers=1, queue_depth=1,
                           default_timeout=1.0) as service:
            requests = [QueryRequest(query=HEAVY_QUERY, client=f"c{i}",
                                     use_cache=False)
                        for i in range(6)]
            futures = [service.submit(r) for r in requests]
            responses = [f.result(timeout=30) for f in futures]
            rejected = [r for r in responses if r.rejected]
            assert rejected, "expected load shedding with 1 worker + queue 1"
            for response in rejected:
                assert response.outcome.status is Outcome.REJECTED
                assert response.outcome.steps == 0  # never executed
            snap = service.stats()
            assert snap["submitted"] == snap["admitted"] + snap["rejected"]

    def test_invalid_query_never_reaches_the_pool(self):
        with make_service() as service:
            service.execute(EDGE_QUERY)  # warm baseline counters
            before = service.stats()
            response = service.execute(
                "graph P { node v1; } where Q.x > 1")
            assert response.outcome.status is Outcome.REJECTED
            assert response.outcome.reason == "invalid_query"
            diags = response.outcome.detail["diagnostics"]
            assert diags and diags[0]["code"] == "GQL001"
            assert diags[0]["severity"] == "error"
            after = service.stats()
            assert after["invalid_queries"] == before["invalid_queries"] + 1
            assert after["rejected"] == before["rejected"] + 1
            assert after["submitted"] == before["submitted"] + 1
            assert after["admitted"] == before["admitted"]  # never admitted
            assert after["executed"] == before["executed"]  # no worker burned
            assert after["submitted"] == after["admitted"] + after["rejected"]

    def test_warnings_do_not_reject(self):
        # a disconnected pattern is a WARNING: admission only acts on
        # error-severity findings
        with make_service() as service:
            response = service.execute(
                'graph P { node u1 <label="L001">; node u2 <label="L002">; }')
            assert response.outcome.status is Outcome.COMPLETE

    def test_validation_can_be_disabled(self):
        with make_service(validate_queries=False) as service:
            response = service.execute(
                "graph P { node v1; } where Q.x > 1")
            # the query reaches a worker and fails there instead
            assert response.outcome.status is not Outcome.REJECTED
            assert response.error is not None
            assert service.stats()["invalid_queries"] == 0

    def test_validation_verdicts_are_cached(self):
        with make_service() as service:
            bad = "graph P { node v1; } where Q.x > 1"
            service.execute(bad)
            service.execute(bad)
            assert service.stats()["invalid_queries"] == 2
            assert service._validation_cache.hits >= 1

    def test_stats_snapshot_shape(self):
        with make_service() as service:
            service.execute(EDGE_QUERY)
            snap = service.stats()
            assert snap["documents"] == ["data"]
            assert snap["result_cache"]["capacity"] > 0
            assert snap["latency"]["count"] >= 1
            assert snap["outcomes"]["COMPLETE"] >= 1

    def test_stats_request_counters_not_clobbered_by_lru_probes(self):
        """Per-probe LRU counters live under "lru"; the request-level
        hit/miss counters must survive the merge."""
        with make_service() as service:
            service.execute(EDGE_QUERY)  # miss (stored)
            service.execute(EDGE_QUERY)  # hit
            snap = service.stats()
            assert snap["result_cache"]["hits"] == (
                service.metrics.result_cache_hits) == 1
            assert snap["result_cache"]["misses"] == (
                service.metrics.result_cache_misses) == 1
            # the raw LRU probe counters are namespaced, not merged over
            assert set(snap["result_cache"]["lru"]) == {"hits", "misses"}
            assert set(snap["plan_cache"]["lru"]) == {"hits", "misses"}

    def test_unadmitted_results_do_not_count_as_cache_misses(self):
        with dense_service() as service:
            response = service.execute(HEAVY_QUERY, timeout=0.1)
            assert response.outcome.status is Outcome.TIMED_OUT
            # TIMED_OUT is never admitted, so no miss is recorded
            assert service.metrics.result_cache_misses == 0


class TestLifecycle:
    def test_shutdown_drains_and_rejects_new_work(self):
        service = make_service()
        service.execute(EDGE_QUERY)
        service.shutdown()
        response = service.execute(EDGE_QUERY)
        assert response.rejected

    def test_shutdown_cancels_stragglers_past_the_deadline(self):
        service = dense_service(drain_timeout=0.2)
        request = QueryRequest(query=HEAVY_QUERY, use_cache=False)
        future = service.submit(request)
        time.sleep(0.1)
        service.shutdown(timeout=0.2)
        response = future.result(timeout=30)
        assert response.outcome.status is Outcome.CANCELLED


@pytest.mark.slow
class TestProcessPool:
    def test_process_pool_round_trip(self):
        with make_service(use_processes=True) as service:
            responses = [service.execute(EDGE_QUERY, use_cache=False)
                         for _ in range(2)]
            for response in responses:
                assert response.error is None
                assert response.outcome.status is Outcome.COMPLETE
            # identical rows to the thread path
            with make_service() as threaded:
                assert (threaded.execute(EDGE_QUERY).results
                        == responses[0].results)

    def test_stale_pool_snapshot_is_never_cached(self):
        """Workers match the snapshot from pool start; once the parent's
        graphs drift from it, their rows must not enter the cache."""
        with make_service(use_processes=True) as service:
            first = service.execute(EDGE_QUERY)
            assert first.cache == "miss"
            graph = service.database.doc("data")[0]
            # in-place mutation, no re-register: the pool keeps serving
            # the old snapshot while the live version moves on
            graph.add_node("fresh", label="L001")
            for response in (service.execute(EDGE_QUERY),
                             service.execute(EDGE_QUERY)):
                assert response.cache == "bypass"
                assert response.error is None
