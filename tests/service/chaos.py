"""Network chaos harness: a fault-injecting TCP proxy plus a soak run.

``ChaosProxy`` sits between a :class:`~repro.service.client.ServiceClient`
and a :class:`~repro.service.server.QueryServer` and injects transport
faults the way :class:`repro.storage.faults.FaultyPageFile` injects disk
faults: every decision comes from a ``random.Random`` seeded from
``(seed, connection index, direction)``, so a failing run is replayable
by seed.  Fault kinds, each with its own rate:

* ``reset``     — drop the connection mid-stream (both directions die),
* ``corrupt``   — flip one byte of a chunk (bad JSON / frame desync),
* ``duplicate`` — send a chunk twice (stale-response desync),
* ``delay``     — hold a chunk for a few milliseconds,
* ``split``     — deliver a chunk in two separate writes.

Run as a script it becomes the CI ``chaos-soak`` scenario::

    PYTHONPATH=src python tests/service/chaos.py --seed 1

It starts a real server in-process, drives concurrent retrying clients
through the proxy, and asserts the resilience contract: every request
terminates with a structured outcome or a typed client error — never a
hang — and afterwards a clean (non-proxied) connection still gets
answers, ``/ready`` says yes, and the server's accounting satisfies
``submitted == admitted + rejected + shed``.
"""

from __future__ import annotations

import argparse
import collections
import itertools
import json
import random
import socket
import sys
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

#: fault rates used when the caller does not override them
DEFAULT_RATES = {
    "reset": 0.02,
    "corrupt": 0.02,
    "duplicate": 0.03,
    "delay": 0.15,
    "split": 0.20,
}


class ChaosProxy:
    """A seeded fault-injecting TCP interposer.

    Accepts on an ephemeral port, opens one upstream connection per
    client connection, and pumps bytes both ways through the fault
    schedule.  ``stats`` counts injected faults by kind.
    """

    def __init__(self, upstream: Tuple[str, int], seed: int = 1,
                 host: str = "127.0.0.1",
                 rates: Optional[Dict[str, float]] = None) -> None:
        self.upstream = upstream
        self.seed = seed
        self.rates = dict(DEFAULT_RATES)
        if rates:
            self.rates.update(rates)
        self.stats: collections.Counter = collections.Counter()
        self._stats_lock = threading.Lock()
        self._conn_ids = itertools.count(1)
        self._closing = threading.Event()
        self._sockets: list = []
        self._threads: list = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(64)
        self._accept_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._listener.getsockname()[:2]

    def start(self) -> "ChaosProxy":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True)
        self._accept_thread.start()
        return self

    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        for sock in list(self._sockets):
            _quiet_close(sock)
        for thread in self._threads:
            thread.join(timeout=2.0)

    def _count(self, kind: str) -> None:
        with self._stats_lock:
            self.stats[kind] += 1

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                break
            conn_id = next(self._conn_ids)
            try:
                server = socket.create_connection(self.upstream, timeout=5)
            except OSError:
                _quiet_close(client)
                continue
            self._sockets.extend((client, server))
            self._count("connections")
            for direction, src, dst in (("c2s", client, server),
                                        ("s2c", server, client)):
                pump = threading.Thread(
                    target=self._pump, name=f"chaos-{conn_id}-{direction}",
                    args=(conn_id, direction, src, dst), daemon=True)
                pump.start()
                self._threads.append(pump)

    def _pump(self, conn_id: int, direction: str,
              src: socket.socket, dst: socket.socket) -> None:
        # the fault schedule is a pure function of (seed, conn, direction)
        rng = random.Random(f"{self.seed}:{conn_id}:{direction}")
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                if not self._transmit(rng, data, dst):
                    break
        except OSError:
            pass
        finally:
            # a dead pump kills the whole pair: half-open connections
            # would otherwise leave the peer blocked on a read forever
            _quiet_close(src)
            _quiet_close(dst)

    def _transmit(self, rng: random.Random, data: bytes,
                  dst: socket.socket) -> bool:
        """Forward one chunk through the fault schedule.

        Returns False to reset the connection instead.
        """
        roll = rng.random()
        rates = self.rates
        edge = rates["reset"]
        if roll < edge:
            self._count("reset")
            return False
        edge += rates["corrupt"]
        if roll < edge:
            self._count("corrupt")
            index = rng.randrange(len(data))
            data = data[:index] + bytes([data[index] ^ 0x01]) + data[index + 1:]
            dst.sendall(data)
            return True
        edge += rates["duplicate"]
        if roll < edge:
            self._count("duplicate")
            dst.sendall(data)
            dst.sendall(data)
            return True
        edge += rates["delay"]
        if roll < edge:
            self._count("delay")
            time.sleep(rng.uniform(0.002, 0.03))
            dst.sendall(data)
            return True
        edge += rates["split"]
        if roll < edge and len(data) > 1:
            self._count("split")
            cut = rng.randrange(1, len(data))
            dst.sendall(data[:cut])
            time.sleep(rng.uniform(0.0, 0.005))
            dst.sendall(data[cut:])
            return True
        self._count("pass")
        dst.sendall(data)
        return True


def _quiet_close(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


# ---------------------------------------------------------------------------
# the soak scenario


CLIENTS = 6
QUERIES_PER_CLIENT = 20
JOIN_TIMEOUT = 240.0

FAST_QUERY = ('graph P { node u1 <label="L001">; node u2 <label="L002">; '
              'edge e1 (u1, u2); }')
PATH_QUERY = ('graph P { node u1 <label="L001">; node u2 <label="L002">; '
              'node u3 <label="L003">; edge e1 (u1, u2); '
              'edge e2 (u2, u3); }')

#: statuses a request is allowed to end with; anything else (or a hang)
#: fails the soak
STRUCTURED = {"COMPLETE", "TRUNCATED", "TIMED_OUT", "CANCELLED",
              "REJECTED", "SHED"}


def build_service():
    from repro.datasets.random_graphs import erdos_renyi_graph
    from repro.service import QueryService, ServiceConfig

    config = ServiceConfig(
        workers=3, queue_depth=8, per_client=8,
        default_timeout=5.0, default_max_results=500,
        breaker_threshold=6, breaker_cooldown=0.5,
        watchdog_multiple=4.0, watchdog_interval=0.1,
        drain_timeout=5.0,
    )
    service = QueryService(config)
    service.register("data", erdos_renyi_graph(
        200, 600, num_labels=6, seed=7, name="data"))
    return service


def client_worker(index: int, seed: int, address: Tuple[str, int],
                  record: list, errors: list) -> None:
    from repro.service.client import ServiceClient
    from repro.service.protocol import ProtocolError

    host, port = address
    rng = random.Random(f"soak:{seed}:{index}")
    client = ServiceClient(
        host, port, timeout=3.0, connect_timeout=1.0,
        client_name=f"chaos{index}", retries=3,
        backoff_base=0.01, backoff_max=0.1, retry_seed=seed * 100 + index)
    try:
        for q in range(QUERIES_PER_CLIENT):
            query = PATH_QUERY if q % 4 == 3 else FAST_QUERY
            timeout = 0.05 if q % 5 == 4 else None  # some unmeetable
            started = time.monotonic()
            try:
                reply = client.query(
                    query, timeout=timeout, limit=50,
                    no_cache=(rng.random() < 0.3),
                    idempotency_key=f"soak-{seed}-{index}-{q}")
            except (ConnectionError, ProtocolError, OSError) as exc:
                # a typed client error is a structured termination too:
                # the caller knows the call failed and can re-issue it
                record.append({"client": index, "q": q,
                               "status": f"client_error:{type(exc).__name__}",
                               "elapsed": time.monotonic() - started})
                continue
            elapsed = time.monotonic() - started
            status = reply.outcome.status.value
            if reply.ok and status not in STRUCTURED:
                errors.append(f"c{index}/q{q}: unstructured status "
                              f"{status!r}")
            if not reply.ok and not reply.error:
                errors.append(f"c{index}/q{q}: not ok but no error text")
            record.append({"client": index, "q": q,
                           "status": status if reply.ok
                           else "server_error",
                           "duplicate": reply.duplicate,
                           "elapsed": elapsed})
    finally:
        client.close()


def soak(seed: int) -> Dict[str, object]:
    """One soak run; returns the report dict (raises AssertionError on
    a broken invariant)."""
    from repro.service import QueryServer
    from repro.service.client import ServiceClient

    service = build_service()
    server = QueryServer(service, ("127.0.0.1", 0))
    serve_thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.1},
        name="chaos-server", daemon=True)
    serve_thread.start()
    proxy = ChaosProxy(server.address, seed=seed).start()
    records: list = []
    errors: list = []
    threads = [
        threading.Thread(target=client_worker, name=f"chaos-client-{i}",
                         args=(i, seed, proxy.address, records, errors),
                         daemon=True)
        for i in range(CLIENTS)
    ]
    started = time.monotonic()
    for t in threads:
        t.start()
    hung = []
    deadline = started + JOIN_TIMEOUT
    for t in threads:
        t.join(max(0.0, deadline - time.monotonic()))
        if t.is_alive():
            hung.append(t.name)
    assert not hung, f"hung client threads: {hung}"

    expected = CLIENTS * QUERIES_PER_CLIENT
    assert len(records) == expected, (
        f"lost requests: {len(records)}/{expected} accounted for")
    assert not errors, "; ".join(errors[:5])

    # after the storm: a clean connection must work immediately
    host, port = server.address
    with ServiceClient(host, port, timeout=10.0,
                       client_name="after") as clean:
        reply = clean.query(FAST_QUERY, limit=10)
        assert reply.ok, f"post-soak query failed: {reply.error}"
        ready, reason = clean.ready()
        assert ready, f"post-soak server not ready: {reason}"
        health = clean.health()
        assert health["status"] == "ok", health
        stats = clean.stats()
    accounted = (stats["admitted"] + stats["rejected"]
                 + stats["shed"]["total"])
    assert stats["submitted"] == accounted, (
        f"accounting broken: submitted={stats['submitted']} "
        f"admitted={stats['admitted']} rejected={stats['rejected']} "
        f"shed={stats['shed']['total']}")

    proxy.close()
    server.shutdown_gracefully()
    serve_thread.join(timeout=10)

    by_status = collections.Counter(r["status"] for r in records)
    return {
        "seed": seed,
        "elapsed": round(time.monotonic() - started, 3),
        "requests": len(records),
        "statuses": dict(by_status),
        "faults": dict(proxy.stats),
        "server": {
            "submitted": stats["submitted"],
            "admitted": stats["admitted"],
            "rejected": stats["rejected"],
            "shed": stats["shed"],
            "watchdog_recycles": stats["watchdog_recycles"],
            "duplicate_requests": stats["duplicate_requests"],
            "client_retries": stats["client_retries"],
            "breaker_states": stats["resilience"]["breaker_states"],
        },
        "records": records,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1,
                        help="fault-schedule seed (replayable)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the JSON soak report here")
    args = parser.parse_args(argv)
    try:
        report = soak(args.seed)
    except AssertionError as exc:
        print(f"FAIL (seed {args.seed}): {exc}", flush=True)
        return 1
    summary = {k: v for k, v in report.items() if k != "records"}
    print(json.dumps(summary, indent=2), flush=True)
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2))
        print(f"report written to {args.report}", flush=True)
    print(f"chaos soak ok: seed={args.seed} "
          f"requests={report['requests']} "
          f"statuses={report['statuses']}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
