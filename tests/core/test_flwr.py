"""Unit tests for FLWR expression evaluation (Section 3.4)."""

import pytest

from repro.core import (
    Assignment,
    DictSource,
    FLWRQuery,
    ForClause,
    Graph,
    GraphCollection,
    GraphTemplate,
    GroundPattern,
    Program,
)
from repro.core.motif import SimpleMotif
from repro.core.predicate import AttrRef, BinOp, Literal
from repro.datasets import tiny_dblp


def ref(path):
    return AttrRef(tuple(path.split(".")))


def author_pair_pattern() -> GroundPattern:
    motif = SimpleMotif()
    motif.add_node("v1", tag="author")
    motif.add_node("v2", tag="author")
    return GroundPattern(motif, name="P")


class TestForClause:
    def test_variable_binding(self):
        source = DictSource({"D": tiny_dblp()})
        clause = ForClause("D", var="G")
        bindings = clause.bindings(source, {})
        assert len(bindings) == 2

    def test_pattern_binding_exhaustive(self):
        source = DictSource({"D": tiny_dblp()})
        clause = ForClause("D", pattern=_wrap(author_pair_pattern()),
                           exhaustive=True)
        bindings = clause.bindings(source, {})
        # G1: 2 ordered pairs; G2: 6 ordered pairs
        assert len(bindings) == 8

    def test_pattern_binding_first_only(self):
        source = DictSource({"D": tiny_dblp()})
        clause = ForClause("D", pattern=_wrap(author_pair_pattern()),
                           exhaustive=False)
        assert len(clause.bindings(source, {})) == 2  # one per graph

    def test_where_filters_bindings(self):
        source = DictSource({"D": tiny_dblp()})
        where = BinOp("==", ref("P.v1.name"), Literal("A"))
        clause = ForClause("D", pattern=_wrap(author_pair_pattern()),
                           exhaustive=True, where=where)
        bindings = clause.bindings(source, {})
        assert all(b.node("v1")["name"] == "A" for b in bindings)

    def test_requires_exactly_one_binding_kind(self):
        with pytest.raises(ValueError):
            ForClause("D")
        with pytest.raises(ValueError):
            ForClause("D", var="x", pattern=_wrap(author_pair_pattern()))

    def test_unknown_document(self):
        source = DictSource({})
        clause = ForClause("D", var="G")
        with pytest.raises(KeyError):
            clause.bindings(source, {})


class TestReturnMode:
    def test_return_emits_one_graph_per_binding(self):
        source = DictSource({"D": tiny_dblp()})
        template = GraphTemplate(["P"])
        template.add_node("n", attr_exprs={"who": ref("P.v1.name")})
        q = FLWRQuery(
            ForClause("D", pattern=_wrap(author_pair_pattern()), exhaustive=True),
            template,
        )
        result = q.evaluate(source)
        assert isinstance(result, GraphCollection)
        assert len(result) == 8


class TestLetMode:
    def test_let_accumulates(self):
        """The Fig. 4.12 query end-to-end over the Fig. 4.13 collection."""
        source = DictSource({"DBLP": tiny_dblp()})
        template = GraphTemplate(["C", "P"])
        template.include_graph("C")
        template.add_copied_node("P.v1")
        template.add_copied_node("P.v2")
        template.add_edge("P.v1", "P.v2", name="e1")
        template.unify("P.v1", "C.v1",
                       where=BinOp("==", ref("P.v1.name"), ref("C.v1.name")))
        template.unify("P.v2", "C.v2",
                       where=BinOp("==", ref("P.v2.name"), ref("C.v2.name")))
        q = FLWRQuery(
            ForClause("DBLP", pattern=_wrap(author_pair_pattern()),
                      exhaustive=True),
            template,
            let_var="C",
        )
        env = {"C": Graph("C")}
        result = q.evaluate(source, env)
        names = sorted(n["name"] for n in result.nodes())
        assert names == ["A", "B", "C", "D"]
        assert result.num_edges() == 4  # A-B, C-D, A-C, A-D
        assert env["C"] is result


class TestProgram:
    def test_assignment_then_flwr(self):
        source = DictSource({"DBLP": tiny_dblp()})
        template = GraphTemplate(["C", "P"])
        template.include_graph("C")
        template.add_copied_node("P.v1")
        q = FLWRQuery(
            ForClause("DBLP", pattern=_wrap(author_pair_pattern()),
                      exhaustive=False),
            template,
            let_var="C",
        )
        program = Program([Assignment("C", Graph("C")), q])
        env = program.run(source)
        assert "C" in env
        assert env["__result__"] is env["C"]

    def test_assignment_copies(self):
        base = Graph("C")
        base.add_node("keepme")
        program = Program([Assignment("C", base)])
        env = program.run(DictSource({}))
        env["C"].add_node("extra")
        assert not base.has_node("extra")


def _wrap(ground: GroundPattern):
    """Adapt a GroundPattern into the GraphPattern protocol the clause uses."""
    from repro.core import GraphPattern

    pattern = GraphPattern(ground.motif, where=None, name=ground.name)
    return pattern
