"""Tests for algebraic plans and rewrite laws (Section 3.3)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DictSource, Graph, GraphCollection, GroundPattern
from repro.core.motif import SimpleMotif
from repro.core.plans import (
    Compose,
    Difference,
    Doc,
    Filter,
    Product,
    Select,
    Union,
    Values,
    optimize,
)
from repro.core.predicate import AttrRef, BinOp, Literal
from repro.core.template import GraphTemplate


def ref(path):
    return AttrRef(tuple(path.split(".")))


def record(name, **attrs):
    g = Graph(name)
    for key, value in attrs.items():
        g.tuple.set(key, value)
    g.add_node("n")
    return g


def source():
    return DictSource({
        "R": GraphCollection([record("r1", x=1), record("r2", x=2),
                              record("r3", x=3)]),
        "S": GraphCollection([record("s1", y=2), record("s2", y=4)]),
    })


def result_names(collection):
    out = []
    for item in collection:
        graph = item.as_graph() if hasattr(item, "as_graph") else item
        out.append(graph.name)
    return sorted(filter(None, out))


class TestEvaluation:
    def test_doc_and_filter(self):
        plan = Filter(Doc("R"), BinOp(">", ref("x"), Literal(1)))
        assert result_names(plan.evaluate(source())) == ["r2", "r3"]

    def test_union_difference(self):
        u = Union(Doc("R"), Doc("R"))
        assert len(u.evaluate(source())) == 3  # set semantics dedupe
        d = Difference(Doc("R"), Values(GraphCollection([record("r1", x=1)])))
        assert result_names(d.evaluate(source())) == ["r2", "r3"]

    def test_product_members(self):
        plan = Product(Doc("R"), Doc("S"))
        collection = plan.evaluate(source())
        assert len(collection) == 6
        assert set(collection[0].members) == {"G1", "G2"}

    def test_select(self):
        motif = SimpleMotif()
        motif.add_node("u")
        plan = Select(Doc("R"), GroundPattern(motif))
        assert len(plan.evaluate(source())) == 3

    def test_compose(self):
        template = GraphTemplate(["P"])
        template.add_node("v", attr_exprs={"copied": ref("P.x")})
        plan = Compose(Doc("R"), template, param="P")
        collection = plan.evaluate(source())
        assert sorted(g.node("v")["copied"] for g in collection) == [1, 2, 3]

    def test_describe(self):
        plan = Filter(Product(Doc("R"), Doc("S")),
                      BinOp("==", ref("G1.x"), ref("G2.y")))
        text = plan.describe()
        assert "Filter" in text and "Product" in text and "Doc(R)" in text


class TestRewrites:
    def test_filter_cascade(self):
        plan = Filter(Filter(Doc("R"), BinOp(">", ref("x"), Literal(1))),
                      BinOp("<", ref("x"), Literal(3)))
        optimized = optimize(plan)
        assert isinstance(optimized, Filter)
        assert isinstance(optimized.child, Doc)
        assert result_names(optimized.evaluate(source())) == ["r2"]

    def test_filter_through_union(self):
        plan = Filter(Union(Doc("R"), Doc("R")),
                      BinOp("==", ref("x"), Literal(2)))
        optimized = optimize(plan)
        assert isinstance(optimized, Union)
        assert result_names(optimized.evaluate(source())) == ["r2"]

    def test_filter_through_difference(self):
        plan = Filter(
            Difference(Doc("R"), Values(GraphCollection([record("r3", x=3)]))),
            BinOp(">", ref("x"), Literal(1)),
        )
        optimized = optimize(plan)
        assert isinstance(optimized, Difference)
        assert result_names(optimized.evaluate(source())) == ["r2"]

    def test_selection_pushdown_through_product(self):
        predicate = BinOp(
            "&",
            BinOp(">", ref("G1.x"), Literal(1)),
            BinOp("==", ref("G1.x"), ref("G2.y")),
        )
        plan = Filter(Product(Doc("R"), Doc("S")), predicate)
        optimized = optimize(plan)
        # the single-side conjunct moved below the product
        assert isinstance(optimized, Filter)  # residual join condition
        assert isinstance(optimized.child, Product)
        assert isinstance(optimized.child.left, Filter)
        before = _pairs(plan.evaluate(source()))
        after = _pairs(optimized.evaluate(source()))
        assert before == after == {(2, 2)}

    def test_pushdown_reduces_product_size(self):
        predicate = BinOp("==", ref("G1.x"), Literal(1))
        plan = Filter(Product(Doc("R"), Doc("S")), predicate)
        optimized = optimize(plan)
        # pushing the filter shrinks the product input from 3 to 1 graph
        assert isinstance(optimized, Product)
        assert len(optimized.evaluate(source())) == 2  # 1 x 2


def _pairs(collection):
    out = set()
    for composite in collection:
        graph = composite.as_graph() if hasattr(composite, "as_graph") else composite
        out.add((graph.members["G1"].get("x"), graph.members["G2"].get("y")))
    return out


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_optimize_preserves_semantics(seed):
    """Property: optimized plans return exactly the same graphs."""
    rng = random.Random(seed)
    docs = {
        "A": GraphCollection([
            record(f"a{i}", x=rng.randint(0, 3), y=rng.randint(0, 3))
            for i in range(rng.randint(0, 4))
        ]),
        "B": GraphCollection([
            record(f"b{i}", x=rng.randint(0, 3))
            for i in range(rng.randint(0, 4))
        ]),
    }
    src = DictSource(docs)

    def random_pred(aliases):
        base = []
        for _ in range(rng.randint(1, 3)):
            attr = rng.choice(["x", "y"])
            path = (f"{rng.choice(aliases)}.{attr}"
                    if aliases else attr)
            op = rng.choice(["==", "!=", "<", ">"])
            base.append(BinOp(op, ref(path), Literal(rng.randint(0, 3))))
        expr = base[0]
        for extra in base[1:]:
            expr = BinOp("&", expr, extra)
        return expr

    choice = rng.randrange(4)
    if choice == 0:
        plan = Filter(Filter(Doc("A"), random_pred([])), random_pred([]))
    elif choice == 1:
        plan = Filter(Union(Doc("A"), Doc("B")), random_pred([]))
    elif choice == 2:
        plan = Filter(Difference(Doc("A"), Doc("B")), random_pred([]))
    else:
        plan = Filter(Product(Doc("A"), Doc("B")),
                      random_pred(["G1", "G2"]))
    before = plan.evaluate(src)
    after = optimize(plan).evaluate(src)
    assert len(before) == len(after)
    for graph_before in before:
        target = graph_before if isinstance(graph_before, Graph) else graph_before.as_graph()
        assert any(
            (g if isinstance(g, Graph) else g.as_graph()).equals(target)
            for g in after
        )
