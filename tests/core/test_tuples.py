"""Unit tests for attribute tuples (Section 3.1 data model)."""

import pytest

from repro.core.tuples import AttributeTuple


class TestBasics:
    def test_empty_tuple(self):
        t = AttributeTuple()
        assert t.tag is None
        assert len(t) == 0
        assert t.get("x") is None

    def test_attributes_and_tag(self):
        t = AttributeTuple({"name": "A", "year": 2006}, tag="author")
        assert t.tag == "author"
        assert t["name"] == "A"
        assert t["year"] == 2006
        assert "name" in t and "missing" not in t

    def test_declaration_order_preserved(self):
        t = AttributeTuple({"b": 1, "a": 2, "c": 3})
        assert t.names() == ("b", "a", "c")

    def test_get_with_default(self):
        t = AttributeTuple({"x": 1})
        assert t.get("y", 42) == 42

    def test_rejects_non_scalar_values(self):
        with pytest.raises(TypeError):
            AttributeTuple({"x": [1, 2]})
        t = AttributeTuple()
        with pytest.raises(TypeError):
            t.set("x", {"nested": True})

    def test_set_and_update(self):
        t = AttributeTuple({"x": 1})
        t.set("x", 2)
        t.update({"y": "z"})
        assert t["x"] == 2 and t["y"] == "z"


class TestEqualityAndCopy:
    def test_equality_includes_tag(self):
        a = AttributeTuple({"x": 1}, tag="t")
        b = AttributeTuple({"x": 1}, tag="t")
        c = AttributeTuple({"x": 1})
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_copy_is_independent(self):
        a = AttributeTuple({"x": 1})
        b = a.copy()
        b.set("x", 2)
        assert a["x"] == 1


class TestMerge:
    def test_merged_prefers_self(self):
        a = AttributeTuple({"x": 1}, tag="ta")
        b = AttributeTuple({"x": 2, "y": 3}, tag="tb")
        merged = a.merged(b)
        assert merged["x"] == 1  # survivor wins
        assert merged["y"] == 3  # absorbed fills gaps
        assert merged.tag == "ta"

    def test_merged_takes_other_tag_when_missing(self):
        a = AttributeTuple({"x": 1})
        b = AttributeTuple({}, tag="tb")
        assert a.merged(b).tag == "tb"


class TestConstraints:
    def test_tag_constraint(self):
        t = AttributeTuple({"name": "A"}, tag="author")
        assert t.matches_constraints("author", None)
        assert not t.matches_constraints("editor", None)
        assert t.matches_constraints(None, None)

    def test_attr_constraints(self):
        t = AttributeTuple({"name": "A", "year": 2006})
        assert t.matches_constraints(None, {"name": "A"})
        assert t.matches_constraints(None, {"name": "A", "year": 2006})
        assert not t.matches_constraints(None, {"name": "B"})
        assert not t.matches_constraints(None, {"missing": 1})
