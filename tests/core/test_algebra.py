"""Unit tests for the graph algebra (Section 3.3)."""

import pytest

from repro.core import (
    Graph,
    GraphCollection,
    GraphTemplate,
    GroundPattern,
    cartesian_product,
    compose,
    difference,
    intersection,
    join,
    project,
    rename,
    select,
    union,
)
from repro.core.motif import SimpleMotif
from repro.core.predicate import AttrRef, BinOp


def ref(path):
    return AttrRef(tuple(path.split(".")))


def labeled_graph(name, labels, edges=()):
    g = Graph(name)
    for node_id, label in labels:
        g.add_node(node_id, label=label)
    for s, t in edges:
        g.add_edge(s, t)
    return g


def single_node_pattern(label):
    motif = SimpleMotif()
    motif.add_node("u", attrs={"label": label})
    return GroundPattern(motif, name="P")


class TestSelection:
    def test_select_returns_matched_graphs(self):
        c = GraphCollection(
            [
                labeled_graph("g1", [("a", "A")]),
                labeled_graph("g2", [("b", "B")]),
                labeled_graph("g3", [("c", "A")]),
            ]
        )
        result = select(c, single_node_pattern("A"))
        assert len(result) == 2
        names = {mg.graph.name for mg in result}
        assert names == {"g1", "g3"}

    def test_exhaustive_vs_first(self):
        g = labeled_graph("g", [("a", "A"), ("b", "A")])
        c = GraphCollection([g])
        assert len(select(c, single_node_pattern("A"), exhaustive=True)) == 2
        assert len(select(c, single_node_pattern("A"), exhaustive=False)) == 1

    def test_select_over_matched_graphs(self):
        """A collection of matched graphs is again a collection of graphs."""
        c = GraphCollection([labeled_graph("g", [("a", "A"), ("b", "B")])])
        first = select(c, single_node_pattern("A"))
        second = select(first, single_node_pattern("B"))
        assert len(second) == 1
        assert second[0].node("u")["label"] == "B"


class TestProductAndJoin:
    def test_product_size_and_members(self):
        c = GraphCollection([labeled_graph("g1", [("a", "A")]),
                             labeled_graph("g2", [("b", "B")])])
        d = GraphCollection([labeled_graph("h1", [("x", "X")])])
        prod = cartesian_product(c, d)
        assert len(prod) == 2
        composite = prod[0]
        assert composite.has_node("G1.a")
        assert composite.has_node("G2.x")
        assert composite.num_edges() == 0
        assert set(composite.members) == {"G1", "G2"}

    def test_valued_join_fig_4_10(self):
        """join on G1.id = G2.id keeps only matching pairs."""
        c = GraphCollection([_graph_with_id("c1", 1), _graph_with_id("c2", 2)])
        d = GraphCollection([_graph_with_id("d1", 2), _graph_with_id("d2", 3)])
        condition = BinOp("==", ref("G1.id"), ref("G2.id"))
        result = join(c, d, condition)
        assert len(result) == 1
        assert result[0].members["G1"].get("id") == 2

    def test_join_with_pattern_condition(self):
        c = GraphCollection([labeled_graph("g1", [("a", "A")])])
        d = GraphCollection([labeled_graph("h1", [("x", "A")]),
                             labeled_graph("h2", [("y", "B")])])
        motif = SimpleMotif()
        motif.add_node("u1", attrs={"label": "A"})
        motif.add_node("u2", attrs={"label": "A"})
        where = None
        pattern = GroundPattern(motif, where)
        result = join(c, d, pattern)
        # only g1 x h1 contains two A-labeled nodes
        assert len(result) == 2  # two symmetric mappings of u1/u2
        assert all(mg.graph.has_node("G1.a") for mg in result)


class TestComposition:
    def test_primitive_composition(self):
        c = GraphCollection([labeled_graph("g", [("a", "A")])])
        matched = select(c, single_node_pattern("A"))
        template = GraphTemplate(["P"])
        template.add_node("v1", attr_exprs={"copied": ref("P.u.label")})
        out = compose(template, matched)
        assert len(out) == 1
        assert out[0].node("v1")["copied"] == "A"

    def test_multi_collection_composition(self):
        c = GraphCollection([labeled_graph("g1", [("a", "A")]),
                             labeled_graph("g2", [("b", "B")])])
        d = GraphCollection([labeled_graph("h", [("x", "X")])])
        template = GraphTemplate(["C1", "C2"])
        template.include_graph("C1")
        template.include_graph("C2")
        out = compose(template, c, d)
        assert len(out) == 2  # |C| x |D|
        assert all(g.num_nodes() == 2 for g in out)

    def test_arity_mismatch_rejected(self):
        template = GraphTemplate(["A", "B"])
        with pytest.raises(ValueError):
            compose(template, GraphCollection())


class TestSetOperators:
    def test_union_dedupes(self):
        g = labeled_graph("g", [("a", "A")])
        c = GraphCollection([g])
        d = GraphCollection([g.copy(), labeled_graph("h", [("b", "B")])])
        assert len(union(c, d)) == 2

    def test_difference(self):
        g = labeled_graph("g", [("a", "A")])
        h = labeled_graph("h", [("b", "B")])
        out = difference(GraphCollection([g, h]), GraphCollection([g.copy()]))
        assert len(out) == 1
        assert out[0].name == "h"

    def test_intersection(self):
        g = labeled_graph("g", [("a", "A")])
        h = labeled_graph("h", [("b", "B")])
        out = intersection(GraphCollection([g, h]), GraphCollection([h.copy()]))
        assert len(out) == 1
        assert out[0].name == "h"

    def test_difference_and_intersection_relate(self):
        g = labeled_graph("g", [("a", "A")])
        h = labeled_graph("h", [("b", "B")])
        c = GraphCollection([g, h])
        d = GraphCollection([h.copy()])
        # C ∩ D == C - (C - D)
        left = intersection(c, d)
        right = difference(c, difference(c, d))
        assert len(left) == len(right) == 1
        assert left[0].equals(right[0])


class TestDerivedOperators:
    def test_project(self):
        c = GraphCollection([labeled_graph("g", [("a", "A")])])
        out = project(c, single_node_pattern("A"), {"val": "P.u.label"})
        assert len(out) == 1
        assert out[0].node("v1")["val"] == "A"

    def test_rename(self):
        c = GraphCollection([labeled_graph("g", [("a", "A")])])
        out = rename(c, {"label": "tag_name"})
        node = out[0].node("a")
        assert node.get("tag_name") == "A"
        assert node.get("label") is None


def _graph_with_id(name, value):
    g = Graph(name)
    g.tuple.set("id", value)
    g.add_node("n")
    return g
