"""Unit tests for graph patterns and pattern matching definitions."""

import pytest

from repro.core import Graph, GraphPattern, GroundPattern
from repro.core.motif import MotifBlock, SimpleMotif
from repro.core.predicate import AttrRef, BinOp, Literal
from repro.core.bindings import Mapping
from repro.matching import find_matches


def ref(path: str) -> AttrRef:
    return AttrRef(tuple(path.split(".")))


def paper_fig_4_7_graph() -> Graph:
    graph = Graph("G")
    graph.tuple.set("booktitle", "SIGMOD")
    graph.add_node("v1", title="Title1", year=2006)
    graph.add_node("v2", tag="author", name="A")
    graph.add_node("v3", tag="author", name="B")
    return graph


class TestNodeMatching:
    def test_declarative_attr_constraint(self):
        motif = SimpleMotif()
        motif.add_node("u", attrs={"label": "A"})
        pattern = GroundPattern(motif)
        graph = Graph()
        a = graph.add_node("x", label="A")
        b = graph.add_node("y", label="B")
        assert pattern.node_matches("u", a)
        assert not pattern.node_matches("u", b)

    def test_tag_constraint(self):
        motif = SimpleMotif()
        motif.add_node("u", tag="author")
        pattern = GroundPattern(motif)
        graph = paper_fig_4_7_graph()
        assert pattern.node_matches("u", graph.node("v2"))
        assert not pattern.node_matches("u", graph.node("v1"))

    def test_node_level_where(self):
        motif = SimpleMotif()
        motif.add_node("u", predicate=BinOp(">", ref("year"), Literal(2000)))
        pattern = GroundPattern(motif)
        graph = paper_fig_4_7_graph()
        assert pattern.node_matches("u", graph.node("v1"))
        assert not pattern.node_matches("u", graph.node("v2"))  # no year

    def test_pushed_down_pattern_where(self):
        """Fig. 4.8: both predicate styles are equivalent."""
        motif = SimpleMotif()
        motif.add_node("v1")
        motif.add_node("v2")
        where = BinOp(
            "&",
            BinOp("==", ref("v1.name"), Literal("A")),
            BinOp(">", ref("v2.year"), Literal(2000)),
        )
        pattern = GroundPattern(motif, where)
        graph = paper_fig_4_7_graph()
        assert pattern.node_matches("v1", graph.node("v2"))  # name=A
        assert not pattern.node_matches("v1", graph.node("v3"))
        assert pattern.node_matches("v2", graph.node("v1"))  # year=2006
        assert not pattern.node_matches("v2", graph.node("v2"))


class TestEdgeMatching:
    def test_edge_attr_constraint(self):
        motif = SimpleMotif()
        motif.add_node("a")
        motif.add_node("b")
        motif.add_edge("a", "b", name="e", attrs={"kind": "shipping"})
        pattern = GroundPattern(motif)
        graph = Graph()
        graph.add_node("x")
        graph.add_node("y")
        good = graph.add_edge("x", "y", kind="shipping")
        assert pattern.edge_matches("e", good)
        graph2 = Graph()
        graph2.add_node("x")
        graph2.add_node("y")
        bad = graph2.add_edge("x", "y", kind="billing")
        assert not pattern.edge_matches("e", bad)


class TestResidual:
    def test_cross_node_predicate(self):
        motif = SimpleMotif()
        motif.add_node("u1")
        motif.add_node("u2")
        where = BinOp("==", ref("u1.label"), ref("u2.label"))
        pattern = GroundPattern(motif, where)
        graph = Graph()
        graph.add_node("x", label="A")
        graph.add_node("y", label="A")
        graph.add_node("z", label="B")
        ok = Mapping({"u1": "x", "u2": "y"})
        bad = Mapping({"u1": "x", "u2": "z"})
        assert pattern.residual_holds(ok, graph)
        assert not pattern.residual_holds(bad, graph)

    def test_pattern_name_binds_matched_graph(self):
        """``where P.booktitle="SIGMOD"`` reads the matched graph's attrs."""
        motif = SimpleMotif()
        motif.add_node("v1", tag="author")
        where = BinOp("==", ref("P.booktitle"), Literal("SIGMOD"))
        pattern = GroundPattern(motif, where, name="P")
        graph = paper_fig_4_7_graph()
        mapping = Mapping({"v1": "v2"})
        assert pattern.residual_holds(mapping, graph)
        graph.tuple.set("booktitle", "VLDB")
        assert not pattern.residual_holds(mapping, graph)


class TestGraphPattern:
    def test_single_requires_unique_derivation(self):
        block = MotifBlock()
        block.add_node("v1")
        pattern = GraphPattern(block)
        assert pattern.single().num_nodes() == 1

    def test_single_rejects_disjunction(self):
        from repro.core.motif import Disjunction

        a = MotifBlock()
        a.add_node("v1")
        b = MotifBlock()
        b.add_node("v1")
        b.add_node("v2")
        pattern = GraphPattern(Disjunction([a, b]))
        with pytest.raises(ValueError):
            pattern.single()
        assert len(pattern.ground()) == 2

    def test_recursive_pattern_matches_any_derivation(self):
        """A recursive Path pattern matches a graph containing any path."""
        from repro.core.motif import recursive_path_grammar

        grammar = recursive_path_grammar()
        from repro.core.motif import MotifRef

        pattern = GraphPattern(MotifRef("Path"), name="Paths")
        graph = Graph()
        for n in ("a", "b", "c"):
            graph.add_node(n)
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        total = 0
        for ground in pattern.ground(grammar, max_depth=4):
            total += len(find_matches(ground, graph))
        # 2-node paths: 4 mappings (2 edges x 2 directions);
        # 3-node path: 2 mappings (a-b-c, c-b-a); longer: none
        assert total == 6


class TestMapping:
    def test_mapping_equality_and_hash(self):
        a = Mapping({"u": "x"})
        b = Mapping({"u": "x"}, {"e": "e1"})
        assert a == b  # node assignments define identity
        assert hash(a) == hash(b)

    def test_copy_independent(self):
        a = Mapping({"u": "x"})
        b = a.copy()
        b.nodes["u"] = "y"
        assert a["u"] == "x"
