"""Unit tests for the Zipf sampler used by the synthetic datasets."""

import random
from collections import Counter

import pytest

from repro.utils import ZipfSampler


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(10)
        total = sum(sampler.probability(i) for i in range(10))
        assert abs(total - 1.0) < 1e-9

    def test_zipf_law_ratio(self):
        """p(x) ∝ 1/x: the first item is twice as likely as the second."""
        sampler = ZipfSampler(100, s=1.0)
        assert sampler.probability(0) == pytest.approx(
            2 * sampler.probability(1)
        )

    def test_sampling_respects_skew(self):
        sampler = ZipfSampler(50, s=1.0)
        rng = random.Random(0)
        counts = Counter(sampler.sample(rng) for _ in range(20000))
        assert counts[0] > counts[10] > counts[40]

    def test_samples_in_range(self):
        sampler = ZipfSampler(5)
        rng = random.Random(1)
        for _ in range(1000):
            assert 0 <= sampler.sample(rng) < 5

    def test_uniform_when_s_zero(self):
        sampler = ZipfSampler(4, s=0.0)
        for i in range(4):
            assert sampler.probability(i) == pytest.approx(0.25)

    def test_sample_label(self):
        sampler = ZipfSampler(3)
        rng = random.Random(2)
        labels = ["x", "y", "z"]
        assert sampler.sample_label(rng, labels) in labels

    def test_needs_at_least_one(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)

    def test_deterministic_given_seed(self):
        a = [ZipfSampler(20).sample(random.Random(7)) for _ in range(5)]
        b = [ZipfSampler(20).sample(random.Random(7)) for _ in range(5)]
        assert a == b
