"""Unit tests for graph collections."""

from repro.core import Graph, GraphCollection


def g(name, label):
    graph = Graph(name)
    graph.add_node("n", label=label)
    return graph


class TestContainer:
    def test_add_iterate_index(self):
        c = GraphCollection()
        c.add(g("a", "A"))
        c.extend([g("b", "B"), g("c", "C")])
        assert len(c) == 3
        assert [x.name for x in c] == ["a", "b", "c"]
        assert c[1].name == "b"
        assert c.first().name == "a"

    def test_first_empty_raises(self):
        import pytest

        with pytest.raises(ValueError):
            GraphCollection().first()

    def test_filter_and_map(self):
        c = GraphCollection([g("a", "A"), g("b", "B")])
        only_a = c.filter(lambda graph: graph.node("n")["label"] == "A")
        assert len(only_a) == 1
        renamed = c.map(lambda graph: graph.copy(name=graph.name + "!"))
        assert [x.name for x in renamed] == ["a!", "b!"]


class TestSetSemantics:
    def test_distinct(self):
        a = g("a", "A")
        c = GraphCollection([a, a.copy(), g("b", "B")])
        assert len(c.distinct()) == 2

    def test_union_difference_intersection(self):
        a, b, x = g("a", "A"), g("b", "B"), g("x", "X")
        c = GraphCollection([a, b])
        d = GraphCollection([b.copy(), x])
        assert len(c.union(d)) == 3
        assert [gr.name for gr in c.difference(d)] == ["a"]
        assert [gr.name for gr in c.intersection(d)] == ["b"]

    def test_union_idempotent(self):
        a = g("a", "A")
        c = GraphCollection([a])
        assert len(c.union(c)) == 1
