"""Selection through the access-method pipeline (matcher_factory path)."""

from repro.core import GraphCollection, GroundPattern, select
from repro.core.motif import clique_motif
from repro.matching import GraphMatcher


class TestSelectWithMatcherFactory:
    def test_same_results_as_scan(self, paper_graph, triangle_pattern):
        collection = GraphCollection([paper_graph])
        factories = {}

        def factory(graph):
            if id(graph) not in factories:
                factories[id(graph)] = GraphMatcher(graph)
            return factories[id(graph)]

        via_matcher = select(collection, triangle_pattern,
                             matcher_factory=factory)
        via_scan = select(collection, triangle_pattern)
        assert {frozenset(m.mapping.nodes.items()) for m in via_matcher} == {
            frozenset(m.mapping.nodes.items()) for m in via_scan
        }
        assert factories  # the factory really was consulted

    def test_first_match_mode(self, paper_graph):
        collection = GraphCollection([paper_graph])
        pattern = GroundPattern(clique_motif(["B"]))
        result = select(collection, pattern, exhaustive=False,
                        matcher_factory=GraphMatcher)
        assert len(result) == 1

    def test_flwr_routes_large_graphs(self):
        """FLWR uses the database's cached matcher for big documents."""
        from repro.datasets import erdos_renyi_graph
        from repro.storage import GraphDatabase

        db = GraphDatabase()
        db.register("big", erdos_renyi_graph(400, 1200, seed=3))
        env = db.query("""
            graph Q { node a <label="L000">; node b; edge e (a, b); };
            for Q exhaustive in doc("big")
            return graph { node n <who=Q.a.label>; };
        """)
        assert len(db._matchers) == 1  # cached pipeline was built
        assert len(env["__result__"]) > 0
