"""Unit tests for aggregation and ordering (Section 7 extension)."""

import pytest

from repro.core import Graph, GraphCollection, GroundPattern, select
from repro.core.aggregate import (
    AggregateError,
    aggregate,
    group_by,
    order_by,
    top_k,
)
from repro.core.motif import SimpleMotif
from repro.core.predicate import AttrRef


def ref(path):
    return AttrRef(tuple(path.split(".")))


def papers() -> GraphCollection:
    out = GraphCollection()
    for i, (venue, year, authors) in enumerate([
        ("SIGMOD", 2006, 3),
        ("SIGMOD", 2007, 1),
        ("VLDB", 2006, 2),
        ("VLDB", 2007, 4),
        ("ICDE", 2007, 2),
    ]):
        g = Graph(f"p{i}")
        g.tuple.set("booktitle", venue)
        g.tuple.set("year", year)
        g.tuple.set("num_authors", authors)
        g.add_node("n")
        out.add(g)
    return out


class TestGroupBy:
    def test_groups_by_attribute(self):
        groups = group_by(papers(), ref("booktitle"))
        assert set(groups) == {"SIGMOD", "VLDB", "ICDE"}
        assert len(groups["SIGMOD"]) == 2

    def test_missing_key_groups_under_none(self):
        collection = papers()
        extra = Graph("weird")
        extra.add_node("n")
        collection.add(extra)
        groups = group_by(collection, ref("booktitle"))
        assert len(groups[None]) == 1


class TestAggregate:
    def test_global_count(self):
        result = aggregate(papers(), [("n", "count", None)])
        assert len(result) == 1
        assert result[0].node("r")["n"] == 5

    def test_grouped_aggregates(self):
        result = aggregate(
            papers(),
            [("papers", "count", None),
             ("total_authors", "sum", ref("num_authors")),
             ("avg_authors", "avg", ref("num_authors")),
             ("first_year", "min", ref("year")),
             ("last_year", "max", ref("year"))],
            key=ref("booktitle"),
            key_name="venue",
        )
        by_venue = {g.node("r")["venue"]: g.node("r") for g in result}
        assert set(by_venue) == {"SIGMOD", "VLDB", "ICDE"}
        sigmod = by_venue["SIGMOD"]
        assert sigmod["papers"] == 2
        assert sigmod["total_authors"] == 4
        assert sigmod["avg_authors"] == 2.0
        assert sigmod["first_year"] == 2006
        assert sigmod["last_year"] == 2007

    def test_count_distinct(self):
        result = aggregate(
            papers(), [("years", "count_distinct", ref("year"))]
        )
        assert result[0].node("r")["years"] == 2

    def test_missing_values_skipped(self):
        collection = papers()
        extra = Graph("no-authors")
        extra.tuple.set("booktitle", "SIGMOD")
        extra.add_node("n")
        collection.add(extra)
        result = aggregate(
            collection,
            [("total", "sum", ref("num_authors"))],
            key=ref("booktitle"),
        )
        by_venue = {g.node("r")["key"]: g.node("r") for g in result}
        assert by_venue["SIGMOD"]["total"] == 4  # unchanged

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(AggregateError):
            aggregate(papers(), [("x", "median", ref("year"))])

    def test_non_count_requires_expression(self):
        with pytest.raises(AggregateError):
            aggregate(papers(), [("x", "sum", None)])

    def test_aggregate_over_matched_graphs(self):
        """Count author nodes per paper through a selection binding."""
        collection = GraphCollection()
        g = Graph("g")
        g.tuple.set("booktitle", "SIGMOD")
        g.add_node("a1", tag="author", name="X")
        g.add_node("a2", tag="author", name="Y")
        collection.add(g)
        motif = SimpleMotif()
        motif.add_node("v", tag="author")
        matched = select(collection, GroundPattern(motif, name="P"))
        result = aggregate(matched, [("authors", "count", None)],
                           key=ref("booktitle"))
        assert result[0].node("r")["authors"] == 2


class TestOrdering:
    def test_order_by_single_key(self):
        ranked = order_by(papers(), [(ref("num_authors"), True)])
        counts = [g["num_authors"] for g in ranked]
        assert counts == sorted(counts, reverse=True)

    def test_order_by_two_keys(self):
        ranked = order_by(
            papers(), [(ref("year"), False), (ref("num_authors"), True)]
        )
        rows = [(g["year"], g["num_authors"]) for g in ranked]
        assert rows == [(2006, 3), (2006, 2), (2007, 4), (2007, 2), (2007, 1)]

    def test_missing_sorts_last(self):
        collection = papers()
        extra = Graph("weird")
        extra.add_node("n")
        collection.add(extra)
        ranked = order_by(collection, [(ref("year"), False)])
        assert ranked[len(ranked) - 1].name == "weird"
        ranked_desc = order_by(collection, [(ref("year"), True)])
        assert ranked_desc[len(ranked_desc) - 1].name == "weird"

    def test_top_k(self):
        best = top_k(papers(), ref("num_authors"), 2)
        assert [g["num_authors"] for g in best] == [4, 3]
        worst = top_k(papers(), ref("num_authors"), 2, descending=False)
        assert [g["num_authors"] for g in worst] == [1, 2]


class TestAggregateProperties:
    def test_group_sums_equal_global_sum(self):
        """Partition property: per-group sums add up to the global sum."""
        collection = papers()
        grouped = aggregate(
            collection, [("total", "sum", ref("num_authors"))],
            key=ref("booktitle"),
        )
        global_result = aggregate(
            collection, [("total", "sum", ref("num_authors"))]
        )
        group_total = sum(g.node("r")["total"] for g in grouped)
        assert group_total == global_result[0].node("r")["total"]

    def test_group_counts_partition_collection(self):
        collection = papers()
        grouped = aggregate(collection, [("n", "count", None)],
                            key=ref("booktitle"))
        assert sum(g.node("r")["n"] for g in grouped) == len(collection)

    def test_summary_attrs_mirrored_at_graph_level(self):
        result = aggregate(papers(), [("n", "count", None)])
        summary = result[0]
        assert summary.get("n") == summary.node("r")["n"] == 5
