"""Unit tests for the formal language for graphs (Section 2)."""

import pytest

from repro.core.motif import (
    Disjunction,
    GraphGrammar,
    MotifBlock,
    MotifError,
    MotifRef,
    SimpleMotif,
    clique_motif,
    cycle_motif,
    path_motif,
    recursive_path_grammar,
)


def triangle_block() -> MotifBlock:
    """The simple motif G1 of Fig. 4.3."""
    block = MotifBlock()
    for name in ("v1", "v2", "v3"):
        block.add_node(name)
    block.add_edge("v1", "v2", name="e1")
    block.add_edge("v2", "v3", name="e2")
    block.add_edge("v3", "v1", name="e3")
    return block


class TestSimpleMotif:
    def test_ground_expansion_is_identity(self):
        motif = path_motif(2)
        assert list(motif.expand()) == [motif]

    def test_block_expands_to_one_simple_motif(self):
        grounds = list(triangle_block().expand())
        assert len(grounds) == 1
        motif = grounds[0]
        assert motif.num_nodes() == 3
        assert motif.num_edges() == 3

    def test_adjacency(self):
        motif = path_motif(2)  # v1 - v2 - v3
        assert sorted(motif.neighbors("v2")) == ["v1", "v3"]
        assert motif.degree("v2") == 2
        assert motif.degree("v1") == 1

    def test_is_connected(self):
        assert path_motif(3).is_connected()
        disconnected = SimpleMotif()
        disconnected.add_node("a")
        disconnected.add_node("b")
        assert not disconnected.is_connected()

    def test_duplicate_node_rejected(self):
        motif = SimpleMotif()
        motif.add_node("a")
        with pytest.raises(MotifError):
            motif.add_node("a")

    def test_edge_to_unknown_node_rejected(self):
        motif = SimpleMotif()
        motif.add_node("a")
        with pytest.raises(MotifError):
            motif.add_edge("a", "zzz")

    def test_from_graph_extracts_label_constraints(self, paper_graph):
        motif = SimpleMotif.from_graph(paper_graph.induced_subgraph(["A1", "B1"]))
        assert motif.node("A1").attrs == {"label": "A"}
        assert motif.num_edges() == 1

    def test_to_graph(self):
        graph = clique_motif(["A", "B"]).to_graph()
        assert graph.num_nodes() == 2
        assert graph.num_edges() == 1
        assert graph.node("u1")["label"] == "A"


class TestConcatenation:
    def test_concatenation_by_edges_fig_4_4a(self):
        """G2 = two copies of G1 joined by two new edges."""
        grammar = GraphGrammar()
        grammar.define("G1", triangle_block())
        g2 = MotifBlock()
        g2.add_member(MotifRef("G1"), alias="X")
        g2.add_member(MotifRef("G1"), alias="Y")
        g2.add_edge("X.v1", "Y.v1", name="e4")
        g2.add_edge("X.v3", "Y.v2", name="e5")
        grounds = grammar_expand(grammar, g2)
        assert len(grounds) == 1
        motif = grounds[0]
        assert motif.num_nodes() == 6
        assert motif.num_edges() == 8  # 3 + 3 + 2

    def test_concatenation_by_unification_fig_4_4b(self):
        """G3 = two copies of G1 with two node pairs unified."""
        grammar = GraphGrammar()
        grammar.define("G1", triangle_block())
        g3 = MotifBlock()
        g3.add_member(MotifRef("G1"), alias="X")
        g3.add_member(MotifRef("G1"), alias="Y")
        g3.unify("X.v1", "Y.v1")
        g3.unify("X.v3", "Y.v2")
        grounds = grammar_expand(grammar, g3)
        assert len(grounds) == 1
        motif = grounds[0]
        # 6 nodes - 2 unifications = 4 nodes; Y.e1 (Y.v1-Y.v2) becomes the
        # edge X.v1-X.v3 which duplicates X.e3 and is unified away: 5 edges
        assert motif.num_nodes() == 4
        assert motif.num_edges() == 5

    def test_unify_conflicting_constraints_rejected(self):
        block = MotifBlock()
        block.add_node("a", attrs={"label": "A"})
        block.add_node("b", attrs={"label": "B"})
        block.unify("a", "b")
        with pytest.raises(MotifError):
            list(block.expand())


class TestDisjunction:
    def test_fig_4_5_two_alternatives(self):
        """G4: base v1-v2 plus either one extra node or two."""
        alt1 = MotifBlock()
        alt1.add_node("v1")
        alt1.add_node("v2")
        alt1.add_edge("v1", "v2", name="e1")
        alt1.add_node("v3")
        alt1.add_edge("v1", "v3", name="e2")
        alt1.add_edge("v2", "v3", name="e3")
        alt2 = MotifBlock()
        alt2.add_node("v1")
        alt2.add_node("v2")
        alt2.add_edge("v1", "v2", name="e1")
        alt2.add_node("v3")
        alt2.add_node("v4")
        alt2.add_edge("v1", "v3", name="e2")
        alt2.add_edge("v2", "v4", name="e3")
        alt2.add_edge("v3", "v4", name="e4")
        grounds = list(Disjunction([alt1, alt2]).expand())
        assert len(grounds) == 2
        assert grounds[0].num_nodes() == 3
        assert grounds[1].num_nodes() == 4


class TestRepetition:
    def test_path_grammar_derives_growing_paths(self):
        grammar = recursive_path_grammar()
        grounds = grammar.derive("Path", max_depth=4)
        sizes = sorted(g.num_nodes() for g in grounds)
        # each unrolling adds one node; base case has 2 nodes
        assert sizes[0] == 2
        assert sizes == list(range(2, 2 + len(sizes)))
        for ground in grounds:
            # a path with k nodes has k-1 edges
            assert ground.num_edges() == ground.num_nodes() - 1
            assert ground.is_connected()

    def test_exports_compose_through_nesting(self):
        grammar = recursive_path_grammar()
        cycle = MotifBlock()
        cycle.add_member(MotifRef("Path"), alias="Path")
        cycle.add_edge("Path.v1", "Path.v2", name="e1")
        grounds = grammar_expand(grammar, cycle, max_depth=4)
        for ground in grounds:
            if ground.num_nodes() == 2:
                # the closing edge of a 2-node path duplicates the path
                # edge and is unified away (edges with the same end nodes
                # unify automatically)
                assert ground.num_edges() == 1
            else:
                assert ground.num_edges() == ground.num_nodes()  # cycles

    def test_depth_bound_limits_derivations(self):
        grammar = recursive_path_grammar()
        shallow = grammar.derive("Path", max_depth=2)
        deep = grammar.derive("Path", max_depth=6)
        assert len(shallow) < len(deep)

    def test_unknown_reference_rejected(self):
        block = MotifBlock()
        block.add_member(MotifRef("NoSuchMotif"))
        with pytest.raises(MotifError):
            list(block.expand(GraphGrammar()))


class TestGrammar:
    def test_define_and_derive(self):
        grammar = GraphGrammar()
        grammar.define("T", triangle_block())
        assert "T" in grammar
        assert grammar.names() == ["T"]
        assert len(grammar.derive("T")) == 1

    def test_derive_unknown_rejected(self):
        with pytest.raises(MotifError):
            GraphGrammar().derive("X")


class TestBuilders:
    def test_path_motif(self):
        motif = path_motif(3)
        assert motif.num_nodes() == 4
        assert motif.num_edges() == 3

    def test_cycle_motif(self):
        motif = cycle_motif(5)
        assert motif.num_nodes() == 5
        assert motif.num_edges() == 5
        assert all(motif.degree(n) == 2 for n in motif.node_names())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_motif(2)

    def test_clique_motif(self):
        motif = clique_motif(["A", "B", "C", "D"])
        assert motif.num_nodes() == 4
        assert motif.num_edges() == 6
        assert motif.node("u1").attrs == {"label": "A"}


def grammar_expand(grammar, block, max_depth=8):
    return list(block.expand(grammar, max_depth))
