"""Unit tests for predicate expressions and pushdown decomposition."""

import pytest

from repro.core import Graph
from repro.core.predicate import (
    MISSING,
    AttrRef,
    BinOp,
    Literal,
    Not,
    Scope,
    conjunction,
    decompose,
)


def ref(path: str) -> AttrRef:
    return AttrRef(tuple(path.split(".")))


class TestEvaluation:
    def test_literal(self):
        assert Literal(5).evaluate(Scope()) == 5

    def test_missing_ref_is_false(self):
        expr = BinOp("==", ref("v1.name"), Literal("A"))
        assert expr.holds(Scope()) is False

    def test_node_attribute_resolution(self):
        g = Graph()
        node = g.add_node("v1", name="A", year=2006)
        scope = Scope({"v1": node})
        assert BinOp("==", ref("v1.name"), Literal("A")).holds(scope)
        assert BinOp(">", ref("v1.year"), Literal(2000)).holds(scope)
        assert not BinOp(">", ref("v1.year"), Literal(2010)).holds(scope)

    def test_fallback_entity(self):
        g = Graph()
        node = g.add_node("v1", name="A")
        scope = Scope({}, fallback=node)
        assert BinOp("==", ref("name"), Literal("A")).holds(scope)

    def test_graph_attribute_resolution(self):
        g = Graph("G")
        g.tuple.set("booktitle", "SIGMOD")
        scope = Scope({"P": g})
        assert BinOp("==", ref("P.booktitle"), Literal("SIGMOD")).holds(scope)

    def test_path_through_graph_to_node(self):
        g = Graph("G")
        g.add_node("v1", name="A")
        scope = Scope({"G": g})
        assert BinOp("==", ref("G.v1.name"), Literal("A")).holds(scope)

    def test_arithmetic(self):
        scope = Scope()
        expr = BinOp("==", BinOp("+", Literal(2), Literal(3)), Literal(5))
        assert expr.holds(scope)
        expr = BinOp("==", BinOp("*", Literal(2), Literal(3)), Literal(6))
        assert expr.holds(scope)

    def test_division_by_zero_is_missing(self):
        expr = BinOp("/", Literal(1), Literal(0))
        assert expr.evaluate(Scope()) is MISSING

    def test_boolean_connectives(self):
        t = BinOp("==", Literal(1), Literal(1))
        f = BinOp("==", Literal(1), Literal(2))
        assert BinOp("&", t, t).holds(Scope())
        assert not BinOp("&", t, f).holds(Scope())
        assert BinOp("|", f, t).holds(Scope())
        assert not BinOp("|", f, f).holds(Scope())
        assert Not(f).holds(Scope())

    def test_mixed_type_comparison_is_false(self):
        assert not BinOp("<", Literal("a"), Literal(1)).holds(Scope())
        assert BinOp("!=", Literal("a"), Literal(1)).holds(Scope())

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("**", Literal(1), Literal(2))


class TestScopes:
    def test_child_scope_shadows(self):
        parent = Scope({"x": 1})
        child = parent.child({"x": 2})
        assert child.lookup("x") == 2
        assert parent.lookup("x") == 1

    def test_child_scope_falls_through(self):
        parent = Scope({"y": 3})
        child = parent.child({})
        assert child.lookup("y") == 3

    def test_dict_resolution(self):
        g = Graph()
        node = g.add_node("v1", name="A")
        scope = Scope({"C": {"v1": node}})
        assert BinOp("==", ref("C.v1.name"), Literal("A")).holds(scope)


class TestStructure:
    def test_conjuncts_flatten(self):
        a = BinOp("==", Literal(1), Literal(1))
        b = BinOp("==", Literal(2), Literal(2))
        c = BinOp("==", Literal(3), Literal(3))
        combined = conjunction([a, b, c])
        assert combined.conjuncts() == [a, b, c]

    def test_conjunction_of_empty(self):
        assert conjunction([]) is None

    def test_root_names(self):
        expr = BinOp(
            "&",
            BinOp("==", ref("v1.name"), Literal("A")),
            BinOp(">", ref("v2.year"), ref("v1.year")),
        )
        assert expr.root_names() == {"v1", "v2"}

    def test_to_graphql_round_trippable(self):
        from repro.lang import parse_expression

        expr = BinOp(
            "&",
            BinOp("==", ref("v1.name"), Literal("A")),
            BinOp(">", ref("v2.year"), Literal(2000)),
        )
        parsed = parse_expression(expr.to_graphql())
        assert parsed == expr


class TestDecompose:
    def test_single_node_conjuncts_pushed(self):
        expr = conjunction(
            [
                BinOp("==", ref("v1.name"), Literal("A")),
                BinOp(">", ref("v2.year"), Literal(2000)),
                BinOp("==", ref("v1.label"), ref("v2.label")),
            ]
        )
        d = decompose(expr, {"v1", "v2"}, set())
        assert set(d.node_preds) == {"v1", "v2"}
        assert d.residual is not None
        assert d.residual.root_names() == {"v1", "v2"}

    def test_edge_conjuncts_pushed(self):
        expr = BinOp("==", ref("e1.kind"), Literal("shipping"))
        d = decompose(expr, {"v1"}, {"e1"})
        assert set(d.edge_preds) == {"e1"}
        assert d.residual is None

    def test_none_predicate(self):
        d = decompose(None, {"v1"}, set())
        assert not d.node_preds and not d.edge_preds and d.residual is None

    def test_unknown_root_stays_residual(self):
        expr = BinOp("==", ref("P.booktitle"), Literal("SIGMOD"))
        d = decompose(expr, {"v1"}, set())
        assert d.residual == expr
