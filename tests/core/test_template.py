"""Unit tests for graph templates and instantiation (Definition 4.4)."""

import pytest

from repro.core import Graph, GraphTemplate, GroundPattern, MatchedGraph
from repro.core.bindings import Mapping
from repro.core.motif import SimpleMotif
from repro.core.predicate import AttrRef, BinOp, Literal
from repro.core.template import TemplateError


def ref(path):
    return AttrRef(tuple(path.split(".")))


def fig_4_7_graph() -> Graph:
    g = Graph("G")
    g.add_node("v1", title="Title1", year=2006)
    g.add_node("v2", tag="author", name="A")
    g.add_node("v3", tag="author", name="B")
    return g


def fig_4_8_binding() -> MatchedGraph:
    motif = SimpleMotif()
    motif.add_node("v1")
    motif.add_node("v2")
    pattern = GroundPattern(motif, name="P")
    mapping = Mapping({"v1": "v2", "v2": "v1"})  # Fig. 4.9 mapping
    return MatchedGraph(mapping, pattern, fig_4_7_graph())


class TestInstantiation:
    def test_fig_4_11_template(self):
        """T_P builds two nodes from P and an edge between them."""
        template = GraphTemplate(["P"])
        template.add_node("v1", attr_exprs={"label": ref("P.v1.name")})
        template.add_node("v2", attr_exprs={"label": ref("P.v2.title")})
        template.add_edge("v1", "v2", name="e1")
        result = template.instantiate({"P": fig_4_8_binding()})
        assert result.node("v1")["label"] == "A"
        assert result.node("v2")["label"] == "Title1"
        assert result.has_edge("v1", "v2")

    def test_copied_node_keeps_attributes(self):
        template = GraphTemplate(["P"])
        template.add_copied_node("P.v1")
        result = template.instantiate({"P": fig_4_8_binding()})
        (node,) = list(result.nodes())
        assert node["name"] == "A"
        assert node.tag == "author"

    def test_missing_argument_rejected(self):
        template = GraphTemplate(["P"])
        with pytest.raises(TemplateError):
            template.instantiate({})

    def test_missing_attribute_rejected(self):
        template = GraphTemplate(["P"])
        template.add_node("v1", attr_exprs={"x": ref("P.v1.nonexistent")})
        with pytest.raises(TemplateError):
            template.instantiate({"P": fig_4_8_binding()})

    def test_include_graph_copies_everything(self):
        template = GraphTemplate(["C"])
        template.include_graph("C")
        base = fig_4_7_graph()
        result = template.instantiate({"C": base})
        assert result.num_nodes() == 3
        # the source graph is never mutated
        result.node("v2").tuple.set("name", "Z")
        assert base.node("v2")["name"] == "A"

    def test_graph_level_attrs(self):
        template = GraphTemplate(["P"], tag="summary",
                                 attr_exprs={"of": ref("P.v1.name")})
        result = template.instantiate({"P": fig_4_8_binding()})
        assert result.tuple.tag == "summary"
        assert result["of"] == "A"

    def test_edge_between_copied_nodes(self):
        template = GraphTemplate(["P"])
        template.add_copied_node("P.v1")
        template.add_copied_node("P.v2")
        template.add_edge("P.v1", "P.v2", name="e1")
        result = template.instantiate({"P": fig_4_8_binding()})
        assert result.num_edges() == 1

    def test_unknown_edge_endpoint_rejected(self):
        template = GraphTemplate(["P"])
        template.add_node("v1")
        template.add_edge("v1", "nope")
        with pytest.raises(TemplateError):
            template.instantiate({"P": fig_4_8_binding()})


class TestUnification:
    def test_unconditional_unify(self):
        template = GraphTemplate([])
        template.add_node("a", attr_exprs={"x": Literal(1)})
        template.add_node("b", attr_exprs={"y": Literal(2)})
        template.add_node("c")
        template.add_edge("a", "c")
        template.add_edge("b", "c")
        template.unify("a", "b")
        result = template.instantiate({})
        assert result.num_nodes() == 2
        merged = [n for n in result.nodes() if n.get("x") is not None][0]
        assert merged["y"] == 2  # attributes merged
        assert result.num_edges() == 1  # parallel edges unified

    def test_conditional_unify_against_included_graph(self):
        """The Fig. 4.12 dedup: unify a new node with the accumulator node
        carrying the same name, wherever it sits."""
        accumulator = Graph("C")
        accumulator.add_node("n1", name="A")
        accumulator.add_node("n2", name="B")
        template = GraphTemplate(["C", "P"])
        template.include_graph("C")
        template.add_copied_node("P.v1")
        template.unify(
            "P.v1", "C.v1",
            where=BinOp("==", ref("P.v1.name"), ref("C.v1.name")),
        )
        result = template.instantiate({"C": accumulator, "P": fig_4_8_binding()})
        # P.v1 is author "A": unified with accumulator's A node
        assert result.num_nodes() == 2
        names = sorted(n["name"] for n in result.nodes())
        assert names == ["A", "B"]

    def test_conditional_unify_no_match_keeps_both(self):
        accumulator = Graph("C")
        accumulator.add_node("n1", name="Z")
        template = GraphTemplate(["C", "P"])
        template.include_graph("C")
        template.add_copied_node("P.v1")
        template.unify(
            "P.v1", "C.v1",
            where=BinOp("==", ref("P.v1.name"), ref("C.v1.name")),
        )
        result = template.instantiate({"C": accumulator, "P": fig_4_8_binding()})
        assert result.num_nodes() == 2
        names = sorted(n["name"] for n in result.nodes())
        assert names == ["A", "Z"]

    def test_unify_unknown_path_rejected(self):
        template = GraphTemplate([])
        template.add_node("a")
        template.unify("a", "nothing.here")
        with pytest.raises(TemplateError):
            template.instantiate({})
