"""Unit tests for the attributed-graph data model."""

import pytest

from repro.core import Graph, disjoint_union


def small_graph() -> Graph:
    g = Graph("G")
    g.add_node("a", label="A")
    g.add_node("b", label="B")
    g.add_node("c", label="C")
    g.add_edge("a", "b", edge_id="e1", weight=3)
    g.add_edge("b", "c", edge_id="e2")
    return g


class TestConstruction:
    def test_counts(self):
        g = small_graph()
        assert g.num_nodes() == 3
        assert g.num_edges() == 2
        assert len(g) == 3

    def test_auto_ids(self):
        g = Graph()
        n1 = g.add_node()
        n2 = g.add_node()
        assert n1.id != n2.id
        e = g.add_edge(n1.id, n2.id)
        assert e.id.startswith("e")

    def test_auto_id_skips_taken(self):
        g = Graph()
        g.add_node("v1")
        n = g.add_node()
        assert n.id != "v1"

    def test_duplicate_node_rejected(self):
        g = small_graph()
        with pytest.raises(ValueError):
            g.add_node("a")

    def test_edge_to_unknown_node_rejected(self):
        g = small_graph()
        with pytest.raises(KeyError):
            g.add_edge("a", "zzz")

    def test_node_attributes(self):
        g = small_graph()
        assert g.node("a")["label"] == "A"
        assert g.node("a").label == "A"
        assert g.edge("e1")["weight"] == 3


class TestAdjacency:
    def test_has_edge_both_directions_undirected(self):
        g = small_graph()
        assert g.has_edge("a", "b")
        assert g.has_edge("b", "a")
        assert not g.has_edge("a", "c")

    def test_neighbors(self):
        g = small_graph()
        assert sorted(g.neighbors("b")) == ["a", "c"]
        assert g.neighbors("a") == ["b"]

    def test_degree(self):
        g = small_graph()
        assert g.degree("b") == 2
        assert g.degree("a") == 1

    def test_edge_between(self):
        g = small_graph()
        assert g.edge_between("b", "a").id == "e1"
        assert g.edge_between("a", "c") is None

    def test_incident_edges(self):
        g = small_graph()
        assert sorted(g.incident_edges("b")) == ["e1", "e2"]

    def test_self_loop_degree(self):
        g = Graph()
        g.add_node("x")
        g.add_edge("x", "x")
        # the classic convention: a self loop contributes 2 to the degree
        assert g.degree("x") == 2


class TestDirected:
    def test_directed_edges_one_way(self):
        g = Graph(directed=True)
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b")
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")
        assert g.neighbors("a") == ["b"]
        assert g.neighbors("b") == []
        assert g.in_neighbors("b") == ["a"]
        assert g.all_neighbors("b") == ["a"]

    def test_directed_degree(self):
        g = Graph(directed=True)
        for n in "abc":
            g.add_node(n)
        g.add_edge("a", "b")
        g.add_edge("c", "b")
        assert g.degree("b") == 2


class TestRemoval:
    def test_remove_edge(self):
        g = small_graph()
        g.remove_edge("e1")
        assert not g.has_edge("a", "b")
        assert g.num_edges() == 1
        assert g.degree("a") == 0

    def test_remove_node_removes_incident_edges(self):
        g = small_graph()
        g.remove_node("b")
        assert g.num_nodes() == 2
        assert g.num_edges() == 0
        assert not g.has_edge("a", "b")

    def test_remove_unknown_node(self):
        g = small_graph()
        with pytest.raises(KeyError):
            g.remove_node("zzz")


class TestDerivedGraphs:
    def test_copy_independent(self):
        g = small_graph()
        h = g.copy()
        h.node("a").tuple.set("label", "Z")
        h.add_node("d")
        assert g.node("a")["label"] == "A"
        assert not g.has_node("d")

    def test_copy_equals(self):
        g = small_graph()
        assert g.equals(g.copy())

    def test_induced_subgraph(self):
        g = small_graph()
        sub = g.induced_subgraph(["a", "b"])
        assert sorted(sub.node_ids()) == ["a", "b"]
        assert sub.num_edges() == 1
        assert sub.has_edge("a", "b")

    def test_relabeled(self):
        g = small_graph()
        h = g.relabeled({"a": "x"})
        assert h.has_node("x") and not h.has_node("a")
        assert h.has_edge("x", "b")

    def test_disjoint_union(self):
        g = small_graph()
        h = small_graph()
        u = disjoint_union({"G1": g, "G2": h})
        assert u.num_nodes() == 6
        assert u.num_edges() == 4
        assert u.has_node("G1.a") and u.has_node("G2.a")
        assert u.has_edge("G1.a", "G1.b")
        assert not u.has_edge("G1.a", "G2.b")
        assert u.members["G1"] is g


class TestEquality:
    def test_equals_detects_attr_change(self):
        g = small_graph()
        h = small_graph()
        h.node("a").tuple.set("label", "Z")
        assert not g.equals(h)

    def test_equals_detects_edge_change(self):
        g = small_graph()
        h = small_graph()
        h.add_edge("a", "c")
        assert not g.equals(h)

    def test_equals_ignores_edge_orientation_when_undirected(self):
        g = Graph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b")
        h = Graph()
        h.add_node("a")
        h.add_node("b")
        h.add_edge("b", "a")
        assert g.equals(h)

    def test_signature_consistency(self):
        g = small_graph()
        h = small_graph()
        assert g.signature() == h.signature()
