"""Unit and property tests for the B-tree index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import BTree


class TestBasics:
    def test_insert_and_get(self):
        tree = BTree(min_degree=2)
        tree.insert(5, "a")
        tree.insert(3, "b")
        tree.insert(5, "c")
        assert tree.get(5) == ["a", "c"]
        assert tree.get(3) == ["b"]
        assert tree.get(99) == []
        assert len(tree) == 3

    def test_contains(self):
        tree = BTree(min_degree=2)
        tree.insert(1, "x")
        assert 1 in tree
        assert 2 not in tree

    def test_min_max(self):
        tree = BTree(min_degree=2)
        for k in (5, 1, 9, 3):
            tree.insert(k, k)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_min_max_empty(self):
        tree = BTree()
        with pytest.raises(ValueError):
            tree.min_key()
        with pytest.raises(ValueError):
            tree.max_key()

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            BTree(min_degree=1)

    def test_items_sorted(self):
        tree = BTree(min_degree=2)
        keys = [7, 2, 9, 4, 1, 8, 3]
        for k in keys:
            tree.insert(k, str(k))
        assert [k for k, _ in tree.items()] == sorted(keys)
        assert list(tree.keys()) == sorted(keys)


class TestRange:
    def make(self):
        tree = BTree(min_degree=2)
        for k in range(10):
            tree.insert(k, f"p{k}")
        return tree

    def test_closed_range(self):
        tree = self.make()
        assert [k for k, _ in tree.range(3, 6)] == [3, 4, 5, 6]

    def test_open_ends(self):
        tree = self.make()
        assert [k for k, _ in tree.range(3, 6, include_low=False)] == [4, 5, 6]
        assert [k for k, _ in tree.range(3, 6, include_high=False)] == [3, 4, 5]

    def test_unbounded(self):
        tree = self.make()
        assert [k for k, _ in tree.range(None, 2)] == [0, 1, 2]
        assert [k for k, _ in tree.range(8, None)] == [8, 9]
        assert len(list(tree.range())) == 10

    def test_empty_range(self):
        tree = self.make()
        assert list(tree.range(100, 200)) == []


class TestDelete:
    def test_delete_whole_key(self):
        tree = BTree(min_degree=2)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1)
        assert tree.get(1) == []
        assert len(tree) == 0

    def test_delete_one_payload(self):
        tree = BTree(min_degree=2)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a")
        assert tree.get(1) == ["b"]
        assert len(tree) == 1

    def test_delete_missing(self):
        tree = BTree(min_degree=2)
        tree.insert(1, "a")
        assert not tree.delete(2)
        assert not tree.delete(1, "zzz")

    def test_bulk_delete_keeps_invariants(self):
        rng = random.Random(5)
        tree = BTree(min_degree=2)
        keys = list(range(200))
        rng.shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        rng.shuffle(keys)
        for k in keys[:150]:
            assert tree.delete(k)
            tree.validate()
        remaining = sorted(keys[150:])
        assert [k for k, _ in tree.items()] == remaining


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from("IDR"), st.integers(0, 50)),
        max_size=120,
    ),
    st.integers(2, 5),
)
def test_btree_behaves_like_sorted_multimap(operations, degree):
    """Property: a B-tree agrees with a reference dict-of-lists under a
    random interleaving of inserts, deletes and range scans."""
    tree = BTree(min_degree=degree)
    reference: dict = {}
    counter = 0
    for op, key in operations:
        if op == "I":
            counter += 1
            tree.insert(key, counter)
            reference.setdefault(key, []).append(counter)
        elif op == "D":
            expected = key in reference
            assert tree.delete(key) == expected
            reference.pop(key, None)
        else:  # R: compare a window
            low, high = key, key + 10
            got = sorted((k, p) for k, p in tree.range(low, high))
            want = sorted(
                (k, p)
                for k, payloads in reference.items()
                if low <= k <= high
                for p in payloads
            )
            assert got == want
        tree.validate()
    assert len(tree) == sum(len(v) for v in reference.values())
    assert [k for k in tree.keys()] == sorted(reference)
