"""Unit and property tests for the collection path index (filter+verify)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Graph, GraphCollection, GroundPattern
from repro.core.motif import SimpleMotif, clique_motif
from repro.datasets import molecule_collection, benzene_ring_pattern
from repro.index import (
    PathIndex,
    PathIndexStats,
    enumerate_label_paths,
    pattern_features,
)
from repro.matching import find_matches


def labeled_path(labels) -> Graph:
    g = Graph()
    previous = None
    for i, label in enumerate(labels):
        node = g.add_node(f"n{i}", label=label)
        if previous is not None:
            g.add_edge(previous, node.id)
        previous = node.id
    return g


class TestFeatureEnumeration:
    def test_single_node(self):
        g = labeled_path("A")
        features = enumerate_label_paths(g, 2)
        assert features == {("A",): 1}

    def test_path_counts(self):
        g = labeled_path("ABC")
        features = enumerate_label_paths(g, 2)
        assert features[("A",)] == 1
        assert features[("A", "B")] == 1  # counted once, not per direction
        assert features[("B", "C")] == 1
        assert features[("A", "B", "C")] == 1
        assert ("C", "B", "A") not in features  # canonicalized

    def test_palindrome_paths_counted_once(self):
        g = labeled_path("ABA")
        features = enumerate_label_paths(g, 2)
        assert features[("A", "B", "A")] == 1
        assert features[("A", "B")] == 2  # two distinct A-B edges

    def test_triangle(self):
        g = Graph()
        for i, label in enumerate("ABC"):
            g.add_node(f"n{i}", label=label)
        g.add_edge("n0", "n1")
        g.add_edge("n1", "n2")
        g.add_edge("n0", "n2")
        features = enumerate_label_paths(g, 1)
        assert features[("A", "B")] == 1
        assert features[("A", "C")] == 1
        assert features[("B", "C")] == 1

    def test_length_bound(self):
        g = labeled_path("ABCD")
        features = enumerate_label_paths(g, 1)
        assert all(len(f) <= 2 for f in features)

    def test_directed_paths_keep_direction(self):
        g = Graph(directed=True)
        g.add_node("a", label="A")
        g.add_node("b", label="B")
        g.add_edge("a", "b")
        features = enumerate_label_paths(g, 2)
        assert features[("A", "B")] == 1
        assert ("B", "A") not in features


class TestPatternFeatures:
    def test_unconstrained_nodes_excluded(self):
        motif = SimpleMotif()
        motif.add_node("u", attrs={"label": "A"})
        motif.add_node("w")  # no constraint
        motif.add_edge("u", "w")
        features = pattern_features(GroundPattern(motif), 2)
        assert features == {("A",): 1}

    def test_pattern_and_data_features_align(self):
        pattern = GroundPattern(clique_motif(["A", "B", "C"]))
        required = pattern_features(pattern, 2)
        data = enumerate_label_paths(clique_motif(["A", "B", "C"]).to_graph(), 2)
        # the pattern's own structure trivially satisfies its requirements
        for feature, count in required.items():
            assert data[feature] >= count


class TestFilterVerify:
    def make_collection(self):
        return GraphCollection([
            labeled_path("AB"),     # 0
            labeled_path("ABC"),    # 1
            labeled_path("AC"),     # 2
            labeled_path("BCB"),    # 3
        ])

    def test_filter_prunes(self):
        index = PathIndex(self.make_collection(), max_length=2)
        pattern = _ab_pattern()
        stats = PathIndexStats()
        positions = index.candidate_positions(pattern, stats=stats)
        assert set(positions) == {0, 1}
        assert stats.filter_ratio == 0.5

    def test_select_equals_full_scan(self):
        from repro.core import select

        collection = self.make_collection()
        index = PathIndex(collection, max_length=2)
        pattern = _ab_pattern()
        indexed = index.select(pattern)
        scanned = select(collection, pattern)
        assert len(indexed) == len(scanned)

    def test_unconstrained_pattern_scans_everything(self):
        index = PathIndex(self.make_collection(), max_length=2)
        motif = SimpleMotif()
        motif.add_node("u")
        stats = PathIndexStats()
        index.candidate_positions(GroundPattern(motif), stats=stats)
        assert stats.candidates == stats.collection_size


class TestMolecules:
    def test_benzene_search(self):
        collection = molecule_collection(num_molecules=120, seed=3)
        index = PathIndex(collection, max_length=3)
        pattern = benzene_ring_pattern()
        stats = PathIndexStats()
        result = index.select(pattern, exhaustive=False, stats=stats)
        # the filter must not lose any compound a full scan finds
        from repro.core import select

        scanned = select(collection, pattern, exhaustive=False)
        assert len(result) == len(scanned)
        assert stats.candidates <= stats.collection_size


def _ab_pattern() -> GroundPattern:
    motif = SimpleMotif()
    motif.add_node("u", attrs={"label": "A"})
    motif.add_node("w", attrs={"label": "B"})
    motif.add_edge("u", "w")
    return GroundPattern(motif)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_filter_soundness(seed):
    """Property: the path filter never drops a graph that matches."""
    rng = random.Random(seed)
    labels = "AB"
    collection = GraphCollection()
    for g_index in range(6):
        g = Graph(f"g{g_index}")
        n = rng.randint(2, 6)
        for i in range(n):
            g.add_node(f"n{i}", label=rng.choice(labels))
        ids = g.node_ids()
        for _ in range(rng.randint(1, 8)):
            a, b = rng.choice(ids), rng.choice(ids)
            if a != b and not g.has_edge(a, b):
                g.add_edge(a, b)
        collection.add(g)
    # pattern extracted from a random member => at least one true answer
    source = collection[rng.randrange(len(collection))]
    size = rng.randint(1, min(3, source.num_nodes()))
    chosen = rng.sample(source.node_ids(), size)
    motif = SimpleMotif.from_graph(source.induced_subgraph(chosen))
    pattern = GroundPattern(motif)

    index = PathIndex(collection, max_length=2)
    candidates = set(index.candidate_positions(pattern))
    for position, graph in enumerate(collection):
        if find_matches(pattern, graph, exhaustive=False):
            assert position in candidates, (
                f"filter dropped matching graph {graph.name}"
            )
