"""Unit tests for hash, attribute and profile indexes."""


from repro.core import Graph
from repro.core.predicate import AttrRef, BinOp, Literal, conjunction
from repro.index import AttributeIndexSet, HashIndex, ProfileIndex


def ref(path):
    return AttrRef(tuple(path.split(".")))


class TestHashIndex:
    def test_insert_get(self):
        index = HashIndex()
        index.insert("A", "n1")
        index.insert("A", "n2")
        index.insert("B", "n3")
        assert index.get("A") == ["n1", "n2"]
        assert index.get("Z") == []
        assert len(index) == 3
        assert "A" in index and "Z" not in index

    def test_delete(self):
        index = HashIndex()
        index.insert("A", "n1")
        index.insert("A", "n2")
        assert index.delete("A", "n1")
        assert index.get("A") == ["n2"]
        assert index.delete("A")
        assert "A" not in index
        assert not index.delete("A")
        assert not index.delete("Z", "x")

    def test_items(self):
        index = HashIndex()
        index.insert("A", 1)
        assert dict(index.items()) == {"A": [1]}


class TestAttributeIndexSet:
    def graph(self):
        g = Graph()
        g.add_node("n1", label="A", year=2001)
        g.add_node("n2", label="B", year=2005)
        g.add_node("n3", label="A", year=2008)
        g.add_node("n4")  # attribute-free node
        return g

    def test_autodiscovers_attributes(self):
        index = AttributeIndexSet(self.graph())
        assert set(index.attributes()) == {"label", "year"}

    def test_eq_lookup(self):
        index = AttributeIndexSet(self.graph())
        assert sorted(index.lookup_eq("label", "A")) == ["n1", "n3"]
        assert index.lookup_eq("label", "Z") == []

    def test_range_lookup(self):
        index = AttributeIndexSet(self.graph())
        assert sorted(index.lookup_range("year", 2002, None)) == ["n2", "n3"]
        assert index.lookup_range("year", None, 2001) == ["n1"]
        assert sorted(
            index.lookup_range("year", 2001, 2005, include_low=False)
        ) == ["n2"]

    def test_candidates_from_required_attrs(self):
        index = AttributeIndexSet(self.graph())
        assert sorted(index.candidates_for({"label": "A"})) == ["n1", "n3"]

    def test_candidates_from_predicate(self):
        index = AttributeIndexSet(self.graph())
        pred = BinOp(">", ref("year"), Literal(2004))
        assert sorted(index.candidates_for({}, pred)) == ["n2", "n3"]
        # flipped orientation
        pred = BinOp("<", Literal(2004), ref("year"))
        assert sorted(index.candidates_for({}, pred)) == ["n2", "n3"]

    def test_candidates_picks_most_selective(self):
        index = AttributeIndexSet(self.graph())
        pred = conjunction([
            BinOp(">", ref("year"), Literal(1000)),  # matches 3
            BinOp("==", ref("label"), Literal("B")),  # matches 1
        ])
        assert index.candidates_for({}, pred) == ["n2"]

    def test_nothing_indexable(self):
        index = AttributeIndexSet(self.graph())
        pred = BinOp("==", ref("u1.label"), ref("u2.label"))
        assert index.candidates_for({}, pred) is None
        assert index.candidates_for({}) is None

    def test_explicit_attribute_list(self):
        index = AttributeIndexSet(self.graph(), attributes=["label"])
        assert index.has_index("label")
        assert not index.has_index("year")

    def test_mixed_type_keys_do_not_clash(self):
        g = Graph()
        g.add_node("a", code=1)
        g.add_node("b", code="1")
        index = AttributeIndexSet(g)
        assert index.lookup_eq("code", 1) == ["a"]
        assert index.lookup_eq("code", "1") == ["b"]


class TestProfileIndex:
    def test_profiles_match_direct_computation(self, paper_graph):
        from repro.matching import profile

        index = ProfileIndex(paper_graph, radius=1)
        for node in paper_graph.nodes():
            assert index.profile_of(node.id) == profile(paper_graph, node.id, 1)

    def test_label_lookup(self, paper_graph):
        index = ProfileIndex(paper_graph, radius=1)
        assert sorted(index.nodes_with_label("A")) == ["A1", "A2"]

    def test_subgraph_cached(self, paper_graph):
        index = ProfileIndex(paper_graph, radius=1)
        first = index.subgraph_of("A1")
        again = index.subgraph_of("A1")
        assert first is again
        assert set(first.node_ids()) == {"A1", "B1", "C2"}

    def test_eager_subgraphs(self, paper_graph):
        index = ProfileIndex(paper_graph, radius=1, eager_subgraphs=True)
        assert index.subgraph_of("B1").num_nodes() == 4
