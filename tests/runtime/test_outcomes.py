"""QueryOutcome wire round-trips across every terminal state.

The outcome dict is the one serialization the CLI's ``--json`` output,
the service wire protocol, and the cluster coordinator all share; a
field that does not survive ``to_dict() -> from_dict()`` silently
corrupts every consumer at once.  These tests pin the round-trip for
each terminal status, including the ``detail`` payload PARTIAL depends
on for its per-shard accounting.
"""

import json

import pytest

from repro.runtime import (
    Outcome,
    QueryOutcome,
    partial_outcome,
    rejected_outcome,
    shed_outcome,
)


def roundtrip(outcome: QueryOutcome) -> QueryOutcome:
    """Through JSON, exactly as the wire protocol carries it."""
    return QueryOutcome.from_dict(json.loads(json.dumps(outcome.to_dict())))


@pytest.mark.parametrize("status", list(Outcome))
def test_every_terminal_state_round_trips(status):
    outcome = QueryOutcome(
        status=status, reason=f"because {status.value.lower()}",
        steps=1234, results=56, memory_used=7890, elapsed=0.125,
        phase_times={"search": 0.08, "refine": 0.04},
    )
    back = roundtrip(outcome)
    assert back.status is status
    assert back.reason == outcome.reason
    assert back.steps == 1234
    assert back.results == 56
    assert back.memory_used == 7890
    assert back.elapsed == pytest.approx(0.125)
    assert back.phase_times == outcome.phase_times
    assert back.detail == {}


@pytest.mark.parametrize("status", list(Outcome))
def test_detail_round_trips_for_every_state(status):
    detail = {
        "submitted": 4, "merged": 3, "failed": 1, "map_version": 7,
        "shards": {
            "shard0": {"merged": True, "rows": 12, "status": "COMPLETE"},
            "shard3": {"merged": False, "rows": 0,
                       "error": "connection refused"},
        },
        "degradation": ["result cache bypassed: document changed"],
    }
    back = roundtrip(QueryOutcome(status=status, detail=detail))
    assert back.detail == detail
    # the copy is deep enough that the wire form owns its dict
    assert back.detail is not detail


def test_empty_detail_is_omitted_from_the_wire_form():
    assert "detail" not in QueryOutcome().to_dict()
    payload = QueryOutcome(detail={"k": 1}).to_dict()
    assert payload["detail"] == {"k": 1}


def test_from_dict_tolerates_missing_and_unknown_keys():
    back = QueryOutcome.from_dict({"status": "TIMED_OUT",
                                   "not_a_field": True})
    assert back.status is Outcome.TIMED_OUT
    assert back.reason == "" and back.detail == {}
    assert QueryOutcome.from_dict({}).status is Outcome.COMPLETE


def test_helper_constructors_carry_their_semantics():
    rejected = roundtrip(rejected_outcome("queue full"))
    assert rejected.status is Outcome.REJECTED
    assert rejected.steps == 0  # never executed, by construction

    shed = roundtrip(shed_outcome("breaker open"))
    assert shed.status is Outcome.SHED
    assert shed.steps == 0

    partial = roundtrip(partial_outcome(
        "1/4 shard(s) did not answer: shard3",
        detail={"submitted": 4, "merged": 3, "failed": 1}))
    assert partial.status is Outcome.PARTIAL
    assert partial.interrupted and not partial.complete
    assert partial.detail["submitted"] == \
        partial.detail["merged"] + partial.detail["failed"]


def test_partial_accounting_survives_nested_per_shard_detail():
    detail = {"submitted": 2, "merged": 1, "failed": 1,
              "shards": {"shard0": {"merged": True, "rows": 3,
                                    "elapsed": 0.004},
                         "shard1": {"merged": False, "rows": 0,
                                    "hedged": True,
                                    "error": "no answer inside "
                                             "the deadline"}}}
    back = roundtrip(partial_outcome("1/2 shard(s) failed", detail))
    shards = back.detail["shards"]
    assert shards["shard1"]["hedged"] is True
    assert sum(1 for s in shards.values() if s["merged"]) == \
        back.detail["merged"]
