"""Governance primitives under real thread concurrency.

The service layer cancels queries from other threads and shares tokens
across contexts; these tests exercise exactly those interactions with
real searches running in worker threads (no fake clocks).
"""

import threading
import time

import pytest

from repro.core import Graph, GroundPattern, SimpleMotif, clique_motif
from repro.matching import find_matches
from repro.runtime import (
    CancellationToken,
    ExecutionContext,
    Outcome,
    QueryCancelled,
)


def dense_graph(nodes: int = 24, label: str = "A") -> Graph:
    """A complete graph with one label: a combinatorially huge search."""
    graph = Graph("dense")
    ids = [f"v{i}" for i in range(nodes)]
    for node_id in ids:
        graph.add_node(node_id, label=label)
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            graph.add_edge(a, b)
    return graph


def heavy_pattern(size: int = 7, label: str = "A") -> GroundPattern:
    """A path pattern whose match count on a dense graph is enormous."""
    motif = SimpleMotif()
    for i in range(size):
        motif.add_node(f"u{i}", attrs={"label": label})
    for i in range(size - 1):
        motif.add_edge(f"u{i}", f"u{i + 1}", name=f"e{i}")
    return GroundPattern(motif)


class TestCrossThreadCancellation:
    def test_cancel_from_another_thread_mid_search(self):
        graph = dense_graph()
        context = ExecutionContext(check_every=64)
        done = threading.Event()
        bucket = {}

        def search():
            bucket["results"] = find_matches(heavy_pattern(), graph,
                                             context=context)
            done.set()

        worker = threading.Thread(target=search)
        worker.start()
        time.sleep(0.15)  # let the search get deep
        assert not done.is_set(), "search finished before it was cancelled"
        context.token.cancel("cancelled from the controlling thread")
        assert done.wait(timeout=10), "cancellation was not observed"
        worker.join()
        outcome = context.outcome()
        assert outcome.status is Outcome.CANCELLED
        assert "controlling thread" in outcome.reason
        # partial results accumulated before the cancel are preserved
        assert len(bucket["results"]) > 0

    def test_two_contexts_sharing_one_token(self):
        graph = dense_graph()
        token = CancellationToken()
        contexts = [ExecutionContext(token=token, check_every=64)
                    for _ in range(2)]
        done = threading.Barrier(3)
        outcomes = {}

        def search(index, context):
            find_matches(heavy_pattern(), graph, context=context)
            outcomes[index] = context.outcome()
            done.wait(timeout=10)

        workers = [threading.Thread(target=search, args=(i, c))
                   for i, c in enumerate(contexts)]
        for worker in workers:
            worker.start()
        time.sleep(0.15)
        token.cancel("shared token tripped")
        done.wait(timeout=10)
        for worker in workers:
            worker.join()
        # one cancel stops every execution sharing the token
        assert outcomes[0].status is Outcome.CANCELLED
        assert outcomes[1].status is Outcome.CANCELLED

    def test_cancel_is_idempotent_across_threads(self):
        token = CancellationToken()
        barrier = threading.Barrier(8)

        def cancel(index):
            barrier.wait(timeout=5)
            token.cancel(f"racer {index}")

        threads = [threading.Thread(target=cancel, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert token.is_cancelled()
        # exactly one reason won, and it is one of the racers'
        assert token.reason.startswith("racer ")

    def test_already_cancelled_token_stops_new_context_immediately(self):
        token = CancellationToken()
        token.cancel("pre-cancelled")
        context = ExecutionContext(token=token)
        with pytest.raises(QueryCancelled):
            context.check()


class TestContextIndependence:
    def test_sibling_contexts_do_not_share_budgets(self):
        """Two requests derived from the same defaults stay independent."""
        graph = dense_graph(nodes=10)
        pattern = GroundPattern(clique_motif(["A", "A"]))
        first = ExecutionContext(max_steps=100_000)
        second = ExecutionContext(max_steps=100_000)
        find_matches(pattern, graph, context=first)
        assert first.steps > 0
        assert second.steps == 0
        assert second.outcome().complete

    def test_concurrent_searches_with_private_contexts(self):
        graph = dense_graph(nodes=12)
        pattern = GroundPattern(clique_motif(["A", "A", "A"]))
        results = {}

        def run(index):
            context = ExecutionContext(max_results=50)
            mappings = find_matches(pattern, graph, context=context)
            results[index] = (len(mappings), context.outcome().status)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 6
        for count, status in results.values():
            assert count == 50
            assert status is Outcome.TRUNCATED
