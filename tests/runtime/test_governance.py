"""Governance threaded through the engines: partial results, fallbacks.

These tests exercise the issue's acceptance scenarios: deadline expiry
mid-search with partial matches kept, answer caps terminating the search
from the inside, Datalog fixpoint cancellation, and the planner's
degradation ladder when index structures are missing or broken.
"""

import pytest

from repro.core import Graph, GroundPattern, clique_motif
from repro.datalog import Atom, BodyLiteral, Program, Rule, Var, evaluate
from repro.matching import GraphMatcher, MatchOptions, find_matches
from repro.runtime import (
    CancellationToken,
    ExecutionContext,
    Outcome,
)


@pytest.fixture
def many_a_graph() -> Graph:
    """A 60-node path, every node labeled A: many matches, cheap steps."""
    graph = Graph("path")
    for i in range(60):
        graph.add_node(f"v{i}", label="A")
    for i in range(59):
        graph.add_edge(f"v{i}", f"v{i + 1}")
    return graph


SINGLE_A = GroundPattern(clique_motif(["A"]))


def advancing_clock(step: float):
    state = {"t": 0.0}

    def clock() -> float:
        state["t"] += step
        return state["t"]

    return clock


class TestSearchGovernance:
    def test_deadline_mid_search_keeps_partial_matches(self, many_a_graph):
        # every clock read advances 0.5s, so the 5s deadline expires
        # after ~10 checks — well inside the 60-candidate scan
        context = ExecutionContext(timeout=5.0, check_every=1,
                                   clock=advancing_clock(0.5))
        results = find_matches(SINGLE_A, many_a_graph, context=context)
        assert 0 < len(results) < 60
        outcome = context.outcome()
        assert outcome.status is Outcome.TIMED_OUT
        assert outcome.steps > 0

    def test_answer_cap_terminates_inside_search(self, many_a_graph):
        context = ExecutionContext(max_results=5)
        results = find_matches(SINGLE_A, many_a_graph, context=context)
        assert len(results) == 5  # stopped at the cap, not sliced after
        assert context.outcome().status is Outcome.TRUNCATED

    def test_step_budget_in_matcher_pipeline(self, many_a_graph):
        matcher = GraphMatcher(many_a_graph)
        context = ExecutionContext(max_steps=10, check_every=1)
        report = matcher.match(SINGLE_A, MatchOptions(), context=context)
        assert report.outcome.status is Outcome.TRUNCATED
        assert "step budget" in report.outcome.reason
        # partial results stay on the report
        assert len(report.mappings) < 60

    def test_without_context_search_is_unbounded(self, many_a_graph):
        results = find_matches(SINGLE_A, many_a_graph)
        assert len(results) == 60

    def test_interrupted_context_stops_following_graphs(self, many_a_graph):
        from repro.storage import GraphDatabase

        database = GraphDatabase()
        from repro.core import GraphCollection

        database.register(
            "docs", GraphCollection([many_a_graph, many_a_graph.copy()])
        )
        context = ExecutionContext(max_steps=10, check_every=1)
        reports = database.match("docs", SINGLE_A, context=context)
        assert len(reports) == 1  # second graph never started


class TestDatalogCancellation:
    def test_fixpoint_cancelled_returns_partial_model(self):
        X, Y, Z = Var("X"), Var("Y"), Var("Z")
        program = Program()
        for i in range(40):
            program.fact("e", i, i + 1)
        program.add_rule(Rule(Atom("t", [X, Y]),
                              [BodyLiteral(Atom("e", [X, Y]))]))
        program.add_rule(Rule(Atom("t", [X, Z]),
                              [BodyLiteral(Atom("t", [X, Y])),
                               BodyLiteral(Atom("e", [Y, Z]))]))

        class FlippingToken(CancellationToken):
            def __init__(self, after: int) -> None:
                super().__init__()
                self.polls = 0
                self.after = after

            def is_cancelled(self) -> bool:
                self.polls += 1
                return self.polls > self.after

        context = ExecutionContext(token=FlippingToken(after=30),
                                   check_every=1)
        model = evaluate(program, context=context)
        assert context.outcome().status is Outcome.CANCELLED
        # sound but incomplete: full closure has 40*41/2 = 820 pairs
        derived = model.get("t", set())
        assert 0 < len(derived) < 820

    def test_fixpoint_complete_without_context(self):
        X, Y, Z = Var("X"), Var("Y"), Var("Z")
        program = Program()
        for i in range(10):
            program.fact("e", i, i + 1)
        program.add_rule(Rule(Atom("t", [X, Y]),
                              [BodyLiteral(Atom("e", [X, Y]))]))
        program.add_rule(Rule(Atom("t", [X, Z]),
                              [BodyLiteral(Atom("t", [X, Y])),
                               BodyLiteral(Atom("e", [Y, Z]))]))
        model = evaluate(program)
        assert len(model["t"]) == 10 * 11 // 2


class TestDegradationLadder:
    class _Broken:
        """Raises on any attribute access: a thoroughly dead index."""

        def __getattr__(self, name):
            raise RuntimeError("index structure unavailable")

    def test_broken_indexes_still_answer(self, paper_graph, triangle_pattern):
        healthy = GraphMatcher(paper_graph)
        expected = {m.nodes_tuple() if hasattr(m, "nodes_tuple") else str(m)
                    for m in healthy.match(triangle_pattern).mappings}

        broken = GraphMatcher(paper_graph)
        broken.attribute_index = self._Broken()
        broken.profile_index = self._Broken()
        report = broken.match(triangle_pattern)
        assert report.degradation  # the fallback was recorded
        assert {m.nodes_tuple() if hasattr(m, "nodes_tuple") else str(m)
                for m in report.mappings} == expected
        assert report.outcome.complete

    def test_index_build_failure_degrades_not_fails(self, paper_graph,
                                                    triangle_pattern,
                                                    monkeypatch):
        def boom(*args, **kwargs):
            raise MemoryError("no room for the index")

        monkeypatch.setattr("repro.matching.planner.AttributeIndexSet", boom)
        monkeypatch.setattr("repro.matching.planner.ProfileIndex", boom)
        matcher = GraphMatcher(paper_graph)
        assert matcher.build_errors
        report = matcher.match(triangle_pattern)
        assert any("build failed" in note for note in report.degradation)
        assert len(report.mappings) == 1  # the A1-B1-C2 triangle

    def test_no_index_matcher_matches_indexed_results(self, paper_graph,
                                                      triangle_pattern):
        indexed = GraphMatcher(paper_graph)
        bare = GraphMatcher(paper_graph, build_attribute_index=False,
                            build_profile_index=False)
        assert (len(indexed.match(triangle_pattern).mappings)
                == len(bare.match(triangle_pattern).mappings) == 1)


class TestSQLGovernance:
    def test_step_budget_aborts_with_partial_rows(self, paper_graph):
        from repro.sqlbaseline import ExecutionStats, SQLGraphMatcher

        matcher = SQLGraphMatcher(paper_graph)
        pattern = GroundPattern(clique_motif(["A", "B", "C"]))
        stats = ExecutionStats()
        context = ExecutionContext(max_steps=2, check_every=1)
        mappings = matcher.match(pattern, stats=stats, context=context)
        assert stats.aborted
        assert context.outcome().status is Outcome.TRUNCATED
        assert len(mappings) <= 1

    def test_unbudgeted_run_unchanged(self, paper_graph):
        from repro.sqlbaseline import SQLGraphMatcher

        matcher = SQLGraphMatcher(paper_graph)
        pattern = GroundPattern(clique_motif(["A", "B", "C"]))
        assert len(matcher.match(pattern)) == 1  # the A1-B1-C2 triangle


class TestProgramGovernance:
    def test_interrupted_program_returns_partial_env(self):
        from repro.datasets import tiny_dblp
        from repro.storage import GraphDatabase

        database = GraphDatabase()
        database.register("DBLP", tiny_dblp())
        source = """
            graph P { node v1 <author>; };
            for P exhaustive in doc("DBLP")
            return graph { node n <who=P.v1.name>; };
        """
        context = ExecutionContext(max_steps=1, check_every=1)
        env = database.query(source, context=context)
        assert context.outcome().status is Outcome.TRUNCATED
        assert "__result__" in env
