"""Unit tests for the execution-governance vocabulary."""

import pytest

from repro.runtime import (
    BudgetExhausted,
    CancellationToken,
    DeadlineExceeded,
    ExecutionContext,
    ExecutionInterrupted,
    MemoryBudgetExhausted,
    Outcome,
    QueryCancelled,
    QueryOutcome,
    current_outcome,
    mapping_cost,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestTicks:
    def test_ticks_accumulate_steps(self):
        context = ExecutionContext()
        context.tick(3)
        context.tick()
        assert context.steps == 4

    def test_expensive_check_runs_every_n_ticks(self):
        clock = FakeClock()
        context = ExecutionContext(timeout=1.0, check_every=4, clock=clock)
        clock.now += 5.0  # already past the deadline
        for _ in range(3):
            context.tick()  # below the check interval: no clock read
        with pytest.raises(DeadlineExceeded):
            context.tick()

    def test_check_every_must_be_positive(self):
        with pytest.raises(ValueError):
            ExecutionContext(check_every=0)


class TestDeadline:
    def test_unlimited_by_default(self):
        context = ExecutionContext(check_every=1)
        for _ in range(1000):
            context.tick()
        assert context.outcome().complete

    def test_deadline_raises_timed_out(self):
        clock = FakeClock()
        context = ExecutionContext(timeout=2.0, clock=clock)
        context.check()  # still inside the deadline
        clock.now += 2.5
        with pytest.raises(DeadlineExceeded) as info:
            context.check()
        assert info.value.outcome is Outcome.TIMED_OUT

    def test_remaining_time(self):
        clock = FakeClock()
        context = ExecutionContext(timeout=2.0, clock=clock)
        clock.now += 0.5
        assert context.remaining_time() == pytest.approx(1.5)
        clock.now += 10
        assert context.remaining_time() == 0.0
        assert ExecutionContext().remaining_time() is None


class TestBudgets:
    def test_step_budget(self):
        context = ExecutionContext(max_steps=10, check_every=1)
        with pytest.raises(BudgetExhausted):
            for _ in range(100):
                context.tick()
        assert context.steps == 11  # the violating step was counted

    def test_memory_budget_via_check(self):
        context = ExecutionContext(max_memory=100)
        context.memory_used = 101
        with pytest.raises(MemoryBudgetExhausted):
            context.check()

    def test_answer_cap_truncates(self):
        context = ExecutionContext(max_results=3)
        assert context.note_result() is False
        assert context.note_result() is False
        assert context.note_result() is True  # cap reached: stop, keep it
        outcome = context.outcome()
        assert outcome.status is Outcome.TRUNCATED
        assert outcome.results == 3
        assert "answer cap" in outcome.reason

    def test_memory_cap_truncates(self):
        context = ExecutionContext(max_memory=500)
        assert context.note_result(memory=400) is False
        assert context.note_result(memory=400) is True
        assert context.outcome().status is Outcome.TRUNCATED

    def test_mapping_cost_scales_with_entries(self):
        class FakeMapping:
            def __init__(self, n):
                self.nodes = {i: i for i in range(n)}
                self.edges = {}

        assert mapping_cost(FakeMapping(8)) > mapping_cost(FakeMapping(1))
        # objects without nodes/edges still get a nonzero estimate
        assert mapping_cost(object()) > 0


class TestCancellation:
    def test_token_cancel_raises(self):
        token = CancellationToken()
        context = ExecutionContext(token=token)
        context.check()
        token.cancel("user hit ^C")
        with pytest.raises(QueryCancelled, match="user hit"):
            context.check()

    def test_first_reason_wins(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"
        assert token.cancelled


class TestOutcome:
    def test_complete_by_default(self):
        outcome = ExecutionContext().outcome()
        assert outcome.status is Outcome.COMPLETE
        assert outcome.complete and not outcome.interrupted

    def test_mark_interrupted_is_idempotent(self):
        context = ExecutionContext()
        context.mark_interrupted(DeadlineExceeded("late"))
        context.mark_interrupted(BudgetExhausted("over"))
        outcome = context.outcome()
        assert outcome.status is Outcome.TIMED_OUT
        assert "late" in outcome.reason

    def test_interruption_beats_truncation(self):
        context = ExecutionContext()
        context.note_truncated("cap reached")
        context.mark_interrupted(QueryCancelled("stop"))
        assert context.outcome().status is Outcome.CANCELLED

    def test_phase_times_accumulate(self):
        clock = FakeClock()
        context = ExecutionContext(clock=clock)
        with context.phase("search"):
            clock.now += 1.0
        with context.phase("search"):
            clock.now += 0.5
        assert context.outcome().phase_times["search"] == pytest.approx(1.5)

    def test_str_mentions_status_and_reason(self):
        text = str(QueryOutcome(status=Outcome.TIMED_OUT, reason="slow",
                                steps=7, elapsed=0.25))
        assert "TIMED_OUT" in text and "slow" in text and "steps=7" in text

    def test_current_outcome_of_none_is_complete(self):
        assert current_outcome(None).complete

    def test_exception_family(self):
        assert issubclass(DeadlineExceeded, ExecutionInterrupted)
        assert issubclass(MemoryBudgetExhausted, BudgetExhausted)
        assert issubclass(QueryCancelled, ExecutionInterrupted)
