"""Soak test: many concurrent clients hammering one QueryService.

Acceptance criteria from the service issue:
- >= 8 concurrent clients x >= 50 total queries, worker pool smaller
  than the client count
- no query is silently dropped: admitted + rejected == submitted
- every response carries a QueryOutcome
- rejected requests return REJECTED without executing (zero steps)
- a repeated identical query after warm-up is served from the result
  cache, verified by the hit counter and by being >= 5x faster than
  its cold run
"""

import threading
import time

from repro.core import Graph
from repro.datasets.random_graphs import erdos_renyi_graph
from repro.runtime import Outcome, QueryOutcome
from repro.service import QueryRequest, QueryService, ServiceConfig

CLIENTS = 8
QUERIES_PER_CLIENT = 7  # 8 x 7 = 56 >= 50 total

FAST_QUERY = ('graph P { node u1 <label="L001">; node u2 <label="L002">; '
              'edge e1 (u1, u2); }')
CACHED_QUERY = ('graph P { node a <label="L000">; node b <label="L001">; '
                'node c <label="L002">; edge e1 (a, b); edge e2 (b, c); }')
HEAVY_QUERY = ("graph P { "
               + " ".join(f'node u{i} <label="CORE">;' for i in range(7))
               + " ".join(f' edge e{i} (u{i}, u{i + 1});' for i in range(6))
               + " }")


def build_document() -> Graph:
    """A sparse labelled graph plus a dense single-label core.

    The core makes HEAVY_QUERY combinatorially expensive so that
    short timeouts and admission pressure are actually exercised.
    """
    graph = erdos_renyi_graph(250, 750, num_labels=6, seed=13, name="soak")
    core = [f"core{i}" for i in range(20)]
    for node_id in core:
        graph.add_node(node_id, label="CORE")
    for i, a in enumerate(core):
        for b in core[i + 1:]:
            graph.add_edge(a, b)
    return graph


class TestServiceSoak:
    def test_soak_concurrent_clients(self):
        config = ServiceConfig(
            workers=3,              # strictly fewer workers than clients
            queue_depth=64,         # generous: this phase measures flow,
            per_client=QUERIES_PER_CLIENT,  # not shedding (see burst test)
            default_timeout=5.0,
            default_max_results=None,  # let HEAVY_QUERY hit its deadline
        )
        service = QueryService(config)
        service.register("data", build_document())
        responses = []
        lock = threading.Lock()

        def client(index):
            mine = []
            for j in range(QUERIES_PER_CLIENT):
                if j % 3 == 2:
                    request = QueryRequest(
                        query=HEAVY_QUERY, client=f"client{index}",
                        timeout=0.2, use_cache=False)
                elif j % 3 == 1:
                    request = QueryRequest(
                        query=CACHED_QUERY, client=f"client{index}",
                        limit=200)
                else:
                    request = QueryRequest(
                        query=FAST_QUERY, client=f"client{index}",
                        limit=200)
                mine.append(service.submit(request))
            settled = [f.result(timeout=60) for f in mine]
            with lock:
                responses.extend(settled)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.shutdown()

        total = CLIENTS * QUERIES_PER_CLIENT
        assert total >= 50
        assert len(responses) == total, "a query was silently dropped"

        # accounting: every submission was either admitted or rejected
        snap = service.stats()
        assert snap["submitted"] == total
        assert snap["admitted"] + snap["rejected"] == snap["submitted"]

        # every response carries a structured QueryOutcome
        for response in responses:
            assert isinstance(response.outcome, QueryOutcome)
            assert response.outcome.status in Outcome

        # rejected requests returned without executing
        for response in responses:
            if response.rejected:
                assert response.outcome.steps == 0
                assert response.results == []

        # heavy queries hit their 0.2s deadline rather than hanging
        statuses = {r.outcome.status for r in responses}
        assert Outcome.TIMED_OUT in statuses
        assert Outcome.COMPLETE in statuses

        # the repeated CACHED_QUERY was served from the result cache
        assert snap["result_cache"]["hits"] > 0
        cached = [r for r in responses if r.cache == "hit"]
        assert cached, "no response was marked as a cache hit"
        for response in cached:
            assert response.outcome.status is Outcome.COMPLETE

    def test_warm_cache_is_at_least_5x_faster_than_cold(self):
        service = QueryService(ServiceConfig(workers=2,
                                             default_timeout=30.0,
                                             default_max_results=2000))
        service.register("data", build_document())
        try:
            hits_before = service.metrics.result_cache_hits

            start = time.perf_counter()
            cold = service.execute(CACHED_QUERY)
            cold_elapsed = time.perf_counter() - start
            assert cold.cache == "miss"
            assert cold.outcome.status is Outcome.COMPLETE

            start = time.perf_counter()
            warm = service.execute(CACHED_QUERY)
            warm_elapsed = time.perf_counter() - start
            assert warm.cache == "hit"
            assert service.metrics.result_cache_hits == hits_before + 1
            assert warm.results == cold.results
            assert warm_elapsed < cold_elapsed / 5, (
                f"cache hit not >=5x faster: cold={cold_elapsed:.4f}s "
                f"warm={warm_elapsed:.4f}s")
        finally:
            service.shutdown()

    def test_burst_forces_real_rejections(self):
        """With a tiny queue, a burst of slow queries sheds load."""
        service = QueryService(ServiceConfig(
            workers=1, queue_depth=2, per_client=4,
            default_timeout=2.0, default_max_results=None))
        service.register("data", build_document())
        try:
            requests = [QueryRequest(query=HEAVY_QUERY, client=f"b{i}",
                                     timeout=0.5, use_cache=False)
                        for i in range(10)]
            futures = [service.submit(r) for r in requests]
            responses = [f.result(timeout=60) for f in futures]

            rejected = [r for r in responses if r.rejected]
            executed = [r for r in responses if not r.rejected]
            assert rejected, "burst did not trigger load shedding"
            assert executed, "burst starved every request"
            for response in rejected:
                assert response.outcome.status is Outcome.REJECTED
                assert response.outcome.steps == 0
                assert response.outcome.reason  # structured, not silent
            snap = service.stats()
            assert snap["admitted"] + snap["rejected"] == snap["submitted"]
        finally:
            service.shutdown()
