"""Tests for networkx interoperability."""

import networkx as nx

from repro.core import Graph, GroundPattern
from repro.core.motif import clique_motif
from repro.interop import from_networkx, to_networkx
from repro.matching import GraphMatcher, optimized_options


class TestToNetworkx:
    def test_basic_conversion(self, paper_graph):
        nxg = to_networkx(paper_graph)
        assert nxg.number_of_nodes() == 6
        assert nxg.number_of_edges() == 6
        assert nxg.nodes["A1"]["label"] == "A"
        assert not nxg.is_directed()

    def test_directed(self):
        g = Graph(directed=True)
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b")
        nxg = to_networkx(g)
        assert nxg.is_directed()
        assert nxg.has_edge("a", "b") and not nxg.has_edge("b", "a")

    def test_tags_preserved(self):
        g = Graph("G")
        g.add_node("v", tag="author", name="X")
        nxg = to_networkx(g)
        assert nxg.nodes["v"]["__tag__"] == "author"


class TestFromNetworkx:
    def test_round_trip(self, paper_graph):
        back = from_networkx(to_networkx(paper_graph), name="G")
        assert back.equals(paper_graph)

    def test_numeric_node_ids_coerced(self):
        nxg = nx.path_graph(3)
        g = from_networkx(nxg)
        assert set(g.node_ids()) == {"0", "1", "2"}
        assert g.has_edge("0", "1")

    def test_non_scalar_attrs_skipped(self):
        nxg = nx.Graph()
        nxg.add_node("a", label="A", vector=[1, 2, 3])
        g = from_networkx(nxg)
        assert g.node("a")["label"] == "A"
        assert g.node("a").get("vector") is None

    def test_query_over_networkx_data(self):
        """End to end: build in networkx, query with GraphQL."""
        nxg = nx.Graph()
        for node, label in [(1, "A"), (2, "B"), (3, "C"), (4, "A")]:
            nxg.add_node(node, label=label)
        nxg.add_edges_from([(1, 2), (2, 3), (3, 1), (4, 2)])
        g = from_networkx(nxg)
        matcher = GraphMatcher(g)
        report = matcher.match(GroundPattern(clique_motif(["A", "B", "C"])),
                               optimized_options())
        assert len(report.mappings) == 1
        assert report.mappings[0].nodes["u1"] == "1"

    def test_famous_graph(self):
        """Zachary's karate club loads and is queryable."""
        g = from_networkx(nx.karate_club_graph())
        assert g.num_nodes() == 34
        from repro.core.motif import cycle_motif

        matcher = GraphMatcher(g)
        report = matcher.match(GroundPattern(cycle_motif(3)),
                               optimized_options(limit=10))
        assert report.mappings  # the club has triangles
