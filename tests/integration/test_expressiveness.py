"""Executable versions of the Section 3.5 expressiveness results.

Theorem 4.5 (RA ⊆ GraphQL): relations encode as single-node graphs and
the five primitive relational operators run through the graph algebra,
agreeing with a reference relational implementation.

Theorem 4.6 (GraphQL ⊆ Datalog): pattern matching translated to Datalog
agrees with the native matcher (spot checks here; randomized equivalence
in tests/matching/test_properties.py).
"""

from typing import List, Set, Tuple

from repro.core import (
    Graph,
    GraphCollection,
    GroundPattern,
    cartesian_product,
    difference,
    project,
    select,
    union,
)
from repro.core.motif import SimpleMotif
from repro.core.predicate import AttrRef, BinOp, Literal


def relation_to_collection(rows: Set[Tuple], columns: List[str]) -> GraphCollection:
    """Encode a relation as a collection of single-node graphs."""
    out = GraphCollection()
    for i, row in enumerate(sorted(rows, key=repr)):
        g = Graph(f"t{i}")
        g.add_node("r", **dict(zip(columns, row)))
        out.add(g)
    return out


def collection_to_relation(collection: GraphCollection, columns: List[str]) -> Set[Tuple]:
    """Decode single-node graphs back to relational rows."""
    rows = set()
    for graph_like in collection:
        graph = graph_like.as_graph() if hasattr(graph_like, "as_graph") else graph_like
        (node,) = list(graph.nodes())
        rows.add(tuple(node.get(c) for c in columns))
    return rows


R_ROWS = {("a", 1), ("b", 2), ("c", 3)}
S_ROWS = {("b", 2), ("d", 4)}
COLUMNS = ["name", "num"]


def ref(path):
    return AttrRef(tuple(path.split(".")))


class TestTheorem45:
    def test_selection(self):
        c = relation_to_collection(R_ROWS, COLUMNS)
        motif = SimpleMotif()
        motif.add_node("r", predicate=BinOp(">", ref("num"), Literal(1)))
        result = select(c, GroundPattern(motif))
        decoded = collection_to_relation(result, COLUMNS)
        assert decoded == {row for row in R_ROWS if row[1] > 1}

    def test_projection(self):
        c = relation_to_collection(R_ROWS, COLUMNS)
        motif = SimpleMotif()
        motif.add_node("r")
        result = project(c, GroundPattern(motif, name="P"),
                         {"name": "P.r.name"})
        decoded = {tuple(g.node("v1").get(c) for c in ["name"]) for g in result}
        assert decoded == {(row[0],) for row in R_ROWS}

    def test_cartesian_product(self):
        c = relation_to_collection(R_ROWS, COLUMNS)
        d = relation_to_collection(S_ROWS, COLUMNS)
        result = cartesian_product(c, d)
        assert len(result) == len(R_ROWS) * len(S_ROWS)
        composite = result[0]
        # both constituent tuples are reachable in the composed graph
        assert composite.node_ids()[0].startswith("G1.")

    def test_union(self):
        c = relation_to_collection(R_ROWS, COLUMNS)
        d = relation_to_collection(S_ROWS, COLUMNS)
        result = union(c, d)
        assert collection_to_relation(result, COLUMNS) == R_ROWS | S_ROWS

    def test_difference(self):
        c = relation_to_collection(R_ROWS, COLUMNS)
        d = relation_to_collection(S_ROWS, COLUMNS)
        result = difference(c, d)
        assert collection_to_relation(result, COLUMNS) == R_ROWS - S_ROWS

    def test_join_via_product_and_selection(self):
        """R ⋈ S on num equality via σ(R × S) — the classic derivation."""
        from repro.core import join

        c = relation_to_collection(R_ROWS, COLUMNS)
        d = relation_to_collection(S_ROWS, COLUMNS)
        condition = BinOp("==", ref("G1.r.num"), ref("G2.r.num"))
        result = join(c, d, condition)
        assert len(result) == 1  # only ("b", 2) joins


class TestTheorem46:
    def test_translation_agrees(self, paper_graph, triangle_pattern):
        from repro.datalog import match_with_datalog
        from repro.matching import find_matches

        native = {frozenset(m.nodes.items())
                  for m in find_matches(triangle_pattern, paper_graph)}
        translated = {frozenset(m.nodes.items())
                      for m in match_with_datalog(triangle_pattern, paper_graph)}
        assert native == translated

    def test_nr_graphql_fragment_is_relational(self):
        """Corollary 4.7 sanity: a nonrecursive pattern over encoded
        relations computes exactly a relational selection."""
        from repro.datalog import match_with_datalog

        c = relation_to_collection(R_ROWS, COLUMNS)
        motif = SimpleMotif()
        motif.add_node("r", predicate=BinOp("==", ref("name"), Literal("b")))
        pattern = GroundPattern(motif)
        hits = []
        for graph in c:
            hits.extend(match_with_datalog(pattern, graph))
        assert len(hits) == 1
