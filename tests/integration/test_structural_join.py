"""Section 3.3/3.4: structural joins through composition.

A *valued* join leaves constituents unconnected; a *structural* join
concatenates them with new edges or unification, expressed through the
composition operator.  The Section 3.4 algebraic form of the
co-authorship query —

    C = sigma_J( omega_T(sigma_P("DBLP"), {C}) )

— is a structural join of three primitive operators: Cartesian product,
primitive composition and selection.  These tests exercise both flavors
directly at the algebra level.
"""

from repro.core import Graph, GraphCollection, GraphTemplate, GroundPattern, compose, select
from repro.core.motif import SimpleMotif
from repro.core.predicate import AttrRef, BinOp


def ref(path):
    return AttrRef(tuple(path.split(".")))


def city(name, country):
    g = Graph(name)
    g.add_node("c", tag="city", name=name, country=country)
    return g


class TestStructuralJoin:
    def test_join_by_new_edge(self):
        """Concatenate pairs with a new edge when a predicate holds."""
        cities = GraphCollection([
            city("berlin", "de"), city("munich", "de"), city("paris", "fr"),
        ])
        template = GraphTemplate(["A", "B"])
        template.include_graph("A")
        template.include_graph("B")
        template.add_edge("A.c", "B.c", name="same_country")
        joined = compose(template, cities, cities)
        assert len(joined) == 9  # the full product, each edge-connected
        # now select only the structurally-joined pairs in one country
        motif = SimpleMotif()
        motif.add_node("x", tag="city")
        motif.add_node("y", tag="city")
        motif.add_edge("x", "y")
        condition = BinOp(
            "&",
            BinOp("==", ref("x.country"), ref("y.country")),
            BinOp("<", ref("x.name"), ref("y.name")),
        )
        result = select(joined, GroundPattern(motif, condition))
        names = {
            (m.node("x")["name"], m.node("y")["name"]) for m in result
        }
        assert names == {("berlin", "munich")}

    def test_join_by_unification(self):
        """Concatenate by unifying the shared node (Fig. 4.4(b) style)."""
        left = Graph("L")
        left.add_node("hub", key=1)
        left.add_node("l1")
        left.add_edge("hub", "l1")
        right = Graph("R")
        right.add_node("hub", key=1)
        right.add_node("r1")
        right.add_edge("hub", "r1")
        template = GraphTemplate(["A", "B"])
        template.include_graph("A")
        template.include_graph("B")
        template.unify(
            "A.hub", "B.hub",
            where=BinOp("==", ref("A.hub.key"), ref("B.hub.key")),
        )
        (merged,) = compose(
            template,
            GraphCollection([left]),
            GraphCollection([right]),
        )
        assert merged.num_nodes() == 3  # hub unified
        assert merged.num_edges() == 2

    def test_paper_algebraic_form(self):
        """sigma_J(omega_T(sigma_P(DBLP), {C})) built operator by operator."""
        from repro.datasets import tiny_dblp

        dblp = tiny_dblp()
        author_pair = SimpleMotif()
        author_pair.add_node("v1", tag="author")
        author_pair.add_node("v2", tag="author")
        matched = select(dblp, GroundPattern(author_pair, name="P"))
        assert len(matched) == 8  # ordered pairs over both papers

        accumulator = GraphCollection([Graph("C")])
        template = GraphTemplate(["P", "C"])
        template.include_graph("C")
        template.add_copied_node("P.v1")
        template.add_copied_node("P.v2")
        template.add_edge("P.v1", "P.v2")
        composed = compose(template, matched, accumulator)
        assert len(composed) == 8
        # every composed graph carries the new structural edge
        assert all(g.num_edges() == 1 for g in composed)
        # selection over the composed results keeps SIGMOD-only pairs:
        # here all inputs are SIGMOD, so everything survives
        pair = SimpleMotif()
        pair.add_node("x", tag="author")
        pair.add_node("y", tag="author")
        pair.add_edge("x", "y")
        verified = select(composed, GroundPattern(pair))
        assert len(verified) >= 8
