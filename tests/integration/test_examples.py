"""Smoke tests: the shipped examples run end to end.

The two heavyweight examples (PPI motif search, SQL comparison) are
exercised by the benchmarks; here we run the light ones, which double as
executable documentation.
"""

import importlib.util
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "u1->A1" in out
        assert "8 -> 2 (profiles) -> 1 (refined)" in out

    def test_coauthorship(self, capsys):
        out = run_example("coauthorship", capsys)
        assert "authors in co-authorship graph: 4" in out
        assert "co-author edges: 4" in out

    def test_rdf_shipping(self, capsys):
        out = run_example("rdf_shipping", capsys)
        assert "Acme: dept 0 <-> dept 1" in out
        assert "Globex: dept 3 <-> dept 4" in out

    def test_recursive_patterns(self, capsys):
        out = run_example("recursive_patterns", capsys)
        assert "pattern is recursive: True" in out
        assert "path instances" in out

    def test_chemical_search(self, capsys):
        out = run_example("chemical_search", capsys)
        assert "compounds match" in out
        assert "filter kept" in out

    def test_algebra_plans(self, capsys):
        out = run_example("algebra_plans", capsys)
        assert "optimized plan" in out
        assert "naive product size: 400" in out

    def test_social_network(self, capsys):
        out = run_example("social_network", capsys)
        assert "reciprocal follow pairs" in out
        assert "top celebrities" in out
        # rankings are ordered descending
        lines = [l for l in out.splitlines() if "followers" in l]
        counts = [int(l.split(":")[1].split()[0]) for l in lines]
        assert counts == sorted(counts, reverse=True)
