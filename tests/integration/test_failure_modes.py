"""Failure-injection tests: the system fails loudly and precisely.

A database layer must reject malformed inputs with actionable errors
rather than corrupting state or silently returning wrong answers.
"""

import pytest

from repro.core import Graph, GraphCollection, GraphTemplate, GroundPattern
from repro.core.motif import MotifBlock, MotifError, MotifRef, SimpleMotif
from repro.core.template import TemplateError
from repro.lang import (
    GraphQLCompileError,
    GraphQLSyntaxError,
    compile_graph_text,
    compile_pattern_text,
    compile_program,
)
from repro.matching import GraphMatcher, find_matches
from repro.storage import GraphDatabase


class TestLanguageErrors:
    def test_syntax_error_carries_position(self):
        with pytest.raises(GraphQLSyntaxError) as excinfo:
            compile_graph_text("graph G {\n  node v1\n  node v2;\n}")
        assert "line" in str(excinfo.value)

    def test_unknown_motif_reference(self):
        compiled = compile_program("graph G { graph NoSuchThing as X; };")
        with pytest.raises(MotifError):
            compiled.patterns["G"].ground(compiled.grammar)

    def test_pattern_attr_must_be_literal(self):
        with pytest.raises(GraphQLCompileError):
            compile_pattern_text("graph P { node v1 <label=v2.name>; }")

    def test_edge_endpoint_typo(self):
        pattern = compile_pattern_text(
            "graph P { node v1, v2; edge e1 (v1, v3); }"
        )
        with pytest.raises(MotifError):
            pattern.ground()

    def test_flwr_unknown_doc(self):
        db = GraphDatabase()
        with pytest.raises(KeyError):
            db.query('for graph P { node v1; } in doc("missing") '
                     'return graph { node n; };')


class TestPatternEdgeCases:
    def test_empty_pattern_matches_once(self, paper_graph):
        pattern = GroundPattern(SimpleMotif())
        matches = find_matches(pattern, paper_graph)
        assert len(matches) == 1  # the empty mapping
        assert len(matches[0]) == 0

    def test_pattern_larger_than_graph(self):
        graph = Graph()
        graph.add_node("only")
        motif = SimpleMotif()
        for i in range(3):
            motif.add_node(f"u{i}")
        assert find_matches(GroundPattern(motif), graph) == []

    def test_empty_graph(self):
        graph = Graph()
        motif = SimpleMotif()
        motif.add_node("u")
        assert find_matches(GroundPattern(motif), graph) == []
        matcher = GraphMatcher(graph)
        assert matcher.match(GroundPattern(motif)).mappings == []

    def test_pattern_with_contradictory_predicate(self, paper_graph):
        from repro.core.predicate import AttrRef, BinOp, Literal

        motif = SimpleMotif()
        motif.add_node(
            "u",
            predicate=BinOp(
                "&",
                BinOp("==", AttrRef(("label",)), Literal("A")),
                BinOp("==", AttrRef(("label",)), Literal("B")),
            ),
        )
        assert find_matches(GroundPattern(motif), paper_graph) == []


class TestTemplateErrors:
    def test_instantiate_with_wrong_argument_type(self):
        template = GraphTemplate(["P"])
        template.add_copied_node("P.v1")
        graph = Graph()  # has no node v1
        with pytest.raises(TemplateError):
            template.instantiate({"P": graph})

    def test_self_unify_is_noop(self):
        template = GraphTemplate([])
        template.add_node("a")
        template.unify("a", "a")
        result = template.instantiate({})
        assert result.num_nodes() == 1


class TestRecursionSafety:
    def test_unbounded_recursion_is_cut_by_depth(self):
        """A motif with no base case derives nothing instead of hanging."""
        grammar_block = MotifBlock()
        grammar_block.add_member(MotifRef("Loop"), alias="Loop")
        grammar_block.add_node("v")
        from repro.core.motif import GraphGrammar

        grammar = GraphGrammar()
        grammar.define("Loop", grammar_block)
        assert grammar.derive("Loop", max_depth=6) == []

    def test_deep_recursion_bounded(self):
        from repro.core.motif import recursive_path_grammar

        grammar = recursive_path_grammar()
        grounds = grammar.derive("Path", max_depth=30)
        # base case has 2 nodes; each unrolling adds one node
        assert max(g.num_nodes() for g in grounds) <= 32


class TestCollectionRobustness:
    def test_select_on_empty_collection(self):
        from repro.core import select

        motif = SimpleMotif()
        motif.add_node("u")
        assert len(select(GraphCollection(), GroundPattern(motif))) == 0

    def test_matched_graphs_do_not_alias_state(self, paper_graph):
        from repro.core import select

        motif = SimpleMotif()
        motif.add_node("u", attrs={"label": "A"})
        result = select(GraphCollection([paper_graph]), GroundPattern(motif))
        matched = list(result)
        assert matched[0].mapping is not matched[1].mapping
        assert matched[0].mapping != matched[1].mapping
