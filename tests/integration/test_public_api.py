"""The public API surface: exports exist and the README quickstart runs."""

import repro


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_resolves(self):
        import repro.core
        import repro.datalog
        import repro.datasets
        import repro.index
        import repro.lang
        import repro.matching
        import repro.sqlbaseline
        import repro.storage

        for module in (repro.core, repro.datalog, repro.datasets, repro.index,
                       repro.lang, repro.matching, repro.sqlbaseline,
                       repro.storage):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version(self):
        assert repro.__version__


class TestReadmeQuickstart:
    def test_quickstart_block(self):
        from repro import GraphDatabase
        from repro.core import Graph

        g = Graph("G")
        for nid, label in [("A1", "A"), ("B1", "B"), ("C2", "C")]:
            g.add_node(nid, label=label)
        g.add_edge("A1", "B1")
        g.add_edge("B1", "C2")
        g.add_edge("C2", "A1")

        db = GraphDatabase()
        db.register("net", g)

        reports = db.match("net", """
            graph P {
                node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
                edge e1 (u1, u2); edge e2 (u2, u3); edge e3 (u3, u1);
            }
        """)
        assert len(reports["G"].mappings) == 1
        assert reports["G"].mappings[0].nodes == {
            "u1": "A1", "u2": "B1", "u3": "C2",
        }

        env = db.query("""
            graph Q { node a <label="A">; node b <label="B">; edge e (a, b); };
            for Q exhaustive in doc("net")
            return graph { node n <left=Q.a.label, right=Q.b.label>; };
        """)
        assert len(env["__result__"]) == 1

    def test_package_docstring_quickstart(self):
        """The snippet in repro/__init__'s docstring works as written."""
        from repro import GraphDatabase
        from repro.datasets import tiny_dblp

        db = GraphDatabase()
        db.register("DBLP", tiny_dblp())
        env = db.query('''
            graph P { node v1 <author>; node v2 <author>; };
            for P exhaustive in doc("DBLP")
            return graph { node v1 <name=P.v1.name>; node v2 <name=P.v2.name>;
                           edge e1 (v1, v2); };
        ''')
        assert len(env["__result__"]) == 8
