"""4-shard scatter-gather soak with a mid-run SIGKILL.

Acceptance criteria from the cluster issue: a 4-shard fan-out keeps
answering after one shard is SIGKILLed mid-soak — every reply turns
PARTIAL with exact per-shard accounting (``submitted == merged +
failed``), the dead shard is named, and nothing hangs.

Real subprocesses, real SIGKILL, real TCP: this is the test that fails
if the coordinator can deadlock on a half-open connection.
"""

import time

import pytest

from repro.cluster import launch_cluster
from repro.cluster.smoke import SMOKE_QUERY, run_smoke
from repro.datasets.molecules import molecule_collection
from repro.runtime import Outcome

SHARDS = 4


@pytest.fixture(scope="module")
def cluster():
    booted = launch_cluster(
        molecule_collection(num_molecules=48, seed=23),
        num_shards=SHARDS, workers=2, query_timeout=8.0)
    try:
        yield booted
    finally:
        booted.shutdown()


def test_soak_survives_a_sigkill_with_exact_accounting(cluster):
    report = run_smoke(shards=SHARDS, queries=24, kill=True,
                       cluster=cluster)
    assert report["problems"] == []
    assert report["ok"] is True
    # both phases actually ran and produced only the expected statuses
    assert set(report["phases"]["healthy"]) <= {"COMPLETE", "TRUNCATED"}
    assert set(report["phases"]["degraded"]) == {"PARTIAL"}
    assert sum(report["phases"]["degraded"].values()) == 12


def test_partial_replies_after_the_kill_name_the_dead_shard(cluster):
    victim = report_victim(cluster)
    coordinator = cluster.coordinator(timeout=8.0, result_cache_size=0,
                                      breaker_threshold=0)
    deadline = time.monotonic() + 30.0
    reply = coordinator.query(SMOKE_QUERY, limit=500)
    while time.monotonic() < deadline:
        if reply.outcome.status is Outcome.PARTIAL:
            break
        reply = coordinator.query(SMOKE_QUERY, limit=500)
    assert reply.outcome.status is Outcome.PARTIAL
    detail = reply.outcome.detail
    assert detail["submitted"] == SHARDS
    assert detail["submitted"] == detail["merged"] + detail["failed"]
    dead = detail["shards"][victim]
    assert dead["merged"] is False and dead.get("error")
    # the survivors' rows are present and tagged with their shard
    live_shards = {row["shard"] for row in reply.results}
    assert victim not in live_shards
    assert len(live_shards) == detail["merged"]


def report_victim(cluster) -> str:
    """The shard the module's smoke run killed."""
    dead = [sid for sid, sp in cluster.shards.items() if not sp.alive]
    assert len(dead) == 1
    return dead[0]


def test_replicated_soak_absorbs_a_sigkill_with_zero_partials():
    # R=2 + supervision: the same drill, but the kill must be invisible
    # (no PARTIAL replies) and the victim must return before teardown
    report = run_smoke(shards=3, queries=16, kill=True, replication=2)
    assert report["problems"] == []
    assert report["ok"] is True
    assert report["replication"] == 2 and report["supervised"]
    # every degraded-phase reply merged all slices via replicas
    assert set(report["phases"]["degraded"]) <= {"COMPLETE", "TRUNCATED"}
    assert "PARTIAL" not in report["phases"]["degraded"]
    assert report["coordinator"]["counters"]["failovers"] >= 1
    recovery = report["recovery"]
    assert recovery["restarted"] is True
    assert recovery["primary_serving_again"] is True
    assert recovery["supervisor"]["restarts"] >= 1


def test_no_fanout_hangs_past_its_deadline(cluster):
    # one shard is already dead (module fixture order): the fan-out must
    # come back within timeout + merge slack, never hang on the corpse
    coordinator = cluster.coordinator(timeout=2.0, result_cache_size=0)
    started = time.monotonic()
    reply = coordinator.query(SMOKE_QUERY, limit=100)
    elapsed = time.monotonic() - started
    assert elapsed < 6.0
    assert reply.submitted == reply.merged + reply.failed
