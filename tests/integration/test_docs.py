"""Documentation stays executable: GraphQL blocks in docs must parse."""

import re
from pathlib import Path

import pytest

from repro.lang import parse_program

DOCS = Path(__file__).resolve().parents[2] / "docs"


def graphql_blocks(path: Path):
    text = path.read_text(encoding="utf-8")
    for block in re.findall(r"```\n(.*?)```", text, re.S):
        if "graph" in block:
            yield block


@pytest.mark.parametrize("doc", ["language.md"])
def test_doc_code_blocks_parse(doc):
    blocks = list(graphql_blocks(DOCS / doc))
    assert blocks, f"{doc} lost its examples?"
    for block in blocks:
        parse_program(block)  # raises on syntax regressions


def test_readme_quickstart_pattern_parses():
    readme = (DOCS.parent / "README.md").read_text(encoding="utf-8")
    snippets = re.findall(r'"""\s*(graph.*?)"""', readme, re.S)
    for snippet in snippets:
        parse_program(snippet)
