"""Integration tests reproducing the paper's worked examples end-to-end."""

from repro.core import DictSource, Graph
from repro.lang import compile_pattern_text
from repro.matching import (
    GraphMatcher,
    MatchOptions,
    optimized_options,
    refine_search_space,
    retrieve_feasible_mates,
)


class TestSection1Examples:
    def test_rdf_shipping_example(self):
        """Intro example: two departments of a company share a shipper."""
        g = Graph("rdf", directed=True)
        g.add_node("d1", tag="department", company="Acme")
        g.add_node("d2", tag="department", company="Acme")
        g.add_node("d3", tag="department", company="Other")
        g.add_node("s1", tag="shipper")
        g.add_node("s2", tag="shipper")
        g.add_edge("d1", "s1", kind="shipping")
        g.add_edge("d2", "s1", kind="shipping")
        g.add_edge("d3", "s2", kind="shipping")
        pattern = compile_pattern_text("""
            graph P {
                node u1 <department>;
                node u2 <department>;
                node s <shipper>;
                edge e1 (u1, s) where kind="shipping";
                edge e2 (u2, s) where kind="shipping";
            } where u1.company = u2.company
        """)
        matcher = GraphMatcher(g)
        report = matcher.match_pattern(pattern, optimized_options())
        pairs = {
            frozenset((m.nodes["u1"], m.nodes["u2"])) for m in report.mappings
        }
        assert pairs == {frozenset(("d1", "d2"))}

    def test_heterocyclic_compound_example(self):
        """Intro example: an aromatic ring with a side chain."""
        from repro.core.motif import cycle_motif

        benzene = Graph("molecule")
        for i in range(6):
            benzene.add_node(f"c{i}", label="C")
        for i in range(6):
            benzene.add_edge(f"c{i}", f"c{(i + 1) % 6}")
        benzene.add_node("o1", label="O")  # the side chain
        benzene.add_edge("c0", "o1")
        ring = cycle_motif(6)
        from repro.core import GroundPattern

        pattern = GroundPattern(ring)
        matcher = GraphMatcher(benzene)
        report = matcher.match(pattern, MatchOptions(limit=1))
        assert report.mappings


class TestSection4Examples:
    def test_fig_4_17_search_spaces(self, paper_graph, triangle_pattern):
        """All three retrieval strategies give the exact Fig. 4.17 spaces."""
        by_nodes = retrieve_feasible_mates(triangle_pattern, paper_graph,
                                           local="none")
        by_profiles = retrieve_feasible_mates(triangle_pattern, paper_graph,
                                              local="profile")
        by_subgraphs = retrieve_feasible_mates(triangle_pattern, paper_graph,
                                               local="subgraph")
        assert by_nodes == {"u1": ["A1", "A2"], "u2": ["B1", "B2"],
                            "u3": ["C1", "C2"]}
        assert by_profiles == {"u1": ["A1"], "u2": ["B1", "B2"], "u3": ["C2"]}
        assert by_subgraphs == {"u1": ["A1"], "u2": ["B1"], "u3": ["C2"]}

    def test_fig_4_18_refinement(self, paper_graph, triangle_pattern):
        space = retrieve_feasible_mates(triangle_pattern, paper_graph,
                                        local="none")
        refined = refine_search_space(triangle_pattern.motif, paper_graph,
                                      space, level=2)
        assert refined == {"u1": ["A1"], "u2": ["B1"], "u3": ["C2"]}

    def test_section_4_4_order_choice(self, paper_graph, triangle_pattern):
        """On the {A1} x {B1,B2} x {C2} space, (A ⋈ C) ⋈ B wins."""
        matcher = GraphMatcher(paper_graph)
        report = matcher.match(
            triangle_pattern,
            MatchOptions(local="profile", refine=False, optimize_order=True,
                         gamma_mode="constant"),
        )
        assert report.order == ["u1", "u3", "u2"]


class TestFig413Trace:
    def test_intermediate_states(self):
        """Replay the four iterations of Fig. 4.13, checking each state."""
        from repro.core import GraphTemplate
        from repro.core.predicate import AttrRef, BinOp
        from repro.datasets import tiny_dblp

        def ref(path):
            return AttrRef(tuple(path.split(".")))

        # the four ordered author pairs the paper picks
        pairs = [("A", "B"), ("C", "D"), ("C", "A"), ("D", "A")]
        source = DictSource({"DBLP": tiny_dblp()})
        template = GraphTemplate(["C", "P"])
        template.include_graph("C")
        template.add_copied_node("P.v1")
        template.add_copied_node("P.v2")
        template.add_edge("P.v1", "P.v2")
        template.unify("P.v1", "C.v1",
                       where=BinOp("==", ref("P.v1.name"), ref("C.v1.name")))
        template.unify("P.v2", "C.v2",
                       where=BinOp("==", ref("P.v2.name"), ref("C.v2.name")))
        # drive the accumulation manually with the paper's binding order
        from repro.core import GroundPattern, Mapping, MatchedGraph
        from repro.core.motif import SimpleMotif

        motif = SimpleMotif()
        motif.add_node("v1", tag="author")
        motif.add_node("v2", tag="author")
        pattern = GroundPattern(motif, name="P")
        dblp = tiny_dblp()
        bindings = [
            MatchedGraph(Mapping({"v1": "v1", "v2": "v2"}), pattern, dblp[0]),
            MatchedGraph(Mapping({"v1": "v1", "v2": "v2"}), pattern, dblp[1]),
            MatchedGraph(Mapping({"v1": "v1", "v2": "v3"}), pattern, dblp[1]),
            MatchedGraph(Mapping({"v1": "v2", "v2": "v3"}), pattern, dblp[1]),
        ]
        expected_nodes = [2, 4, 4, 4]
        expected_edges = [1, 2, 3, 4]
        accumulator = Graph("C")
        for binding, n_nodes, n_edges in zip(bindings, expected_nodes,
                                             expected_edges):
            accumulator = template.instantiate({"C": accumulator, "P": binding})
            assert accumulator.num_nodes() == n_nodes
            assert accumulator.num_edges() == n_edges
        names = sorted(n["name"] for n in accumulator.nodes())
        assert names == ["A", "B", "C", "D"]


class TestProteinMotifExample:
    def test_functional_conservation_query(self):
        """Intro example: a GO-labeled complex queried in another species."""
        species_a = Graph("speciesA")
        for nid, term in [("p1", "GO:1"), ("p2", "GO:2"), ("p3", "GO:3")]:
            species_a.add_node(nid, label=term)
        species_a.add_edge("p1", "p2")
        species_a.add_edge("p2", "p3")
        species_a.add_edge("p3", "p1")
        # the same complex exists in species B with different protein names
        species_b = Graph("speciesB")
        for nid, term in [("q9", "GO:1"), ("q7", "GO:2"), ("q5", "GO:3"),
                          ("q1", "GO:9")]:
            species_b.add_node(nid, label=term)
        species_b.add_edge("q9", "q7")
        species_b.add_edge("q7", "q5")
        species_b.add_edge("q5", "q9")
        species_b.add_edge("q1", "q9")
        from repro.core import GroundPattern
        from repro.core.motif import SimpleMotif

        complex_query = SimpleMotif.from_graph(species_a)
        matcher = GraphMatcher(species_b)
        report = matcher.match(GroundPattern(complex_query),
                               optimized_options())
        assert len(report.mappings) == 1
        assert report.mappings[0].nodes["p1"] == "q9"
