"""Integration tests for the repro-gql command line."""

import pytest

from repro.cli import main
from repro.datasets import tiny_dblp
from repro.storage import save_collection


@pytest.fixture
def dblp_file(tmp_path):
    path = tmp_path / "dblp.gql"
    save_collection(tiny_dblp(), path)
    return str(path)


@pytest.fixture
def triangle_file(tmp_path, paper_graph):
    from repro.core import GraphCollection
    from repro.storage import save_collection as save

    path = tmp_path / "net.gql"
    save(GraphCollection([paper_graph]), path)
    return str(path)


class TestInfo:
    def test_summarizes(self, dblp_file, capsys):
        assert main(["info", dblp_file]) == 0
        out = capsys.readouterr().out
        assert "2 graph(s)" in out
        assert "G1" in out and "G2" in out

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent/x.gql"]) == 2
        assert "error" in capsys.readouterr().err


class TestMatch:
    def test_matches_pattern(self, triangle_file, tmp_path, capsys):
        pattern = tmp_path / "q.gql"
        pattern.write_text("""
            graph P {
                node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
                edge e1 (u1, u2); edge e2 (u2, u3); edge e3 (u3, u1);
            }
        """)
        assert main(["match", triangle_file, "--pattern", str(pattern)]) == 0
        out = capsys.readouterr().out
        assert "total: 1 mapping(s)" in out
        assert "u1->A1" in out

    def test_baseline_flag(self, triangle_file, tmp_path, capsys):
        pattern = tmp_path / "q.gql"
        pattern.write_text('graph P { node u <label="B">; }')
        assert main(["match", triangle_file, "--pattern", str(pattern),
                     "--baseline"]) == 0
        assert "total: 2 mapping(s)" in capsys.readouterr().out

    def test_bad_pattern(self, triangle_file, tmp_path, capsys):
        pattern = tmp_path / "q.gql"
        pattern.write_text("graph P { node ;;; }")
        assert main(["match", triangle_file, "--pattern", str(pattern)]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_coauthorship_program(self, dblp_file, tmp_path, capsys):
        program = tmp_path / "prog.gql"
        program.write_text("""
            graph P { node v1 <author>; node v2 <author>; };
            C := graph {};
            for P exhaustive in doc("DBLP")
            let C := graph {
              graph C;
              node P.v1, P.v2;
              edge e1 (P.v1, P.v2);
              unify P.v1, C.v1 where P.v1.name=C.v1.name;
              unify P.v2, C.v2 where P.v2.name=C.v2.name;
            }
        """)
        out_file = tmp_path / "result.gql"
        assert main(["run", str(program), "--doc", f"DBLP={dblp_file}",
                     "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert text.count("node") == 4
        assert text.count("edge") == 4

    def test_return_mode_prints_collection(self, dblp_file, tmp_path, capsys):
        program = tmp_path / "prog.gql"
        program.write_text("""
            graph P { node v1 <author>; };
            for P exhaustive in doc("DBLP")
            return graph { node n <who=P.v1.name>; };
        """)
        assert main(["run", str(program), "--doc", f"DBLP={dblp_file}"]) == 0
        out = capsys.readouterr().out
        assert "5 graph(s)" in out

    def test_bad_doc_binding(self, tmp_path, capsys):
        program = tmp_path / "prog.gql"
        program.write_text("C := graph {};")
        assert main(["run", str(program), "--doc", "nopath"]) == 2


class TestExplainFlag:
    def test_explain_prints_plan(self, triangle_file, tmp_path, capsys):
        pattern = tmp_path / "q.gql"
        pattern.write_text("""
            graph P {
                node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
                edge e1 (u1, u2); edge e2 (u2, u3); edge e3 (u3, u1);
            }
        """)
        assert main(["match", triangle_file, "--pattern", str(pattern),
                     "--explain"]) == 0
        out = capsys.readouterr().out
        assert "search order" in out
        assert "Algorithm 4.2" in out
        assert "Mapping(" not in out  # no search was run


@pytest.fixture
def dense_file(tmp_path):
    """A one-label dense graph: clique search on it is expensive."""
    from repro.core import GraphCollection
    from repro.datasets.random_graphs import erdos_renyi_graph
    from repro.storage import save_collection as save

    graph = erdos_renyi_graph(80, 1500, num_labels=1, seed=2, name="dense")
    path = tmp_path / "dense.gql"
    save(GraphCollection([graph]), path)
    return str(path)


@pytest.fixture
def clique8_file(tmp_path):
    names = [f"u{i}" for i in range(8)]
    lines = ["graph clique8 {"]
    for name in names:
        lines.append(f'  node {name} <label="L000">;')
    count = 0
    for i in range(8):
        for j in range(i + 1, 8):
            count += 1
            lines.append(f"  edge e{count} ({names[i]}, {names[j]});")
    lines.append("};")
    path = tmp_path / "clique8.gql"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestGovernance:
    def test_timeout_exits_3_with_outcome(self, dense_file, clique8_file,
                                          capsys):
        code = main(["match", dense_file, "--pattern", clique8_file,
                     "--baseline", "--timeout", "0.1"])
        assert code == 3
        out = capsys.readouterr().out
        assert "TIMED_OUT" in out
        assert "deadline" in out

    def test_max_steps_truncates_exit_0(self, dense_file, clique8_file,
                                        capsys):
        code = main(["match", dense_file, "--pattern", clique8_file,
                     "--baseline", "--max-steps", "5000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TRUNCATED" in out
        assert "step budget" in out

    def test_limit_enforced_inside_search(self, dense_file, tmp_path,
                                          capsys):
        pattern = tmp_path / "one.gql"
        pattern.write_text('graph P { node u <label="L000">; }')
        code = main(["match", dense_file, "--pattern", str(pattern),
                     "--limit", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total: 3 mapping(s)" in out
        assert "TRUNCATED" in out  # the cap stopped the search early

    def test_uncapped_match_reports_complete(self, triangle_file, tmp_path,
                                             capsys):
        pattern = tmp_path / "q.gql"
        pattern.write_text("""
            graph P {
                node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
                edge e1 (u1, u2); edge e2 (u2, u3); edge e3 (u3, u1);
            }
        """)
        assert main(["match", triangle_file, "--pattern", str(pattern)]) == 0
        assert "COMPLETE" in capsys.readouterr().out

    def test_run_with_timeout_flag(self, dblp_file, tmp_path, capsys):
        program = tmp_path / "prog.gql"
        program.write_text("""
            graph P { node v1 <author>; };
            for P exhaustive in doc("DBLP")
            return graph { node n <who=P.v1.name>; };
        """)
        assert main(["run", str(program), "--doc", f"DBLP={dblp_file}",
                     "--timeout", "30"]) == 0


class TestStress:
    def test_histogram_printed(self, capsys):
        code = main(["stress", "--seed", "1", "--nodes", "60",
                     "--queries", "4", "--size", "3", "--timeout", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "histogram:" in out
        assert "COMPLETE=" in out
        assert out.count("q0") == 4  # one line per query

    def test_seed_controls_generation(self, capsys):
        main(["stress", "--seed", "5", "--nodes", "50", "--queries", "2",
              "--size", "3", "--timeout", "30"])
        first = capsys.readouterr().out.splitlines()[0]
        main(["stress", "--seed", "5", "--nodes", "50", "--queries", "2",
              "--size", "3", "--timeout", "30"])
        second = capsys.readouterr().out.splitlines()[0]
        assert first == second  # the graph line is seed-deterministic


class TestClusterStatus:
    def test_status_reads_the_state_file_and_probes_shards(
            self, tmp_path, capsys):
        from repro.cluster import launch_cluster
        from repro.datasets.molecules import molecule_collection

        state = tmp_path / "cluster.json"
        with launch_cluster(molecule_collection(num_molecules=8, seed=3),
                            num_shards=2) as cluster:
            cluster.write_state(state)
            assert main(["cluster", "status", "--state", str(state)]) == 0
            out = capsys.readouterr().out
            assert "shard0" in out and "shard1" in out
            assert out.count("ready") >= 2
            assert "restarts=0" in out
            assert "map v1" in out
            # kill one shard: status degrades and the exit code says so
            cluster.kill("shard1")
            cluster.write_state(state)
            assert main(["cluster", "status", "--state", str(state)]) == 1
            out = capsys.readouterr().out
            assert "DEAD" in out

    def test_status_json_carries_the_merged_view(self, tmp_path, capsys):
        import json as json_mod

        from repro.cluster import launch_cluster
        from repro.datasets.molecules import molecule_collection

        state = tmp_path / "cluster.json"
        with launch_cluster(molecule_collection(num_molecules=8, seed=3),
                            num_shards=1) as cluster:
            cluster.write_state(state)
            assert main(["cluster", "status", "--state", str(state),
                         "--json"]) == 0
            merged = json_mod.loads(capsys.readouterr().out)
            assert merged["ok"] is True
            assert merged["map_version"] == 1
            assert merged["shards"][0]["shard"] == "shard0"
            assert merged["shards"][0]["breakers"] is not None
