"""Integration tests for the repro-gql command line."""

import pytest

from repro.cli import main
from repro.datasets import tiny_dblp
from repro.storage import save_collection


@pytest.fixture
def dblp_file(tmp_path):
    path = tmp_path / "dblp.gql"
    save_collection(tiny_dblp(), path)
    return str(path)


@pytest.fixture
def triangle_file(tmp_path, paper_graph):
    from repro.core import GraphCollection
    from repro.storage import save_collection as save

    path = tmp_path / "net.gql"
    save(GraphCollection([paper_graph]), path)
    return str(path)


class TestInfo:
    def test_summarizes(self, dblp_file, capsys):
        assert main(["info", dblp_file]) == 0
        out = capsys.readouterr().out
        assert "2 graph(s)" in out
        assert "G1" in out and "G2" in out

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent/x.gql"]) == 2
        assert "error" in capsys.readouterr().err


class TestMatch:
    def test_matches_pattern(self, triangle_file, tmp_path, capsys):
        pattern = tmp_path / "q.gql"
        pattern.write_text("""
            graph P {
                node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
                edge e1 (u1, u2); edge e2 (u2, u3); edge e3 (u3, u1);
            }
        """)
        assert main(["match", triangle_file, "--pattern", str(pattern)]) == 0
        out = capsys.readouterr().out
        assert "total: 1 mapping(s)" in out
        assert "u1->A1" in out

    def test_baseline_flag(self, triangle_file, tmp_path, capsys):
        pattern = tmp_path / "q.gql"
        pattern.write_text('graph P { node u <label="B">; }')
        assert main(["match", triangle_file, "--pattern", str(pattern),
                     "--baseline"]) == 0
        assert "total: 2 mapping(s)" in capsys.readouterr().out

    def test_bad_pattern(self, triangle_file, tmp_path, capsys):
        pattern = tmp_path / "q.gql"
        pattern.write_text("graph P { node ;;; }")
        assert main(["match", triangle_file, "--pattern", str(pattern)]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_coauthorship_program(self, dblp_file, tmp_path, capsys):
        program = tmp_path / "prog.gql"
        program.write_text("""
            graph P { node v1 <author>; node v2 <author>; };
            C := graph {};
            for P exhaustive in doc("DBLP")
            let C := graph {
              graph C;
              node P.v1, P.v2;
              edge e1 (P.v1, P.v2);
              unify P.v1, C.v1 where P.v1.name=C.v1.name;
              unify P.v2, C.v2 where P.v2.name=C.v2.name;
            }
        """)
        out_file = tmp_path / "result.gql"
        assert main(["run", str(program), "--doc", f"DBLP={dblp_file}",
                     "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert text.count("node") == 4
        assert text.count("edge") == 4

    def test_return_mode_prints_collection(self, dblp_file, tmp_path, capsys):
        program = tmp_path / "prog.gql"
        program.write_text("""
            graph P { node v1 <author>; };
            for P exhaustive in doc("DBLP")
            return graph { node n <who=P.v1.name>; };
        """)
        assert main(["run", str(program), "--doc", f"DBLP={dblp_file}"]) == 0
        out = capsys.readouterr().out
        assert "5 graph(s)" in out

    def test_bad_doc_binding(self, tmp_path, capsys):
        program = tmp_path / "prog.gql"
        program.write_text("C := graph {};")
        assert main(["run", str(program), "--doc", "nopath"]) == 2


class TestExplainFlag:
    def test_explain_prints_plan(self, triangle_file, tmp_path, capsys):
        pattern = tmp_path / "q.gql"
        pattern.write_text("""
            graph P {
                node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
                edge e1 (u1, u2); edge e2 (u2, u3); edge e3 (u3, u1);
            }
        """)
        assert main(["match", triangle_file, "--pattern", str(pattern),
                     "--explain"]) == 0
        out = capsys.readouterr().out
        assert "search order" in out
        assert "Algorithm 4.2" in out
        assert "Mapping(" not in out  # no search was run
