"""Wire-level integration: QueryServer + ServiceClient over loopback.

The server runs in a background thread of this process (no subprocess),
which keeps the tests fast while still exercising real TCP sockets,
the ndjson protocol, cross-connection cancellation and graceful drain.
"""

import threading
import time

import pytest

from repro.core import Graph
from repro.datasets.random_graphs import erdos_renyi_graph
from repro.runtime import Outcome
from repro.service import QueryServer, QueryService, ServiceClient, ServiceConfig
from repro.service.protocol import ProtocolError
from repro.service.server import probe

FAST_QUERY = ('graph P { node u1 <label="L001">; node u2 <label="L002">; '
              'edge e1 (u1, u2); }')
HEAVY_QUERY = ("graph P { "
               + " ".join(f'node u{i} <label="CORE">;' for i in range(7))
               + " ".join(f' edge e{i} (u{i}, u{i + 1});' for i in range(6))
               + " }")


def build_document() -> Graph:
    graph = erdos_renyi_graph(200, 600, num_labels=5, seed=3, name="wire")
    core = [f"core{i}" for i in range(20)]
    for node_id in core:
        graph.add_node(node_id, label="CORE")
    for i, a in enumerate(core):
        for b in core[i + 1:]:
            graph.add_edge(a, b)
    return graph


@pytest.fixture()
def server():
    service = QueryService(ServiceConfig(
        workers=2, queue_depth=16, per_client=16,
        default_timeout=10.0, default_max_results=None))
    service.register("data", build_document())
    srv = QueryServer(service, ("127.0.0.1", 0))
    thread = threading.Thread(target=srv.serve_until_shutdown, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown_gracefully(drain_timeout=2.0)
        thread.join(timeout=10)


def connect(server, name="test"):
    host, port = server.address
    return ServiceClient(host, port, timeout=30.0, client_name=name)


class TestWireProtocol:
    def test_ping_reports_version_and_drain_state(self, server):
        with connect(server) as client:
            reply = client.ping()
            assert reply["version"] == 1
            assert reply["draining"] is False

    def test_query_round_trip_carries_outcome(self, server):
        with connect(server) as client:
            reply = client.query(FAST_QUERY, limit=20)
            assert reply.ok
            assert reply.error is None
            assert reply.outcome.status is Outcome.COMPLETE
            assert 0 < len(reply.results) <= 20
            for row in reply.results:
                assert set(row) == {"graph", "nodes", "edges"}

    def test_repeat_query_is_a_cache_hit_over_the_wire(self, server):
        with connect(server) as client:
            cold = client.query(FAST_QUERY, limit=20)
            warm = client.query(FAST_QUERY, limit=20)
            assert cold.cache == "miss"
            assert warm.cache == "hit"
            assert warm.results == cold.results

    def test_malformed_line_yields_error_not_disconnect(self, server):
        with connect(server) as client:
            client.connect()
            client._sock.sendall(b"this is not json\n")
            reply_line = client._reader.readline()
            assert b'"ok": false' in reply_line or b'"ok":false' in reply_line
            # the connection survives and still serves queries
            assert client.ping()["ok"]

    def test_unknown_op_is_rejected(self, server):
        with connect(server) as client:
            reply = client.call({"op": "explode"})
            assert reply["ok"] is False
            assert "op" in reply["error"]

    def test_bad_query_text_is_rejected_at_admission(self, server):
        # static analysis refuses the query before any worker runs; the
        # reply is structured (REJECTED + diagnostics), not an error
        with connect(server) as client:
            reply = client.query("graph P { node broken")
            assert reply.outcome.status is Outcome.REJECTED
            assert reply.outcome.reason == "invalid_query"
            diagnostics = reply.outcome.detail["diagnostics"]
            assert diagnostics and diagnostics[0]["severity"] == "error"

    def test_oversized_line_errors_and_closes_the_connection(self, server):
        """A line past the cap cannot be resynced: the tail must not be
        parsed as spurious requests, so the server replies and hangs up."""
        from repro.service.protocol import MAX_LINE_BYTES

        with connect(server) as client:
            client.connect()
            client._sock.sendall(b"x" * (MAX_LINE_BYTES + 10) + b"\n")
            reply_line = client._reader.readline()
            assert (b'"ok": false' in reply_line
                    or b'"ok":false' in reply_line)
            assert b"size limit" in reply_line
            # no second (spurious) response: the server closed the session
            assert client._reader.readline() == b""
        # the server itself survives for other connections
        with connect(server) as fresh:
            assert fresh.ping()["ok"]

    def test_stats_expose_service_counters(self, server):
        with connect(server) as client:
            client.query(FAST_QUERY, limit=5)
            stats = client.stats()
            assert stats["submitted"] >= 1
            assert stats["admitted"] + stats["rejected"] == stats["submitted"]
            assert "latency" in stats


class TestOversizedResponse:
    def test_degraded_envelope_keeps_the_outcome(self):
        """A response past the line limit loses its rows, not the session."""
        from repro.service.server import _without_results

        response = {"id": "q1", "op": "query", "request_id": "q1",
                    "client": "c", "outcome": {"status": "CANCELLED"},
                    "cache": "bypass", "elapsed": 1.0, "ok": True,
                    "results": [{"graph": "g"}] * 100}
        slim = _without_results(response, "exceeds the line limit")
        assert slim["ok"] is False
        assert slim["results"] == []
        assert slim["outcome"]["status"] == "CANCELLED"
        assert "exceeds the line limit" in slim["error"]


class TestCrossConnectionCancel:
    def test_cancel_from_a_second_connection(self, server):
        bucket = {}

        def run_heavy():
            with connect(server, "victim") as client:
                bucket["reply"] = client.query(
                    HEAVY_QUERY, request_id="heavy-1",
                    timeout=30.0, no_cache=True)

        worker = threading.Thread(target=run_heavy)
        worker.start()
        try:
            with connect(server, "controller") as control:
                cancelled = False
                deadline = time.time() + 5
                while time.time() < deadline and not cancelled:
                    time.sleep(0.1)
                    cancelled = control.cancel("heavy-1", "operator abort")
                assert cancelled, "cancel never found the in-flight query"
        finally:
            worker.join(timeout=30)
        reply = bucket["reply"]
        assert reply.outcome.status is Outcome.CANCELLED
        assert "operator abort" in reply.outcome.reason

    def test_cancel_unknown_target_returns_false(self, server):
        with connect(server) as client:
            assert client.cancel("no-such-request") is False


class TestGracefulDrain:
    def test_sigterm_style_drain_refuses_new_connections(self):
        service = QueryService(ServiceConfig(workers=2, default_timeout=5.0))
        service.register("data", build_document())
        srv = QueryServer(service, ("127.0.0.1", 0))
        thread = threading.Thread(target=srv.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        host, port = srv.address
        with ServiceClient(host, port) as client:
            assert client.query(FAST_QUERY, limit=5).ok
        assert probe(host, port)

        clean = srv.shutdown_gracefully(drain_timeout=2.0)
        thread.join(timeout=10)
        assert clean
        assert not probe(host, port), "socket still accepting after drain"
        with pytest.raises((ConnectionError, OSError)):
            ServiceClient(host, port, timeout=0.5).connect()

    def test_drain_cancels_queries_past_the_deadline(self):
        service = QueryService(ServiceConfig(
            workers=1, default_timeout=60.0, default_max_results=None))
        service.register("data", build_document())
        srv = QueryServer(service, ("127.0.0.1", 0))
        thread = threading.Thread(target=srv.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        host, port = srv.address
        bucket = {}

        def run_heavy():
            with ServiceClient(host, port, timeout=60.0) as client:
                try:
                    bucket["reply"] = client.query(
                        HEAVY_QUERY, timeout=60.0, no_cache=True)
                except (ConnectionError, ProtocolError, OSError) as exc:
                    bucket["error"] = exc

        worker = threading.Thread(target=run_heavy)
        worker.start()
        time.sleep(0.3)  # let the heavy query get in flight

        clean = srv.shutdown_gracefully(drain_timeout=0.3)
        thread.join(timeout=10)
        worker.join(timeout=30)
        assert not clean  # the straggler had to be cancelled
        reply = bucket.get("reply")
        if reply is not None:  # the response may race the socket teardown
            assert reply.outcome.status is Outcome.CANCELLED
