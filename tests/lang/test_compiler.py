"""Unit tests for AST → core lowering."""

import pytest

from repro.core import DictSource, Graph, GraphCollection
from repro.lang import (
    GraphQLCompileError,
    compile_graph_text,
    compile_pattern_text,
    compile_program,
)
from repro.matching import find_matches


class TestDataGraphs:
    def test_fig_4_7(self):
        graph = compile_graph_text("""
            graph G <inproceedings> {
                node v1 <title="Title1", year=2006>;
                node v2 <author name="A">;
                node v3 <author name="B">;
            }
        """)
        assert graph.name == "G"
        assert graph.tuple.tag == "inproceedings"
        assert graph.node("v1")["year"] == 2006
        assert graph.node("v2").tag == "author"
        assert graph.num_edges() == 0

    def test_edges_with_attrs(self):
        graph = compile_graph_text("""
            graph G { node a, b; edge e1 (a, b) <weight=3>; }
        """)
        assert graph.edge("e1")["weight"] == 3

    def test_where_rejected_in_data_graph(self):
        with pytest.raises(GraphQLCompileError):
            compile_graph_text('graph G { node v1; } where v1.x = 1')

    def test_predicate_node_rejected(self):
        with pytest.raises(GraphQLCompileError):
            compile_graph_text('graph G { node v1 where x = 1; }')


class TestPatterns:
    def test_fig_4_8_pattern_both_styles_equivalent(self, paper_graph):
        outer = compile_pattern_text("""
            graph P { node v1; node v2; }
            where v1.label="A" & v2.label="B"
        """)
        inner = compile_pattern_text("""
            graph P { node v1 where label="A"; node v2 where label="B"; }
        """)
        outer_matches = find_matches(outer.single(), paper_graph)
        inner_matches = find_matches(inner.single(), paper_graph)
        assert {frozenset(m.nodes.items()) for m in outer_matches} == {
            frozenset(m.nodes.items()) for m in inner_matches
        }
        assert len(outer_matches) == 4  # 2 As x 2 Bs, no edges required

    def test_triangle_pattern_text(self, paper_graph):
        pattern = compile_pattern_text("""
            graph P {
                node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
                edge e1 (u1, u2); edge e2 (u2, u3); edge e3 (u3, u1);
            }
        """)
        matches = find_matches(pattern.single(), paper_graph)
        assert len(matches) == 1
        assert matches[0].nodes == {"u1": "A1", "u2": "B1", "u3": "C2"}

    def test_disjunction_pattern(self, paper_graph):
        pattern = compile_pattern_text("""
            graph P { node u <label="A">; } | { node u <label="C">; }
        """)
        grounds = pattern.ground()
        assert len(grounds) == 2
        total = sum(len(find_matches(g, paper_graph)) for g in grounds)
        assert total == 4

    def test_nested_anonymous_disjunction_fig_4_5(self, paper_graph):
        """The Fig. 4.5 motif: triangle or square on a base edge."""
        pattern = compile_pattern_text("""
            graph G4 {
                node v1, v2;
                edge e1 (v1, v2);
                { node v3; edge e2 (v1, v3); edge e3 (v2, v3); }
              | { node v3, v4; edge e2 (v1, v3); edge e3 (v2, v4);
                  edge e4 (v3, v4); };
            }
        """)
        grounds = pattern.ground()
        assert len(grounds) == 2
        assert grounds[0].num_nodes() == 3 and grounds[0].num_edges() == 3
        assert grounds[1].num_nodes() == 4 and grounds[1].num_edges() == 4

    def test_concatenation_by_reference(self):
        compiled = compile_program("""
            graph G1 { node v1, v2, v3;
                       edge e1 (v1, v2); edge e2 (v2, v3); edge e3 (v3, v1); };
            graph G2 { graph G1 as X; graph G1 as Y;
                       edge e4 (X.v1, Y.v1); edge e5 (X.v3, Y.v2); };
        """)
        pattern = compiled.patterns["G2"]
        grounds = pattern.ground(compiled.grammar)
        assert len(grounds) == 1
        assert grounds[0].num_nodes() == 6
        assert grounds[0].num_edges() == 8

    def test_recursive_path_pattern(self):
        compiled = compile_program("""
            graph Path { graph Path; node v1; edge e1 (v1, Path.v1);
                         export Path.v2 as v2; export v1 as v1; }
                       | { node v1, v2; edge e1 (v1, v2);
                           export v1 as v1; export v2 as v2; };
        """)
        pattern = compiled.patterns["Path"]
        assert pattern.is_recursive()
        grounds = pattern.ground(compiled.grammar, max_depth=5)
        sizes = sorted(g.num_nodes() for g in grounds)
        assert sizes[0] == 2 and len(sizes) >= 3


class TestTemplates:
    def test_return_template_with_expressions(self):
        compiled = compile_program("""
            graph P { node v1 <author>; };
            for P exhaustive in doc("D")
            return graph { node n <who=P.v1.name>; };
        """)
        g = Graph("g")
        g.tuple.set("booktitle", "X")
        g.add_node("a", tag="author", name="Ann")
        env = compiled.run(DictSource({"D": GraphCollection([g])}))
        result = env["__result__"]
        assert len(result) == 1
        assert result[0].node("n")["who"] == "Ann"

    def test_template_param_inference(self):
        from repro.lang.compiler import compile_template
        from repro.lang.parser import parse_graph_decl

        template = compile_template(parse_graph_decl("""
            graph {
                graph C;
                node P.v1;
                edge e1 (P.v1, C.n0);
            }
        """))
        assert template.params == ["C", "P"]


class TestEndToEnd:
    def test_fig_4_12_coauthorship(self):
        from repro.datasets import tiny_dblp

        compiled = compile_program("""
            graph P {
              node v1 <author>;
              node v2 <author>;
            } where P.booktitle="SIGMOD";
            C := graph {};
            for P exhaustive in doc("DBLP")
            let C := graph {
              graph C;
              node P.v1, P.v2;
              edge e1 (P.v1, P.v2);
              unify P.v1, C.v1 where P.v1.name=C.v1.name;
              unify P.v2, C.v2 where P.v2.name=C.v2.name;
            }
        """)
        env = compiled.run(DictSource({"DBLP": tiny_dblp()}))
        result = env["C"]
        assert sorted(n["name"] for n in result.nodes()) == ["A", "B", "C", "D"]
        assert result.num_edges() == 4

    def test_booktitle_filter_applies(self):
        from repro.datasets import tiny_dblp

        compiled = compile_program("""
            graph P {
              node v1 <author>; node v2 <author>;
            } where P.booktitle="VLDB";
            C := graph {};
            for P exhaustive in doc("DBLP")
            let C := graph { graph C; node P.v1, P.v2; edge e1 (P.v1, P.v2); }
        """)
        env = compiled.run(DictSource({"DBLP": tiny_dblp()}))
        assert env["C"].num_nodes() == 0  # nothing is from VLDB
