"""Appendix 4.A grammar conformance: every production is exercised.

One test per grammar production family, each parsing a minimal exemplar
of the construct — so grammar regressions localize precisely.
"""

import pytest

from repro.lang import GraphQLSyntaxError, parse_graph_decl, parse_program

VALID_DECLS = {
    "empty graph": "graph {}",
    "named graph": "graph G {}",
    "graph tuple": "graph G <t a=1> {}",
    "node list": "graph { node v1, v2, v3; }",
    "anonymous node": "graph { node; }",
    "node tuple tag only": "graph { node v <author>; }",
    "node tuple attrs": 'graph { node v <a=1 b="s" c=1.5>; }',
    "node where": "graph { node v where x > 1; }",
    "edge basic": "graph { node a, b; edge (a, b); }",
    "edge named": "graph { node a, b; edge e1 (a, b); }",
    "edge list": "graph { node a, b, c; edge e1 (a, b), e2 (b, c); }",
    "edge tuple": "graph { node a, b; edge e (a, b) <w=2>; }",
    "edge where": "graph { node a, b; edge e (a, b) where w > 1; }",
    "graph member": "graph { graph G1; }",
    "graph member list": "graph { graph G1, G2; }",
    "graph member alias": "graph { graph G1 as X; }",
    "unify": "graph { node a, b; unify a, b; }",
    "unify three": "graph { node a, b, c; unify a, b, c; }",
    "export": "graph { graph P; export P.v as v; }",
    "top-level disjunction": "graph { node v; } | { node v, w; }",
    "nested disjunction": "graph { node v; { node w; } | { node x; }; }",
    "graph where": "graph { node v1, v2; } where v1.x = v2.x",
    "dotted edge endpoints": "graph { graph X; edge e (X.v1, X.v2); }",
}

VALID_PROGRAMS = {
    "pattern statement": "graph P { node v; };",
    "assignment": "C := graph {};",
    "for return": 'for graph P { node v; } in doc("D") '
                  'return graph { node n; };',
    "for named": 'graph P { node v; }; for P in doc("D") '
                 'return graph { node n; };',
    "for exhaustive": 'for graph P { node v; } exhaustive in doc("D") '
                      'return graph { node n; };',
    "for where": 'for graph P { node v; } in doc("D") where P.x > 1 '
                 'return graph { node n; };',
    "let with :=": 'for graph P { node v; } in doc("D") '
                   'let C := graph { graph C; };',
    "let with =": 'for graph P { node v; } in doc("D") '
                  'let C = graph { graph C; };',
    "template tuple exprs": 'for graph P { node v; } in doc("D") '
                            'return graph { node n <x=P.v.a + 1>; };',
    "template unify where": 'for graph P { node v; } in doc("D") '
                            'let C := graph { graph C; node P.v; '
                            'unify P.v, C.x where P.v.id = C.x.id; };',
    "multiple statements": 'graph A { node v; }; graph B { node w; }; '
                           'C := graph {};',
}

INVALID = {
    "missing brace": "graph G { node v;",
    "edge without parens": "graph { node a, b; edge e a, b; }",
    "unify single name": "graph { node a; unify a; }",
    "export without as": "graph { graph P; export P.v; }",
    "for without in": 'for graph P { node v; } doc("D") '
                      'return graph { node n; };',
    "doc without string": "for graph P { node v; } in doc(D) "
                          "return graph { node n; };",
    "let without value": 'for graph P { node v; } in doc("D") let C :=;',
    "stray token": "graph G {} trailing",
}


@pytest.mark.parametrize("name", sorted(VALID_DECLS))
def test_valid_declaration(name):
    parse_graph_decl(VALID_DECLS[name])


@pytest.mark.parametrize("name", sorted(VALID_PROGRAMS))
def test_valid_program(name):
    parse_program(VALID_PROGRAMS[name])


@pytest.mark.parametrize("name", sorted(INVALID))
def test_invalid_input_rejected(name):
    with pytest.raises(GraphQLSyntaxError):
        parse_program(INVALID[name])
