"""Round-trip tests for the pattern pretty-printer."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Graph, GroundPattern
from repro.core.motif import SimpleMotif
from repro.lang import compile_pattern_text
from repro.lang.printer import motif_to_text, pattern_to_text
from repro.matching import find_matches


class TestPrinter:
    def test_triangle_round_trip(self, paper_graph, triangle_pattern):
        text = pattern_to_text(triangle_pattern)
        reparsed = compile_pattern_text(text).single()
        before = {frozenset(m.nodes.items())
                  for m in find_matches(triangle_pattern, paper_graph)}
        after = {frozenset(m.nodes.items())
                 for m in find_matches(reparsed, paper_graph)}
        assert before == after

    def test_predicates_survive(self, paper_graph):
        original = compile_pattern_text("""
            graph P { node v1 where label="A"; node v2; }
            where v1.label != v2.label
        """).single()
        text = pattern_to_text(original)
        reparsed = compile_pattern_text(text).single()
        assert len(find_matches(reparsed, paper_graph)) == len(
            find_matches(original, paper_graph)
        )

    def test_tags_and_edge_attrs(self):
        motif = SimpleMotif()
        motif.add_node("a", tag="author", attrs={"name": "X"})
        motif.add_node("b")
        motif.add_edge("a", "b", name="e1", attrs={"kind": "writes"})
        text = motif_to_text(motif, "P")
        assert "<author name=\"X\">" in text
        assert "<kind=\"writes\">" in text
        reparsed = compile_pattern_text(text).single()
        assert reparsed.motif.node("a").tag == "author"
        assert reparsed.motif.edge("e1").attrs == {"kind": "writes"}

    def test_dotted_names_sanitized(self):
        motif = SimpleMotif()
        motif.add_node("X.v1", attrs={"label": "A"})
        motif.add_node("X.v2", attrs={"label": "B"})
        motif.add_edge("X.v1", "X.v2", name="X.e1")
        text = pattern_to_text(GroundPattern(motif))
        reparsed = compile_pattern_text(text).single()
        assert set(reparsed.motif.node_names()) == {"X_v1", "X_v2"}


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_printer_round_trip_preserves_matches(seed):
    """Property: print -> parse gives a pattern with identical matches."""
    rng = random.Random(seed)
    graph = Graph("G")
    for i in range(rng.randint(3, 7)):
        graph.add_node(f"n{i}", label=rng.choice("AB"))
    ids = graph.node_ids()
    for _ in range(rng.randint(2, 10)):
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b)
    motif = SimpleMotif()
    size = rng.randint(1, 3)
    for i in range(size):
        motif.add_node(f"u{i}", attrs={"label": rng.choice("AB")})
    names = motif.node_names()
    for _ in range(rng.randint(0, 3)):
        a, b = rng.choice(names), rng.choice(names)
        if a != b and not motif.edges_between(a, b):
            motif.add_edge(a, b)
    pattern = GroundPattern(motif)
    reparsed = compile_pattern_text(pattern_to_text(pattern)).single()
    before = {frozenset(m.nodes.items()) for m in find_matches(pattern, graph)}
    after = {frozenset(m.nodes.items()) for m in find_matches(reparsed, graph)}
    assert before == after


class TestGraphPatternPrinter:
    def test_disjunctive_pattern_renders_alternatives(self):
        from repro.core import GraphPattern
        from repro.core.motif import Disjunction, MotifBlock
        from repro.lang.printer import graph_pattern_to_text

        a = MotifBlock()
        a.add_node("v", attrs={"label": "A"})
        b = MotifBlock()
        b.add_node("v", attrs={"label": "B"})
        pattern = GraphPattern(Disjunction([a, b]), name="P")
        text = graph_pattern_to_text(pattern)
        assert text.count("|") == 1
        assert '"A"' in text and '"B"' in text

    def test_recursive_pattern_rejected(self):
        from repro.core import GraphPattern
        from repro.core.motif import MotifRef
        from repro.lang.printer import graph_pattern_to_text

        import pytest

        with pytest.raises(ValueError):
            graph_pattern_to_text(GraphPattern(MotifRef("Path")))
