"""Unit tests for the GraphQL tokenizer."""

import pytest

from repro.lang import GraphQLSyntaxError, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]  # drop EOF


class TestTokens:
    def test_keywords_vs_ids(self):
        assert kinds("graph G") == [("keyword", "graph"), ("id", "G")]
        assert kinds("Graph") == [("id", "Graph")]  # case sensitive

    def test_numbers(self):
        assert kinds("42") == [("int", 42)]
        assert kinds("3.14") == [("float", 3.14)]

    def test_number_then_dot_name(self):
        # "v1.name" style: the dot after an int with no digit is a symbol
        assert kinds("2.x") == [("int", 2), ("symbol", "."), ("id", "x")]

    def test_strings_with_escapes(self):
        assert kinds('"a\\"b"') == [("string", 'a"b')]
        assert kinds("'sq'") == [("string", "sq")]

    def test_unterminated_string(self):
        with pytest.raises(GraphQLSyntaxError):
            tokenize('"oops')

    def test_multi_char_symbols(self):
        assert kinds(":= == != <= >= <>") == [
            ("symbol", ":="), ("symbol", "=="), ("symbol", "!="),
            ("symbol", "<="), ("symbol", ">="), ("symbol", "<>"),
        ]

    def test_single_symbols(self):
        # spaced out so maximal munch does not form "<>"
        assert kinds("{ } ( ) , ; . | & < > =") == [
            ("symbol", c) for c in "{}(),;.|&<>="
        ]

    def test_comments_ignored(self):
        assert kinds("graph // a comment\nG # more\n") == [
            ("keyword", "graph"), ("id", "G"),
        ]

    def test_positions(self):
        tokens = tokenize("graph\n  G")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_bad_character(self):
        with pytest.raises(GraphQLSyntaxError):
            tokenize("@")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"
