"""Fuzz tests: the front-end never crashes, it raises syntax errors."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import GraphQLCompileError, GraphQLSyntaxError, parse_program
from repro.lang.compiler import compile_program


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=200))
def test_parser_never_crashes_on_text(text):
    """Arbitrary text either parses or raises a GraphQL error."""
    try:
        parse_program(text)
    except GraphQLSyntaxError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.text(
    alphabet="graphnode dge{}<>();,.=\"'|&123abcPCv ",
    max_size=300,
))
def test_parser_never_crashes_on_tokenish_text(text):
    """Token-shaped garbage is the adversarial case for a parser."""
    try:
        parse_program(text)
    except GraphQLSyntaxError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.text(
    alphabet="graphnode dge{}<>();,.=\"'|&123abcPCv ",
    max_size=200,
))
def test_compiler_never_crashes(text):
    """Whatever parses either compiles or raises a compile error."""
    try:
        ast = parse_program(text)
    except GraphQLSyntaxError:
        return
    try:
        compile_program(ast)
    except (GraphQLCompileError, ValueError):
        pass
