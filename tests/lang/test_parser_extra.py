"""Additional parser/compiler coverage: corner productions."""

import pytest

from repro.core import DictSource, Graph, GraphCollection
from repro.lang import (
    GraphQLSyntaxError,
    compile_program,
    parse_program,
)
from repro.lang.ast import FLWRAst


class TestBareTemplateReference:
    def test_return_bound_graph_by_name(self):
        """``return C`` re-emits the graph bound to C per binding."""
        program_text = """
            C := graph { node seed <label="S">; };
            for graph P { node v1; } in doc("D")
            return C;
        """
        compiled = compile_program(program_text)
        g = Graph("g")
        g.add_node("x")
        g.add_node("y")
        env = compiled.run(DictSource({"D": GraphCollection([g])}))
        result = env["__result__"]
        assert len(result) == 1  # non-exhaustive: one binding
        assert result[0].num_nodes() == 1
        assert next(result[0].nodes())["label"] == "S"


class TestNumericEdgeCases:
    def test_float_attribute(self):
        compiled = compile_program("C := graph { node v <score=2.5>; };")
        env = compiled.run(DictSource({}))
        assert env["C"].node("v")["score"] == 2.5

    def test_negative_literal_in_where(self):
        from repro.lang import compile_pattern_text
        from repro.matching import find_matches

        pattern = compile_pattern_text(
            "graph P { node v where delta > -2; }"
        ).single()
        g = Graph()
        g.add_node("a", delta=-1)
        g.add_node("b", delta=-5)
        matches = find_matches(pattern, g)
        assert [m.nodes["v"] for m in matches] == ["a"]


class TestKeywordsAsAttributeNames:
    def test_doc_as_attribute_path_component(self):
        """Keywords may appear inside dotted paths in expressions."""
        from repro.lang import parse_expression

        expr = parse_expression("v1.doc == 3")
        assert expr.left.path == ("v1", "doc")


class TestErrorPositions:
    def test_error_mentions_line(self):
        try:
            parse_program("graph G {\n node v1\n}")
        except GraphQLSyntaxError as exc:
            assert exc.line >= 2
        else:
            pytest.fail("expected a syntax error")


class TestExhaustiveDefaults:
    def test_for_without_exhaustive_takes_first(self):
        program = parse_program("""
            for graph P { node v1; } in doc("D")
            return graph { node n; };
        """)
        flwr = program.statements[0]
        assert isinstance(flwr, FLWRAst)
        assert not flwr.exhaustive
