"""Unit tests for the GraphQL parser (Appendix 4.A grammar)."""

import pytest

from repro.core.predicate import AttrRef, BinOp, Literal
from repro.lang import GraphQLSyntaxError, parse_expression, parse_graph_decl, parse_program
from repro.lang.ast import AssignAst, ExportAst, FLWRAst, GraphMemberAst, NestedBlocksAst, UnifyAst


class TestGraphDecls:
    def test_fig_4_3_simple_motif(self):
        decl = parse_graph_decl("""
            graph G1 {
                node v1, v2, v3;
                edge e1 (v1, v2);
                edge e2 (v2, v3);
                edge e3 (v3, v1);
            }
        """)
        assert decl.name == "G1"
        (nodes, *edges) = decl.blocks[0].members
        assert [n.name for n in nodes] == ["v1", "v2", "v3"]
        assert edges[0][0].name == "e1"
        assert (edges[0][0].source, edges[0][0].target) == ("v1", "v2")

    def test_tuple_with_tag_and_attrs(self):
        decl = parse_graph_decl('graph G { node v2 <author name="A">; }')
        node = decl.blocks[0].members[0][0]
        assert node.tuple.tag == "author"
        assert node.tuple.entries == [("name", Literal("A"))]

    def test_tuple_without_tag(self):
        decl = parse_graph_decl('graph G { node v1 <title="T" year=2006>; }')
        node = decl.blocks[0].members[0][0]
        assert node.tuple.tag is None
        assert dict(node.tuple.entries) == {
            "title": Literal("T"), "year": Literal(2006),
        }

    def test_tuple_optional_commas(self):
        decl = parse_graph_decl('graph G { node v1 <a=1, b=2>; }')
        node = decl.blocks[0].members[0][0]
        assert len(node.tuple.entries) == 2

    def test_node_level_where(self):
        decl = parse_graph_decl('graph P { node v1 where name="A"; }')
        node = decl.blocks[0].members[0][0]
        assert node.where == BinOp("==", AttrRef(("name",)), Literal("A"))

    def test_graph_level_where(self):
        decl = parse_graph_decl(
            'graph P { node v1; node v2; } '
            'where v1.name="A" & v2.year>2000'
        )
        assert decl.where is not None
        assert decl.where.root_names() == {"v1", "v2"}

    def test_graph_members_with_alias(self):
        decl = parse_graph_decl("""
            graph G2 {
                graph G1 as X;
                graph G1 as Y;
                edge e4 (X.v1, Y.v1);
            }
        """)
        members = [m for m in decl.blocks[0].members
                   if isinstance(m, GraphMemberAst)]
        assert [(m.refs[0][0], m.refs[0][1]) for m in members] == [
            ("G1", "X"), ("G1", "Y"),
        ]

    def test_unify(self):
        decl = parse_graph_decl("""
            graph G3 { graph G1 as X; graph G1 as Y;
                       unify X.v1, Y.v1; }
        """)
        unify = decl.blocks[0].members[-1]
        assert isinstance(unify, UnifyAst)
        assert unify.paths == ["X.v1", "Y.v1"]

    def test_export(self):
        decl = parse_graph_decl("""
            graph Path { graph Path; node v1;
                         edge e1 (v1, Path.v1);
                         export Path.v2 as v2; }
        """)
        export = decl.blocks[0].members[-1]
        assert isinstance(export, ExportAst)
        assert export.path == "Path.v2" and export.alias == "v2"

    def test_top_level_disjunction(self):
        decl = parse_graph_decl("""
            graph Path { node v1, v2; edge e1 (v1, v2); }
                       | { node v1; }
        """)
        assert len(decl.blocks) == 2

    def test_nested_anonymous_disjunction_fig_4_5(self):
        decl = parse_graph_decl("""
            graph G4 {
                node v1, v2;
                edge e1 (v1, v2);
                { node v3; edge e2 (v1, v3); edge e3 (v2, v3); }
              | { node v3, v4; edge e2 (v1, v3); edge e3 (v2, v4);
                  edge e4 (v3, v4); };
            }
        """)
        nested = [m for m in decl.blocks[0].members
                  if isinstance(m, NestedBlocksAst)]
        assert len(nested) == 1
        assert len(nested[0].blocks) == 2

    def test_anonymous_graph(self):
        decl = parse_graph_decl("graph { node v1; }")
        assert decl.name is None

    def test_dotted_node_names_in_templates(self):
        decl = parse_graph_decl("graph { node P.v1, P.v2; edge e1 (P.v1, P.v2); }")
        nodes = decl.blocks[0].members[0]
        assert [n.name for n in nodes] == ["P.v1", "P.v2"]


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("a.x = 1 & b.y > 2 | c.z < 3")
        # | binds loosest
        assert isinstance(expr, BinOp) and expr.op == "|"
        assert expr.left.op == "&"

    def test_equals_normalized(self):
        assert parse_expression('x = 1') == parse_expression('x == 1')
        assert parse_expression('x != 1') == parse_expression('x <> 1')

    def test_arithmetic_precedence(self):
        expr = parse_expression("a.x + 2 * 3 == 7")
        assert expr.op == "=="
        assert expr.left.op == "+"
        assert expr.left.right.op == "*"

    def test_parentheses(self):
        expr = parse_expression("(a.x + 2) * 3 == 7")
        assert expr.left.op == "*"

    def test_unary_minus(self):
        expr = parse_expression("x < -5")
        assert expr.right == BinOp("-", Literal(0), Literal(5))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(GraphQLSyntaxError):
            parse_expression("x == 1 1")


class TestFLWR:
    def test_for_named_pattern(self):
        program = parse_program("""
            graph P { node v1 <author>; };
            for P exhaustive in doc("DBLP")
            return graph { node n <who=P.v1.name>; };
        """)
        assert len(program.statements) == 2
        flwr = program.statements[1]
        assert isinstance(flwr, FLWRAst)
        assert flwr.binding_name == "P"
        assert flwr.exhaustive
        assert flwr.source == "DBLP"
        assert flwr.let_var is None

    def test_for_inline_pattern_with_let(self):
        program = parse_program("""
            C := graph {};
            for graph Q { node v1; } in doc("D")
            let C := graph { graph C; node Q.v1; };
        """)
        assign, flwr = program.statements
        assert isinstance(assign, AssignAst) and assign.name == "C"
        assert flwr.pattern is not None and flwr.pattern.name == "Q"
        assert flwr.let_var == "C"
        assert not flwr.exhaustive

    def test_for_where_clause(self):
        program = parse_program("""
            for graph P { node v1; } in doc("D") where P.year > 2000
            return graph { node n; };
        """)
        assert program.statements[0].where is not None

    def test_fig_4_12_full_query_parses(self):
        program = parse_program("""
            graph P {
              node v1 <author>;
              node v2 <author>;
            } where P.booktitle="SIGMOD";
            C := graph {};
            for P exhaustive in doc("DBLP")
            let C := graph {
              graph C;
              node P.v1, P.v2;
              edge e1 (P.v1, P.v2);
              unify P.v1, C.v1 where P.v1.name=C.v1.name;
              unify P.v2, C.v2 where P.v2.name=C.v2.name;
            }
        """)
        assert len(program.statements) == 3

    def test_let_accepts_equals_sign(self):
        program = parse_program("""
            for graph P { node v1; } in doc("D")
            let C = graph { node n; };
        """)
        assert program.statements[0].let_var == "C"


class TestErrors:
    def test_missing_brace(self):
        with pytest.raises(GraphQLSyntaxError):
            parse_graph_decl("graph G { node v1; ")

    def test_bad_statement(self):
        with pytest.raises(GraphQLSyntaxError):
            parse_program("node v1;")

    def test_edge_needs_parens(self):
        with pytest.raises(GraphQLSyntaxError):
            parse_graph_decl("graph G { node a, b; edge e a, b; }")
