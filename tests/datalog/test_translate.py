"""Unit tests for the GraphQL → Datalog translation (Theorem 4.6)."""


from repro.core import Graph, GroundPattern
from repro.core.motif import SimpleMotif, clique_motif
from repro.core.predicate import AttrRef, BinOp, Literal
from repro.datalog import graph_to_facts, match_with_datalog, pattern_to_rule
from repro.matching import find_matches


def ref(path):
    return AttrRef(tuple(path.split(".")))


class TestGraphToFacts:
    def test_fig_4_14_shape(self):
        g = Graph("G")
        g.tuple.set("attr1", 7)
        g.add_node("v1")
        g.add_node("v2")
        g.add_node("v3")
        g.add_edge("v1", "v2", edge_id="e1")
        program = graph_to_facts(g)
        assert ("G",) in program.facts["graph"]
        assert ("G", "G.v1") in program.facts["node"]
        assert len(program.facts["node"]) == 3
        # undirected edge written twice to permute end points
        assert ("G", "G.e1", "G.v1", "G.v2") in program.facts["edge"]
        assert ("G", "G.e1", "G.v2", "G.v1") in program.facts["edge"]
        assert ("G", "attr1", 7) in program.facts["attribute"]

    def test_node_attributes_and_tags(self):
        g = Graph("G")
        g.add_node("v1", tag="author", name="A")
        program = graph_to_facts(g)
        assert ("G.v1", "name", "A") in program.facts["attribute"]
        assert ("G.v1", "author") in program.facts["tag"]

    def test_directed_edge_once(self):
        g = Graph("G", directed=True)
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b", edge_id="e1")
        program = graph_to_facts(g)
        assert len(program.facts["edge"]) == 1


class TestPatternToRule:
    def test_fig_4_15_shape(self):
        motif = SimpleMotif()
        motif.add_node("v2")
        motif.add_node("v3")
        motif.add_edge("v3", "v2", name="e1")
        where = BinOp(">", ref("v2.attr1"), Literal(5))
        rule = pattern_to_rule(GroundPattern(motif, where))
        predicates = [
            element.atom.predicate
            for element in rule.body
            if hasattr(element, "atom")
        ]
        assert predicates.count("graph") == 1
        assert predicates.count("node") == 2
        assert predicates.count("edge") == 1
        assert predicates.count("attribute") == 1
        assert rule.head.predicate == "Pattern"

    def test_label_constraint_becomes_attribute_atom(self):
        pattern = GroundPattern(clique_motif(["A", "B"]))
        rule = pattern_to_rule(pattern)
        attribute_atoms = [
            element.atom
            for element in rule.body
            if hasattr(element, "atom") and element.atom.predicate == "attribute"
        ]
        assert len(attribute_atoms) == 2

    def test_rule_is_safe(self, triangle_pattern):
        rule = pattern_to_rule(triangle_pattern)
        rule.check_safety()  # must not raise


class TestEndToEnd:
    def test_paper_example(self, paper_graph, triangle_pattern):
        native = {frozenset(m.nodes.items())
                  for m in find_matches(triangle_pattern, paper_graph)}
        datalog = {frozenset(m.nodes.items())
                   for m in match_with_datalog(triangle_pattern, paper_graph)}
        assert native == datalog

    def test_predicate_pattern(self, paper_graph):
        motif = SimpleMotif()
        motif.add_node("u", predicate=BinOp("==", ref("label"), Literal("B")))
        pattern = GroundPattern(motif)
        mappings = match_with_datalog(pattern, paper_graph)
        assert sorted(m.nodes["u"] for m in mappings) == ["B1", "B2"]

    def test_residual_cross_node_predicate(self, paper_graph):
        motif = SimpleMotif()
        motif.add_node("u1")
        motif.add_node("u2")
        motif.add_edge("u1", "u2")
        where = BinOp("==", ref("u1.label"), ref("u2.label"))
        pattern = GroundPattern(motif, where)
        native = {frozenset(m.nodes.items())
                  for m in find_matches(pattern, paper_graph)}
        datalog = {frozenset(m.nodes.items())
                   for m in match_with_datalog(pattern, paper_graph)}
        assert native == datalog

    def test_injectivity_enforced(self):
        """Without the != builtins, u1=u2 mappings would appear."""
        g = Graph("G")
        g.add_node("x", label="A")
        g.add_node("y", label="A")
        g.add_edge("x", "y")
        motif = SimpleMotif()
        motif.add_node("u1", attrs={"label": "A"})
        motif.add_node("u2", attrs={"label": "A"})
        pattern = GroundPattern(motif)
        mappings = match_with_datalog(pattern, g)
        assert all(m.nodes["u1"] != m.nodes["u2"] for m in mappings)
        assert len(mappings) == 2
