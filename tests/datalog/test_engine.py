"""Unit tests for the Datalog engine (stratified semi-naive evaluation)."""

import pytest

from repro.datalog import (
    Atom,
    BodyLiteral,
    Builtin,
    Program,
    Rule,
    StratificationError,
    Var,
    evaluate,
    query,
    stratify,
)

X, Y, Z = Var("X"), Var("Y"), Var("Z")


def edge_program(edges):
    program = Program()
    for a, b in edges:
        program.fact("e", a, b)
    return program


class TestFacts:
    def test_fact_storage(self):
        program = edge_program([(1, 2)])
        assert program.facts["e"] == {(1, 2)}

    def test_non_ground_fact_rejected(self):
        program = Program()
        with pytest.raises(ValueError):
            program.add_fact(Atom("p", [X]))


class TestSafety:
    def test_unsafe_head_rejected(self):
        rule = Rule(Atom("p", [X, Y]), [BodyLiteral(Atom("q", [X]))])
        program = Program()
        with pytest.raises(ValueError):
            program.add_rule(rule)

    def test_unsafe_negation_rejected(self):
        rule = Rule(
            Atom("p", [X]),
            [BodyLiteral(Atom("q", [X])),
             BodyLiteral(Atom("r", [Y]), negated=True)],
        )
        with pytest.raises(ValueError):
            rule.check_safety()

    def test_unsafe_builtin_rejected(self):
        rule = Rule(Atom("p", [X]),
                    [BodyLiteral(Atom("q", [X])), Builtin("<", Y, 3)])
        with pytest.raises(ValueError):
            rule.check_safety()


class TestEvaluation:
    def test_simple_join(self):
        program = edge_program([(1, 2), (2, 3)])
        program.add_rule(Rule(
            Atom("two_hop", [X, Z]),
            [BodyLiteral(Atom("e", [X, Y])), BodyLiteral(Atom("e", [Y, Z]))],
        ))
        assert query(program, Atom("two_hop", [X, Z])) == [(1, 3)]

    def test_constants_in_body(self):
        program = edge_program([(1, 2), (2, 3)])
        program.add_rule(Rule(
            Atom("from_one", [Y]),
            [BodyLiteral(Atom("e", [1, Y]))],
        ))
        assert query(program, Atom("from_one", [Y])) == [(2,)]

    def test_builtin_comparisons(self):
        program = Program()
        for n in (1, 5, 9):
            program.fact("n", n)
        program.add_rule(Rule(
            Atom("big", [X]),
            [BodyLiteral(Atom("n", [X])), Builtin(">", X, 4)],
        ))
        assert query(program, Atom("big", [X])) == [(5,), (9,)]

    def test_recursion_reachability(self):
        program = edge_program([(1, 2), (2, 3), (3, 4)])
        program.add_rule(Rule(Atom("reach", [X, Y]),
                              [BodyLiteral(Atom("e", [X, Y]))]))
        program.add_rule(Rule(
            Atom("reach", [X, Y]),
            [BodyLiteral(Atom("reach", [X, Z])),
             BodyLiteral(Atom("e", [Z, Y]))],
        ))
        rows = query(program, Atom("reach", [X, Y]))
        assert set(rows) == {(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)}

    def test_recursion_with_cycle_terminates(self):
        program = edge_program([(1, 2), (2, 1)])
        program.add_rule(Rule(Atom("reach", [X, Y]),
                              [BodyLiteral(Atom("e", [X, Y]))]))
        program.add_rule(Rule(
            Atom("reach", [X, Y]),
            [BodyLiteral(Atom("reach", [X, Z])),
             BodyLiteral(Atom("e", [Z, Y]))],
        ))
        rows = query(program, Atom("reach", [X, Y]))
        assert set(rows) == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_stratified_negation(self):
        program = edge_program([(1, 2), (2, 3)])
        for n in (1, 2, 3):
            program.fact("n", n)
        program.add_rule(Rule(Atom("reach", [X, Y]),
                              [BodyLiteral(Atom("e", [X, Y]))]))
        program.add_rule(Rule(
            Atom("reach", [X, Y]),
            [BodyLiteral(Atom("reach", [X, Z])),
             BodyLiteral(Atom("e", [Z, Y]))],
        ))
        program.add_rule(Rule(
            Atom("unreach", [X, Y]),
            [BodyLiteral(Atom("n", [X])), BodyLiteral(Atom("n", [Y])),
             BodyLiteral(Atom("reach", [X, Y]), negated=True)],
        ))
        rows = query(program, Atom("unreach", [1, Y]))
        assert rows == [(1, 1)]

    def test_non_stratifiable_rejected(self):
        program = Program()
        program.fact("n", 1)
        program.rules.append(Rule(
            Atom("p", [X]),
            [BodyLiteral(Atom("n", [X])),
             BodyLiteral(Atom("q", [X]), negated=True)],
        ))
        program.rules.append(Rule(
            Atom("q", [X]),
            [BodyLiteral(Atom("n", [X])),
             BodyLiteral(Atom("p", [X]), negated=True)],
        ))
        with pytest.raises(StratificationError):
            evaluate(program)

    def test_goal_with_constant_filter(self):
        program = edge_program([(1, 2), (1, 3), (2, 3)])
        program.add_rule(Rule(Atom("copy", [X, Y]),
                              [BodyLiteral(Atom("e", [X, Y]))]))
        rows = query(program, Atom("copy", [1, Y]))
        assert set(rows) == {(1, 2), (1, 3)}

    def test_goal_with_repeated_variable(self):
        program = edge_program([(1, 1), (1, 2)])
        program.add_rule(Rule(Atom("copy", [X, Y]),
                              [BodyLiteral(Atom("e", [X, Y]))]))
        rows = query(program, Atom("copy", [X, X]))
        assert rows == [(1, 1)]


class TestStratify:
    def test_two_strata(self):
        program = Program()
        program.fact("n", 1)
        program.add_rule(Rule(Atom("p", [X]), [BodyLiteral(Atom("n", [X]))]))
        program.add_rule(Rule(
            Atom("q", [X]),
            [BodyLiteral(Atom("n", [X])),
             BodyLiteral(Atom("p", [X]), negated=True)],
        ))
        strata = stratify(program)
        assert len(strata) == 2
        assert strata[0][0].head.predicate == "p"
        assert strata[1][0].head.predicate == "q"
