"""Shared fixtures: the paper's worked examples and small datasets."""

from __future__ import annotations

import pytest

from repro.core import Graph, GroundPattern, clique_motif


@pytest.fixture
def paper_graph() -> Graph:
    """The database graph G of Figs. 4.1 / 4.16.

    Six nodes A1,A2,B1,B2,C1,C2 with labels A/B/C; edges chosen so the
    neighborhood profiles match Fig. 4.17 (A1:ABC, B1:ABCC, B2:ABC,
    C1:BC, C2:ABBC, A2:AB) and the only triangle with labels {A,B,C} is
    (A1,B1,C2).
    """
    graph = Graph("G")
    for node_id, label in [
        ("A1", "A"), ("A2", "A"), ("B1", "B"),
        ("B2", "B"), ("C1", "C"), ("C2", "C"),
    ]:
        graph.add_node(node_id, label=label)
    for source, target in [
        ("A1", "B1"), ("A1", "C2"), ("B1", "C1"),
        ("B1", "C2"), ("B2", "C2"), ("A2", "B2"),
    ]:
        graph.add_edge(source, target)
    return graph


@pytest.fixture
def triangle_pattern() -> GroundPattern:
    """The query pattern P of Figs. 4.1 / 4.16: a labeled triangle A-B-C."""
    return GroundPattern(clique_motif(["A", "B", "C"]))
