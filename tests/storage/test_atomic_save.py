"""Atomic text saves: a crashed save never destroys the previous file."""

import os

import pytest

from repro.core import Graph, GraphCollection
from repro.storage.serializer import (
    load_collection,
    load_graph,
    save_collection,
    save_graph,
)


def make_graph(tag: str) -> Graph:
    g = Graph("g")
    g.add_node("a", label=tag)
    g.add_node("b", label="B")
    g.add_edge("a", "b")
    return g


class TestAtomicSave:
    def test_save_graph_roundtrip_and_no_temp_left(self, tmp_path):
        path = tmp_path / "g.gql"
        save_graph(make_graph("one"), path)
        assert load_graph(path).node("a")["label"] == "one"
        assert [p.name for p in tmp_path.iterdir()] == ["g.gql"]

    def test_crash_during_replace_keeps_old_file(self, tmp_path,
                                                 monkeypatch):
        """If the rename never happens, the old contents survive intact
        and the temp file is cleaned up — no torn half-written file."""
        path = tmp_path / "g.gql"
        save_graph(make_graph("old"), path)
        before = path.read_text(encoding="utf-8")

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            save_graph(make_graph("new"), path)
        monkeypatch.undo()
        assert path.read_text(encoding="utf-8") == before
        assert load_graph(path).node("a")["label"] == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["g.gql"]

    def test_crash_during_write_keeps_old_file(self, tmp_path,
                                               monkeypatch):
        """A failure while writing the temp file (disk full, kill) also
        leaves the old file byte-identical."""
        path = tmp_path / "c.gql"
        save_collection(GraphCollection([make_graph("old")]), path)
        before = path.read_bytes()

        def exploding_fsync(fd):
            raise OSError("simulated crash during fsync")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError):
            save_collection(GraphCollection([make_graph("new")]), path)
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["c.gql"]

    def test_save_collection_overwrites_atomically(self, tmp_path):
        path = tmp_path / "c.gql"
        save_collection(GraphCollection([make_graph("one")]), path)
        save_collection(
            GraphCollection([make_graph("two"), make_graph("three")]), path)
        back = load_collection(path)
        assert len(back) == 2
        assert [p.name for p in tmp_path.iterdir()] == ["c.gql"]

    def test_manifest_save_all_is_atomic(self, tmp_path, monkeypatch):
        from repro.storage import GraphDatabase

        database = GraphDatabase()
        database.register("d", make_graph("one"))
        database.save_all(tmp_path)
        manifest = (tmp_path / "MANIFEST").read_text(encoding="utf-8")

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        database.register("extra", make_graph("two"))
        with pytest.raises(OSError):
            database.save_all(tmp_path)
        monkeypatch.undo()
        assert (tmp_path / "MANIFEST").read_text(
            encoding="utf-8") == manifest
        assert not [p for p in tmp_path.iterdir()
                    if p.name.endswith(".tmp")]
