"""Unit tests for the write-ahead log, transactions, and recovery."""

import struct

import pytest

from repro.core import Graph
from repro.storage.faults import CrashPoint, SimulatedCrash
from repro.storage.graphstore import GraphStore
from repro.storage.pager import PAGE_SIZE, PageFile, StorageError
from repro.storage.wal import (
    REC_BEGIN,
    REC_COMMIT,
    REC_PAGE,
    RecoveryResult,
    WriteAheadLog,
    recover,
    scan_wal,
    wal_path_for,
)


def durable_pagefile(path):
    pf = PageFile(str(path), fsync="never")
    wal = WriteAheadLog(wal_path_for(str(path)), fsync="never")
    pf.attach_wal(wal)
    return pf


class TestFraming:
    def test_append_scan_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.wal")
        image = b"\xAB" * PAGE_SIZE
        with WriteAheadLog(path, fsync="never") as wal:
            wal.append(REC_BEGIN, 7)
            wal.append(REC_PAGE, 7, struct.pack("<I", 5) + image)
            wal.append(REC_COMMIT, 7)
        scan = scan_wal(path)
        assert [r.kind for r in scan.records] == [REC_BEGIN, REC_PAGE,
                                                  REC_COMMIT]
        assert [r.txn for r in scan.records] == [7, 7, 7]
        assert scan.records[1].page_no == 5
        assert scan.records[1].data == image
        assert [r.lsn for r in scan.records] == [1, 2, 3]
        assert not scan.torn_tail

    def test_torn_tail_is_cut_on_reopen(self, tmp_path):
        path = str(tmp_path / "t.wal")
        with WriteAheadLog(path, fsync="never") as wal:
            wal.append(REC_BEGIN, 1)
            wal.append(REC_COMMIT, 1)
        with open(path, "ab") as handle:
            handle.write(b"\x13\x37garbage torn tail")
        scan = scan_wal(path)
        assert scan.torn_tail
        assert len(scan.records) == 2
        # reopening truncates the torn tail and appends after it
        with WriteAheadLog(path, fsync="never") as wal:
            assert wal.size == scan.valid_bytes
            wal.append(REC_BEGIN, 2)
        assert len(scan_wal(path).records) == 3

    def test_corrupt_record_stops_scan(self, tmp_path):
        path = str(tmp_path / "t.wal")
        with WriteAheadLog(path, fsync="never") as wal:
            wal.append(REC_BEGIN, 1)
            offset = wal.size
            wal.append(REC_PAGE, 1, struct.pack("<I", 2) + b"x" * PAGE_SIZE)
        with open(path, "r+b") as handle:
            handle.seek(offset + 40)  # inside the second record's body
            handle.write(b"\xff")
        scan = scan_wal(path)
        assert len(scan.records) == 1  # CRC rejects the flipped record
        assert scan.torn_tail

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_wal(str(tmp_path / "absent.wal"))
        assert scan.records == []
        assert not scan.torn_tail


class TestTransactions:
    def test_commit_persists_and_logs(self, tmp_path):
        pf = durable_pagefile(tmp_path / "p.db")
        page = pf.allocate_page()  # header update = its own implicit txn
        commits_before = sum(
            r.kind == REC_COMMIT for r in scan_wal(pf.wal.path).records)
        pf.begin()
        pf.write_page(page, b"A" * PAGE_SIZE)
        pf.commit()
        assert pf.read_page(page) == b"A" * PAGE_SIZE
        records = scan_wal(pf.wal.path).records
        assert sum(r.kind == REC_COMMIT
                   for r in records) == commits_before + 1
        assert any(r.kind == REC_PAGE and r.page_no == page
                   for r in records)
        pf.close()

    def test_abort_discards_pending(self, tmp_path):
        pf = durable_pagefile(tmp_path / "p.db")
        page = pf.allocate_page()
        pf.begin()
        pf.write_page(page, b"B" * PAGE_SIZE)
        assert pf.read_page(page) == b"B" * PAGE_SIZE  # read-your-writes
        pf.abort()
        assert pf.read_page(page) == b"\x00" * PAGE_SIZE
        pf.close()

    def test_implicit_transaction_outside_begin(self, tmp_path):
        """No write can bypass the WAL: a bare write_page auto-commits."""
        pf = durable_pagefile(tmp_path / "p.db")
        page = pf.allocate_page()
        before = pf.store_version
        pf.write_page(page, b"C" * PAGE_SIZE)
        assert pf.store_version == before + 1
        kinds = [r.kind for r in scan_wal(pf.wal.path).records]
        assert REC_COMMIT in kinds
        pf.close()

    def test_store_version_counts_commits(self, tmp_path):
        path = tmp_path / "p.db"
        pf = durable_pagefile(path)
        page = pf.allocate_page()
        for i in range(3):
            pf.begin()
            pf.write_page(page, bytes([i]) * PAGE_SIZE)
            pf.commit()
        version = pf.store_version
        pf.close()
        reopened = PageFile(str(path))
        assert reopened.store_version == version
        reopened.close()

    def test_begin_requires_wal(self, tmp_path):
        pf = PageFile(str(tmp_path / "plain.db"))
        with pytest.raises(StorageError):
            pf.begin()
        pf.close()

    def test_nested_begin_rejected(self, tmp_path):
        pf = durable_pagefile(tmp_path / "p.db")
        pf.begin()
        with pytest.raises(StorageError):
            pf.begin()
        pf.abort()
        pf.close()


class TestRecovery:
    def test_recover_replays_committed(self, tmp_path):
        path = str(tmp_path / "p.db")
        pf = durable_pagefile(path)
        page = pf.allocate_page()
        pf.begin()
        pf.write_page(page, b"D" * PAGE_SIZE)
        pf.commit()
        pf.close()
        # clobber the committed page behind the pager's back (as if the
        # page write never reached the disk); the WAL still holds the
        # commit, so recovery must restore the page image
        with open(path, "r+b") as handle:
            handle.seek(page * PAGE_SIZE)
            handle.write(b"\x00" * PAGE_SIZE)
        result = recover(path)
        assert isinstance(result, RecoveryResult)
        assert result.replayed_transactions >= 1
        reopened = PageFile(path)
        assert reopened.read_page(page) == b"D" * PAGE_SIZE
        reopened.close()

    def test_uncommitted_records_discarded(self, tmp_path):
        path = str(tmp_path / "p.db")
        wal_path = wal_path_for(path)
        pf = durable_pagefile(path)
        page = pf.allocate_page()
        pf.begin()
        pf.write_page(page, b"E" * PAGE_SIZE)
        pf.commit()
        pf.close()
        # append a BEGIN + PAGE without a COMMIT (a crash mid-commit)
        with WriteAheadLog(wal_path, fsync="never") as wal:
            txn = wal.begin()
            wal.append(REC_BEGIN, txn)
            wal.append(REC_PAGE, txn,
                       struct.pack("<I", page) + b"Z" * PAGE_SIZE)
        result = recover(path)
        assert result.discarded_records == 2
        reopened = PageFile(path)
        assert reopened.read_page(page) == b"E" * PAGE_SIZE
        reopened.close()

    def test_recovery_truncates_wal_and_is_idempotent(self, tmp_path):
        path = str(tmp_path / "p.db")
        pf = durable_pagefile(path)
        page = pf.allocate_page()
        pf.write_page(page, b"F" * PAGE_SIZE)
        pf.close()
        first = recover(path)
        assert scan_wal(wal_path_for(path)).records == []
        second = recover(path)
        assert second.clean
        assert second.replayed_transactions == 0
        del first

    def test_checkpoint_truncates(self, tmp_path):
        pf = durable_pagefile(tmp_path / "p.db")
        page = pf.allocate_page()
        pf.write_page(page, b"G" * PAGE_SIZE)
        assert pf.wal.size > 0
        freed = pf.checkpoint()
        assert freed > 0
        assert pf.wal.size == 0
        assert pf.read_page(page) == b"G" * PAGE_SIZE
        pf.close()

    def test_checkpoint_inside_transaction_rejected(self, tmp_path):
        pf = durable_pagefile(tmp_path / "p.db")
        pf.begin()
        with pytest.raises(StorageError):
            pf.checkpoint()
        pf.abort()
        pf.close()


class TestCrashPoint:
    def test_counts_and_trips(self):
        crash = CrashPoint(3)
        sink = []
        crash.write(sink.append, b"one")
        crash.write(sink.append, b"two")
        with pytest.raises(SimulatedCrash):
            crash.write(sink.append, b"three")
        assert crash.tripped
        # dead-process semantics: everything after the crash raises too
        with pytest.raises(SimulatedCrash):
            crash.write(sink.append, b"four")
        with pytest.raises(SimulatedCrash):
            crash.barrier(lambda: None)
        assert sink[:2] == [b"one", b"two"]

    def test_torn_write_persists_prefix(self):
        crash = CrashPoint(1, tear=True, seed=5)
        sink = []
        with pytest.raises(SimulatedCrash):
            crash.write(sink.append, b"0123456789")
        persisted = b"".join(sink)
        assert persisted == b"0123456789"[:len(persisted)]
        assert len(persisted) < 10

    def test_graphstore_crash_then_recover(self, tmp_path):
        """A mid-commit crash loses the in-flight save, never the prior one."""
        g1 = Graph("g")
        g1.add_node("a", label="A")
        g2 = Graph("g")
        g2.add_node("a", label="A")
        g2.add_node("b", label="B")
        g2.add_edge("a", "b")
        path = str(tmp_path / "s.db")
        with GraphStore(path, durable=True, fsync="never") as store:
            store.save_document("doc", [g1])
            ops_for_first = store.pagefile.crashpoint  # none attached
        assert ops_for_first is None
        crash = CrashPoint(crash_after=2, seed=3)
        store = GraphStore(path, durable=True, fsync="never",
                           crashpoint=crash)
        with pytest.raises(SimulatedCrash):
            store.save_document("doc", [g2])
        recovered = GraphStore(path, durable=True, fsync="never")
        docs = recovered.load_documents()
        back = docs["doc"][0]
        assert back.equals(g1) or back.equals(g2)  # prefix contract
        assert back.version in (g1.version, g2.version)
        recovered.close()
