"""Unit tests for page-based graph persistence and locality clustering."""

import pytest

from repro.core import Graph
from repro.datasets import erdos_renyi_graph, tiny_dblp
from repro.storage.graphstore import GraphStore
from repro.storage.pager import StorageError


def rich_graph() -> Graph:
    g = Graph("G", directed=True)
    g.tuple.set("kind", "demo")
    g.add_node("v1", tag="author", name="Ann", year=2006, score=1.5,
               active=True)
    g.add_node("v2", label="B")
    g.add_edge("v1", "v2", edge_id="e1", weight=3)
    return g


class TestRoundTrip:
    def test_single_graph(self, tmp_path):
        g = rich_graph()
        with GraphStore(str(tmp_path / "g.db")) as store:
            store.save(g)
            (loaded,) = store.load_all()
        assert loaded.equals(g)
        assert loaded.directed
        assert loaded.node("v1")["score"] == 1.5
        assert loaded.node("v1")["active"] is True

    def test_multiple_graphs(self, tmp_path):
        collection = tiny_dblp()
        with GraphStore(str(tmp_path / "c.db")) as store:
            for graph in collection:
                store.save(graph)
            loaded = store.load_all()
        assert len(loaded) == 2
        for original, back in zip(collection, loaded):
            assert back.equals(original)

    def test_reopen_file(self, tmp_path):
        path = str(tmp_path / "p.db")
        g = rich_graph()
        with GraphStore(path) as store:
            store.save(g)
        with GraphStore(path) as store:
            (loaded,) = store.load_all()
        assert loaded.equals(g)

    def test_medium_graph(self, tmp_path):
        g = erdos_renyi_graph(300, 900, seed=4)
        with GraphStore(str(tmp_path / "er.db")) as store:
            store.save(g)
            (loaded,) = store.load_all()
        assert loaded.equals(g)

    def test_bad_policy(self, tmp_path):
        with pytest.raises(ValueError):
            GraphStore(str(tmp_path / "x.db"), clustering="random")


class TestAttributeEdgeCases:
    """Round trips of values that break naive serializers."""

    def roundtrip(self, tmp_path, **attrs) -> Graph:
        g = Graph("edge-cases")
        g.add_node("n", **attrs)
        with GraphStore(str(tmp_path / "attrs.db")) as store:
            store.save(g)
            (loaded,) = store.load_all()
        return loaded

    def test_unicode_and_newline_strings(self, tmp_path):
        values = {
            "unicode": "gráph — ∀x∃y: ⟨x,y⟩ 🎓",
            "newlines": "line one\nline two\r\n\ttabbed",
            "quotes": 'she said "hi" \\ and left',
            "empty": "",
        }
        loaded = self.roundtrip(tmp_path, **values)
        for name, value in values.items():
            assert loaded.node("n")[name] == value

    def test_int_extremes(self, tmp_path):
        values = {
            "max64": 2 ** 63 - 1,
            "min64": -(2 ** 63),
            "negative": -42,
            "zero": 0,
        }
        loaded = self.roundtrip(tmp_path, **values)
        for name, value in values.items():
            back = loaded.node("n")[name]
            assert back == value and isinstance(back, int)

    def test_bool_is_not_int(self, tmp_path):
        """bool must be checked before int (bool subclasses int): True
        must come back as True, and 1 as 1, not each other."""
        loaded = self.roundtrip(tmp_path, flag=True, off=False, one=1, nil=0)
        node = loaded.node("n")
        assert node["flag"] is True
        assert node["off"] is False
        assert node["one"] == 1 and not isinstance(node["one"], bool)
        assert node["nil"] == 0 and not isinstance(node["nil"], bool)

    def test_float_specials(self, tmp_path):
        import math

        loaded = self.roundtrip(tmp_path, nan=float("nan"),
                                inf=float("inf"), ninf=float("-inf"),
                                tiny=5e-324, neg_zero=-0.0)
        node = loaded.node("n")
        assert math.isnan(node["nan"])
        assert node["inf"] == float("inf")
        assert node["ninf"] == float("-inf")
        assert node["tiny"] == 5e-324
        assert math.copysign(1.0, node["neg_zero"]) == -1.0

    def test_empty_graph(self, tmp_path):
        g = Graph("empty")
        with GraphStore(str(tmp_path / "empty.db")) as store:
            store.save(g)
            (loaded,) = store.load_all()
        assert loaded.num_nodes() == 0
        assert loaded.num_edges() == 0
        assert loaded.name == "empty"

    def test_durable_roundtrip_of_edge_cases(self, tmp_path):
        """The WAL-backed path preserves the same values byte-for-byte."""
        g = Graph("edge-cases")
        g.add_node("n", text="uni — ✓\nnl", big=2 ** 62, neg=-7,
                   flag=True, ratio=0.1)
        path = str(tmp_path / "durable.db")
        with GraphStore(path, durable=True, fsync="never") as store:
            store.save_document("doc", [g])
        with GraphStore(path, durable=True, fsync="never") as store:
            back = store.load_documents()["doc"][0]
        assert back.equals(g)
        assert back.version == g.version


class TestClustering:
    def test_bfs_order_visits_neighbors_together(self):
        g = Graph()
        for n in "abcdef":
            g.add_node(n)
        # two components: a-b-c chain and d-e-f chain
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("d", "e")
        g.add_edge("e", "f")
        store = GraphStore.__new__(GraphStore)
        store.clustering = "bfs"
        order = store.node_order(g)
        assert order.index("b") < order.index("d")  # component stays together

    def test_bfs_improves_neighborhood_locality(self, tmp_path):
        """BFS clustering touches no more pages per neighborhood than a
        scrambled insertion order (usually strictly fewer)."""
        import random

        g = erdos_renyi_graph(800, 2400, seed=9)
        # scramble declaration order so "insertion" is an adversary
        ids = g.node_ids()
        random.Random(1).shuffle(ids)
        scrambled_order = Graph(directed=False)
        for node_id in ids:
            node = g.node(node_id)
            scrambled_order.add_node(node_id, **dict(node.tuple.items()))
        for edge in g.edges():
            scrambled_order.add_edge(edge.source, edge.target)

        spans = {}
        for policy in ("bfs", "insertion"):
            with GraphStore(str(tmp_path / f"{policy}.db"),
                            clustering=policy) as store:
                store.save(scrambled_order)
                spans[policy] = store.neighborhood_page_span(scrambled_order)
        assert spans["bfs"] <= spans["insertion"]

    def test_span_requires_saved_graph(self, tmp_path):
        with GraphStore(str(tmp_path / "s.db")) as store:
            with pytest.raises(StorageError):
                store.neighborhood_page_span(rich_graph())
