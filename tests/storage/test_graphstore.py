"""Unit tests for page-based graph persistence and locality clustering."""

import pytest

from repro.core import Graph
from repro.datasets import erdos_renyi_graph, tiny_dblp
from repro.storage.graphstore import GraphStore
from repro.storage.pager import StorageError


def rich_graph() -> Graph:
    g = Graph("G", directed=True)
    g.tuple.set("kind", "demo")
    g.add_node("v1", tag="author", name="Ann", year=2006, score=1.5,
               active=True)
    g.add_node("v2", label="B")
    g.add_edge("v1", "v2", edge_id="e1", weight=3)
    return g


class TestRoundTrip:
    def test_single_graph(self, tmp_path):
        g = rich_graph()
        with GraphStore(str(tmp_path / "g.db")) as store:
            store.save(g)
            (loaded,) = store.load_all()
        assert loaded.equals(g)
        assert loaded.directed
        assert loaded.node("v1")["score"] == 1.5
        assert loaded.node("v1")["active"] is True

    def test_multiple_graphs(self, tmp_path):
        collection = tiny_dblp()
        with GraphStore(str(tmp_path / "c.db")) as store:
            for graph in collection:
                store.save(graph)
            loaded = store.load_all()
        assert len(loaded) == 2
        for original, back in zip(collection, loaded):
            assert back.equals(original)

    def test_reopen_file(self, tmp_path):
        path = str(tmp_path / "p.db")
        g = rich_graph()
        with GraphStore(path) as store:
            store.save(g)
        with GraphStore(path) as store:
            (loaded,) = store.load_all()
        assert loaded.equals(g)

    def test_medium_graph(self, tmp_path):
        g = erdos_renyi_graph(300, 900, seed=4)
        with GraphStore(str(tmp_path / "er.db")) as store:
            store.save(g)
            (loaded,) = store.load_all()
        assert loaded.equals(g)

    def test_bad_policy(self, tmp_path):
        with pytest.raises(ValueError):
            GraphStore(str(tmp_path / "x.db"), clustering="random")


class TestClustering:
    def test_bfs_order_visits_neighbors_together(self):
        g = Graph()
        for n in "abcdef":
            g.add_node(n)
        # two components: a-b-c chain and d-e-f chain
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("d", "e")
        g.add_edge("e", "f")
        store = GraphStore.__new__(GraphStore)
        store.clustering = "bfs"
        order = store.node_order(g)
        assert order.index("b") < order.index("d")  # component stays together

    def test_bfs_improves_neighborhood_locality(self, tmp_path):
        """BFS clustering touches no more pages per neighborhood than a
        scrambled insertion order (usually strictly fewer)."""
        import random

        g = erdos_renyi_graph(800, 2400, seed=9)
        # scramble declaration order so "insertion" is an adversary
        ids = g.node_ids()
        random.Random(1).shuffle(ids)
        scrambled = g.induced_subgraph(ids)  # same graph, copied
        scrambled_order = Graph(directed=False)
        for node_id in ids:
            node = g.node(node_id)
            scrambled_order.add_node(node_id, **dict(node.tuple.items()))
        for edge in g.edges():
            scrambled_order.add_edge(edge.source, edge.target)

        spans = {}
        for policy in ("bfs", "insertion"):
            with GraphStore(str(tmp_path / f"{policy}.db"),
                            clustering=policy) as store:
                store.save(scrambled_order)
                spans[policy] = store.neighborhood_page_span(scrambled_order)
        assert spans["bfs"] <= spans["insertion"]

    def test_span_requires_saved_graph(self, tmp_path):
        with GraphStore(str(tmp_path / "s.db")) as store:
            with pytest.raises(StorageError):
                store.neighborhood_page_span(rich_graph())
