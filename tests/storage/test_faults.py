"""Fault injection, page checksums and file-validation error paths.

The smoke test at the bottom drives the whole storage stack through a
FaultyPageFile at an injected read-fault rate taken from the
``REPRO_FAULT_RATE`` environment variable (default 5%), which is how the
CI fault-injection job runs it.
"""

import os
import struct

import pytest

from repro.core import Graph
from repro.storage import (
    ChecksumError,
    FaultyPageFile,
    GraphStore,
    StorageError,
    TransientIOError,
)
from repro.storage.pager import (
    PAGE_SIZE,
    PageFile,
    RecordFile,
    SlottedPage,
)

FAULT_RATE = float(os.environ.get("REPRO_FAULT_RATE", "0.05"))


def rich_graph(name="g", nodes=40) -> Graph:
    graph = Graph(name)
    for i in range(nodes):
        graph.add_node(f"v{i}", label=f"L{i % 5}", weight=i * 1.5)
    for i in range(nodes - 1):
        graph.add_edge(f"v{i}", f"v{i + 1}")
    return graph


class TestPageChecksum:
    def test_roundtrip_verifies(self):
        page = SlottedPage()
        page.insert(b"hello")
        image = page.to_bytes()
        reloaded = SlottedPage(image)
        assert reloaded.read(0) == b"hello"

    def test_bit_flip_detected(self):
        page = SlottedPage()
        page.insert(b"some record payload")
        image = bytearray(page.to_bytes())
        image[100] ^= 0x40  # one flipped bit anywhere in the page
        with pytest.raises(ChecksumError, match="checksum"):
            SlottedPage(bytes(image))

    def test_verification_can_be_skipped(self):
        page = SlottedPage()
        page.insert(b"x")
        image = bytearray(page.to_bytes())
        image[50] ^= 1
        SlottedPage(bytes(image), verify=False)  # no raise

    def test_all_zero_page_is_fresh(self):
        page = SlottedPage(b"\x00" * PAGE_SIZE)
        assert page.slot_count == 0
        assert page.insert(b"first") == 0


class TestFileValidation:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"NOPE" + b"\x00" * (PAGE_SIZE - 4))
        with pytest.raises(StorageError, match="bad magic"):
            PageFile(str(path))

    def test_short_header(self, tmp_path):
        path = tmp_path / "tiny.db"
        path.write_bytes(b"GQ")
        with pytest.raises(StorageError, match="truncated header"):
            PageFile(str(path))

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "trunc.db"
        with PageFile(str(path)) as pagefile:
            pagefile.allocate_page()
            pagefile.allocate_page()
        with open(path, "r+b") as handle:
            handle.truncate(PAGE_SIZE + 10)  # header says 3 pages
        with pytest.raises(StorageError, match="truncated"):
            PageFile(str(path))

    def test_zero_page_count(self, tmp_path):
        path = tmp_path / "zero.db"
        header = struct.pack("<4sII", b"GQLP", 0, 0xFFFFFFFF)
        path.write_bytes(header.ljust(PAGE_SIZE, b"\x00"))
        with pytest.raises(StorageError, match="at least the header"):
            PageFile(str(path))


class TestFaultInjection:
    def test_rates_validated(self, tmp_path):
        with pytest.raises(ValueError, match="read_error_rate"):
            FaultyPageFile(str(tmp_path / "f.db"), read_error_rate=1.5)

    def test_transient_faults_are_raised_and_counted(self, tmp_path):
        pagefile = FaultyPageFile(str(tmp_path / "f.db"),
                                  read_error_rate=1.0, seed=3)
        pagefile.allocate_page()
        with pytest.raises(TransientIOError, match="injected"):
            pagefile.read_page(1)
        assert pagefile.stats.read_faults == 1

    def test_suspended_disables_injection(self, tmp_path):
        pagefile = FaultyPageFile(str(tmp_path / "f.db"),
                                  read_error_rate=1.0, seed=3)
        pagefile.allocate_page()
        with pagefile.suspended():
            pagefile.read_page(1)  # no raise

    def test_write_fault_raises(self, tmp_path):
        pagefile = FaultyPageFile(str(tmp_path / "f.db"),
                                  write_error_rate=1.0, seed=3)
        with pytest.raises(StorageError, match="injected write"):
            pagefile.write_page(0, b"\x00" * PAGE_SIZE)

    def test_torn_write_detected_by_crc(self, tmp_path):
        pagefile = FaultyPageFile(str(tmp_path / "torn.db"),
                                  torn_write_rate=1.0, seed=5)
        page_no = pagefile.allocate_page()
        page = SlottedPage()
        page.insert(b"A" * 2000)
        page.insert(b"B" * 1500)
        pagefile.write_page(page_no, page.to_bytes())
        assert pagefile.stats.torn_pages == 1
        with pagefile.suspended():
            raw = pagefile.read_page(page_no)
        with pytest.raises(ChecksumError):
            SlottedPage(raw)

    def test_bit_flip_on_read_detected_by_crc(self, tmp_path):
        pagefile = FaultyPageFile(str(tmp_path / "rot.db"),
                                  corrupt_read_rate=1.0, seed=7)
        page_no = pagefile.allocate_page()
        page = SlottedPage()
        page.insert(b"precious data")
        with pagefile.suspended():
            pagefile.write_page(page_no, page.to_bytes())
        raw = pagefile.read_page(page_no)
        assert pagefile.stats.bit_flips == 1
        with pytest.raises(ChecksumError):
            SlottedPage(raw)

    def test_header_page_exempt_by_default(self, tmp_path):
        pagefile = FaultyPageFile(str(tmp_path / "h.db"),
                                  corrupt_read_rate=1.0, seed=9)
        raw = pagefile.read_page(0)
        with pagefile.suspended():
            clean = pagefile.read_page(0)
        assert raw == clean  # page 0 was not bit-flipped


class TestRetries:
    def test_recordfile_rides_over_transient_faults(self, tmp_path):
        pagefile = FaultyPageFile(str(tmp_path / "retry.db"),
                                  read_error_rate=0.4, seed=13)
        records = RecordFile(pagefile, max_retries=10, retry_backoff=0.0)
        ids = [records.insert(f"record-{i}".encode()) for i in range(50)]
        for i, record_id in enumerate(ids):
            assert records.read(record_id) == f"record-{i}".encode()
        assert pagefile.stats.read_faults > 0
        assert records.retries_performed >= pagefile.stats.read_faults

    def test_backoff_schedule_doubles(self, tmp_path):
        """The injected sleep sees exactly 1ms, 2ms, 4ms, ... — the
        documented bounded-exponential schedule, no wall clock burned."""
        pagefile = FaultyPageFile(str(tmp_path / "sched.db"),
                                  read_error_rate=1.0, seed=13)
        pagefile.allocate_page()
        delays = []
        records = RecordFile(pagefile, max_retries=5, retry_backoff=0.001,
                             sleep=delays.append)
        with pytest.raises(TransientIOError):
            records.read((1, 0))
        assert delays == [0.001, 0.002, 0.004, 0.008, 0.016]

    def test_zero_backoff_never_sleeps(self, tmp_path):
        pagefile = FaultyPageFile(str(tmp_path / "nosleep.db"),
                                  read_error_rate=1.0, seed=13)
        pagefile.allocate_page()
        delays = []
        records = RecordFile(pagefile, max_retries=3, retry_backoff=0.0,
                             sleep=delays.append)
        with pytest.raises(TransientIOError):
            records.read((1, 0))
        assert delays == []

    def test_retry_budget_is_bounded(self, tmp_path):
        pagefile = FaultyPageFile(str(tmp_path / "hard.db"),
                                  read_error_rate=1.0, seed=13)
        pagefile.allocate_page()
        records = RecordFile(pagefile, max_retries=3, retry_backoff=0.0)
        with pytest.raises(TransientIOError):
            records.read((1, 0))
        # first attempt + 3 retries
        assert pagefile.stats.read_faults == 4


class TestFaultSmoke:
    """The CI fault-injection job: storage stack at REPRO_FAULT_RATE."""

    def test_graphstore_roundtrip_under_read_faults(self, tmp_path,
                                                    monkeypatch):
        def faulty(path):
            return FaultyPageFile(path, read_error_rate=FAULT_RATE, seed=11)

        monkeypatch.setattr("repro.storage.graphstore.PageFile", faulty)
        graph = rich_graph(nodes=120)
        path = str(tmp_path / "smoke.db")
        with GraphStore(path) as store:
            store.records.retry_backoff = 0.0
            store.save(graph)
            (loaded,) = store.load_all()
        assert loaded.equals(graph)
        pagefile = store.pagefile
        if FAULT_RATE > 0:
            assert pagefile.stats.read_faults > 0

    def test_recordfile_workload_under_read_faults(self, tmp_path):
        pagefile = FaultyPageFile(str(tmp_path / "wl.db"),
                                  read_error_rate=FAULT_RATE, seed=17)
        records = RecordFile(pagefile, retry_backoff=0.0)
        payloads = {records.insert(os.urandom(64)): i for i in range(200)}
        scanned = list(records.scan())
        assert len(scanned) == len(payloads)
