"""Property tests: serialization and page storage round-trip any graph."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Graph
from repro.storage import graph_from_text, graph_to_text
from repro.storage.graphstore import GraphStore

_NAMES = ["alpha", "beta_2", "g", "x9"]


def random_graph(rng: random.Random) -> Graph:
    graph = Graph(rng.choice(_NAMES), directed=rng.random() < 0.3)
    if rng.random() < 0.5:
        graph.tuple.set("kind", rng.choice(["a", "b"]))
    for i in range(rng.randint(0, 8)):
        attrs = {}
        if rng.random() < 0.8:
            attrs["label"] = rng.choice("ABC")
        if rng.random() < 0.4:
            attrs["year"] = rng.randint(1990, 2010)
        if rng.random() < 0.3:
            attrs["score"] = round(rng.random() * 10, 3)
        if rng.random() < 0.2:
            attrs["note"] = 'tri"cky \\ text'
        tag = rng.choice([None, "author", "protein"])
        node = graph.add_node(f"n{i}", tag=tag)
        node.tuple.update(attrs)
    ids = graph.node_ids()
    if len(ids) >= 2:
        for _ in range(rng.randint(0, 12)):
            a, b = rng.choice(ids), rng.choice(ids)
            if a != b and not graph.has_edge(a, b):
                from repro.core.tuples import AttributeTuple

                tag = rng.choice([None, "friend", "bond"])
                edge = graph.add_edge(a, b)
                attrs = {"w": rng.randint(1, 9)} if rng.random() < 0.4 else {}
                edge.tuple = AttributeTuple(attrs, tag=tag)
    return graph


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_text_round_trip(seed):
    graph = random_graph(random.Random(seed))
    assert graph_from_text(graph_to_text(graph),
                           directed=graph.directed).equals(graph)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_pagefile_round_trip(tmp_path_factory, seed):
    rng = random.Random(seed)
    graphs = [random_graph(rng) for _ in range(rng.randint(1, 3))]
    tmp = tmp_path_factory.mktemp("gs")
    path = str(tmp / "store.db")
    policy = rng.choice(["bfs", "insertion"])
    with GraphStore(path, clustering=policy) as store:
        for graph in graphs:
            store.save(graph)
    with GraphStore(path) as store:
        loaded = store.load_all()
    assert len(loaded) == len(graphs)
    for original, back in zip(graphs, loaded):
        assert back.equals(original), (original.name, policy)
