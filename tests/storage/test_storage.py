"""Unit tests for serialization and the database facade."""

import pytest

from repro.core import Graph
from repro.datasets import dblp_collection, tiny_dblp
from repro.matching import optimized_options
from repro.storage import (
    GraphDatabase,
    collection_from_text,
    collection_to_text,
    graph_from_text,
    graph_to_text,
    load_collection,
    save_collection,
)


def rich_graph() -> Graph:
    g = Graph("G")
    g.tuple.set("kind", "demo")
    g.add_node("v1", tag="author", name="A", year=2006)
    g.add_node("v2", label="B")
    g.add_edge("v1", "v2", edge_id="e1", weight=3)
    return g


class TestSerialization:
    def test_graph_round_trip(self):
        g = rich_graph()
        assert graph_from_text(graph_to_text(g)).equals(g)

    def test_string_escaping(self):
        g = Graph("G")
        g.add_node("v1", text='quote " and \\ backslash')
        assert graph_from_text(graph_to_text(g)).equals(g)

    def test_collection_round_trip(self):
        c = dblp_collection(num_papers=10, seed=3)
        text = collection_to_text(c)
        back = collection_from_text(text)
        assert len(back) == len(c)
        for original, parsed in zip(c, back):
            assert original.equals(parsed)

    def test_collection_file_round_trip(self, tmp_path):
        path = tmp_path / "dblp.gql"
        c = tiny_dblp()
        save_collection(c, path)
        back = load_collection(path)
        assert len(back) == 2
        assert back[0].equals(c[0])

    def test_collection_rejects_non_graph_statements(self):
        with pytest.raises(ValueError):
            collection_from_text('C := graph {};')


class TestGraphDatabase:
    def test_register_and_doc(self):
        db = GraphDatabase()
        db.register("D", tiny_dblp())
        assert len(db.doc("D")) == 2
        assert db.names() == ["D"]

    def test_register_single_graph(self, paper_graph):
        db = GraphDatabase()
        db.register("net", paper_graph)
        assert len(db.doc("net")) == 1

    def test_unknown_doc(self):
        with pytest.raises(KeyError):
            GraphDatabase().doc("nope")

    def test_match_with_pattern_text(self, paper_graph):
        db = GraphDatabase()
        db.register("net", paper_graph)
        reports = db.match("net", """
            graph P { node u1 <label="A">; node u2 <label="B">;
                      edge e1 (u1, u2); }
        """, optimized_options())
        assert set(reports) == {"G"}
        assert len(reports["G"].mappings) == 2  # A1-B1 (x1) ... check below

    def test_matcher_cached(self, paper_graph):
        db = GraphDatabase()
        db.register("net", paper_graph)
        first = db.matcher_for(paper_graph)
        again = db.matcher_for(paper_graph)
        assert first is again

    def test_save_and_load(self, tmp_path):
        db = GraphDatabase()
        db.register("D", tiny_dblp())
        path = tmp_path / "d.gql"
        db.save("D", path)
        db2 = GraphDatabase()
        db2.load("D", path)
        assert len(db2.doc("D")) == 2

    def test_query_end_to_end(self):
        db = GraphDatabase()
        db.register("DBLP", tiny_dblp())
        env = db.query("""
            graph P { node v1 <author>; node v2 <author>; };
            C := graph {};
            for P exhaustive in doc("DBLP")
            let C := graph {
              graph C;
              node P.v1, P.v2;
              edge e1 (P.v1, P.v2);
              unify P.v1, C.v1 where P.v1.name=C.v1.name;
              unify P.v2, C.v2 where P.v2.name=C.v2.name;
            }
        """)
        assert env["C"].num_nodes() == 4
        assert env["C"].num_edges() == 4
