"""Unit and property tests for the page-based storage layer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.pager import (
    MAX_RECORD,
    PAGE_SIZE,
    PageFile,
    RecordFile,
    SlottedPage,
    StorageError,
)


class TestPageFile:
    def test_create_and_reopen(self, tmp_path):
        path = str(tmp_path / "test.db")
        with PageFile(path) as pf:
            page_no = pf.allocate_page()
            pf.write_page(page_no, b"x" * PAGE_SIZE)
        with PageFile(path) as pf:
            assert pf.read_page(page_no) == b"x" * PAGE_SIZE
            assert pf.num_pages == 2

    def test_free_list_reuse(self, tmp_path):
        with PageFile(str(tmp_path / "t.db")) as pf:
            a = pf.allocate_page()
            b = pf.allocate_page()
            pf.free_page(a)
            reused = pf.allocate_page()
            assert reused == a
            assert pf.allocate_page() == b + 1

    def test_cannot_free_header(self, tmp_path):
        with PageFile(str(tmp_path / "t.db")) as pf:
            with pytest.raises(StorageError):
                pf.free_page(0)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"NOPE" + b"\x00" * PAGE_SIZE)
        with pytest.raises(StorageError):
            PageFile(str(path))

    def test_wrong_page_size_rejected(self, tmp_path):
        with PageFile(str(tmp_path / "t.db")) as pf:
            page = pf.allocate_page()
            with pytest.raises(StorageError):
                pf.write_page(page, b"short")

    def test_out_of_range(self, tmp_path):
        with PageFile(str(tmp_path / "t.db")) as pf:
            with pytest.raises(StorageError):
                pf.read_page(99)


class TestSlottedPage:
    def test_insert_read(self):
        page = SlottedPage()
        slot_a = page.insert(b"hello")
        slot_b = page.insert(b"world!")
        assert page.read(slot_a) == b"hello"
        assert page.read(slot_b) == b"world!"

    def test_round_trip_through_bytes(self):
        page = SlottedPage()
        slot = page.insert(b"payload")
        reloaded = SlottedPage(page.to_bytes())
        assert reloaded.read(slot) == b"payload"

    def test_delete(self):
        page = SlottedPage()
        slot = page.insert(b"bye")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.read(slot)
        assert list(page.records()) == []

    def test_full_page_rejects(self):
        page = SlottedPage()
        assert page.insert(b"x" * MAX_RECORD) is not None
        assert page.insert(b"y") is None

    def test_free_space_accounting(self):
        page = SlottedPage()
        before = page.free_space()
        page.insert(b"12345")
        after = page.free_space()
        assert before - after == 5 + 4  # record + one slot entry

    def test_records_iteration_skips_deleted(self):
        page = SlottedPage()
        keep = page.insert(b"keep")
        drop = page.insert(b"drop")
        page.delete(drop)
        assert [(s, r) for s, r in page.records()] == [(keep, b"keep")]


class TestRecordFile:
    def test_insert_read_delete(self, tmp_path):
        with PageFile(str(tmp_path / "r.db")) as pf:
            rf = RecordFile(pf)
            rid = rf.insert(b"record one")
            assert rf.read(rid) == b"record one"
            rf.delete(rid)
            with pytest.raises(StorageError):
                rf.read(rid)

    def test_spills_to_new_pages(self, tmp_path):
        with PageFile(str(tmp_path / "r.db")) as pf:
            rf = RecordFile(pf)
            big = b"z" * 1000
            ids = [rf.insert(big) for _ in range(10)]
            pages = {rid[0] for rid in ids}
            assert len(pages) >= 3  # ~3 per page
            for rid in ids:
                assert rf.read(rid) == big

    def test_record_too_large(self, tmp_path):
        with PageFile(str(tmp_path / "r.db")) as pf:
            rf = RecordFile(pf)
            with pytest.raises(StorageError):
                rf.insert(b"x" * (MAX_RECORD + 1))

    def test_scan_order(self, tmp_path):
        with PageFile(str(tmp_path / "r.db")) as pf:
            rf = RecordFile(pf)
            payloads = [f"rec{i}".encode() for i in range(50)]
            for p in payloads:
                rf.insert(p)
            assert [r for _, r in rf.scan()] == payloads

    def test_reopen_and_append(self, tmp_path):
        path = str(tmp_path / "r.db")
        with PageFile(path) as pf:
            RecordFile(pf).insert(b"first")
        with PageFile(path) as pf:
            rf = RecordFile(pf)
            rf.insert(b"second")
            assert [r for _, r in rf.scan()] == [b"first", b"second"]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(min_size=0, max_size=300), max_size=60),
       st.integers(0, 10 ** 6))
def test_record_file_behaves_like_list(tmp_path_factory, payloads, seed):
    """Property: insert/delete/scan agree with an in-memory reference."""
    tmp = tmp_path_factory.mktemp("prop")
    rng = random.Random(seed)
    with PageFile(str(tmp / "p.db")) as pf:
        rf = RecordFile(pf)
        live = {}
        for payload in payloads:
            rid = rf.insert(payload)
            assert rid not in live
            live[rid] = payload
            if live and rng.random() < 0.25:
                victim = rng.choice(list(live))
                rf.delete(victim)
                del live[victim]
        assert dict(rf.scan()) == live
        for rid, payload in live.items():
            assert rf.read(rid) == payload
