"""Tests for database-level selection with automatic collection indexing."""

from repro.core import select as scan_select
from repro.datasets import (
    benzene_ring_pattern,
    molecule_collection,
    ring_with_side_chain_pattern,
    tiny_dblp,
)
from repro.storage import GraphDatabase


class TestDatabaseSelect:
    def test_large_collection_gets_index(self):
        db = GraphDatabase()
        db.register("mols", molecule_collection(num_molecules=80, seed=2))
        index = db.collection_index_for("mols")
        assert index is not None
        # cached: the same object comes back
        assert db.collection_index_for("mols") is index

    def test_small_collection_scans(self):
        db = GraphDatabase()
        db.register("d", tiny_dblp())
        assert db.collection_index_for("d") is None
        result = db.select("d", "graph P { node v <author name=\"A\">; }")
        assert len(result) == 2  # A appears in both papers

    def test_indexed_select_equals_scan(self):
        db = GraphDatabase()
        collection = molecule_collection(num_molecules=80, seed=2)
        db.register("mols", collection)
        for pattern in (benzene_ring_pattern(),
                        ring_with_side_chain_pattern("S")):
            indexed = db.select("mols", pattern, exhaustive=False)
            scanned = scan_select(collection, pattern, exhaustive=False)
            assert len(indexed) == len(scanned)

    def test_reregister_rebuilds_index(self):
        db = GraphDatabase()
        db.register("mols", molecule_collection(num_molecules=80, seed=2))
        first = db.collection_index_for("mols")
        db.register("mols", molecule_collection(num_molecules=80, seed=3))
        second = db.collection_index_for("mols")
        assert first is not second


class TestDatabasePersistence:
    def test_save_all_and_open(self, tmp_path, paper_graph):
        db = GraphDatabase()
        db.register("dblp", tiny_dblp())
        db.register("net", paper_graph)
        db.save_all(tmp_path / "dbdir")
        reopened = GraphDatabase.open(tmp_path / "dbdir")
        assert sorted(reopened.names()) == ["dblp", "net"]
        assert len(reopened.doc("dblp")) == 2
        assert reopened.doc("net")[0].equals(paper_graph)

    def test_directedness_preserved(self, tmp_path):
        from repro.core import Graph

        g = Graph("d", directed=True)
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b")
        db = GraphDatabase()
        db.register("dir", g)
        db.save_all(tmp_path / "dbdir")
        reopened = GraphDatabase.open(tmp_path / "dbdir")
        back = reopened.doc("dir")[0]
        assert back.directed
        assert back.has_edge("a", "b") and not back.has_edge("b", "a")

    def test_open_missing_manifest(self, tmp_path):
        import pytest

        with pytest.raises(FileNotFoundError):
            GraphDatabase.open(tmp_path)
