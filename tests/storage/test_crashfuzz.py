"""Tests for the crash-point fuzzing harness (small sweeps; the CI
``crash-recovery-fuzz`` job runs the full ≥200-point version)."""


from repro.storage.crashfuzz import (
    NEVER,
    CrashFuzzWorkload,
    fuzz,
    run_crash_point,
)
from repro.storage.faults import CrashPoint
from repro.storage.graphstore import GraphStore


def small_workload(seed: int = 3) -> CrashFuzzWorkload:
    return CrashFuzzWorkload(seed, docs=2, rounds=2, base_nodes=6)


def count_ops(workload: CrashFuzzWorkload, tmp_path) -> int:
    counter = CrashPoint(NEVER)
    store = GraphStore(str(tmp_path / "count.db"), durable=True,
                       fsync="never", crashpoint=counter)
    workload.run(store)
    store.close(checkpoint=False)
    return counter.ops


class TestWorkload:
    def test_deterministic(self):
        a = CrashFuzzWorkload(11, docs=2, rounds=3)
        b = CrashFuzzWorkload(11, docs=2, rounds=3)
        assert a.ops == b.ops
        for doc, round_no in a.ops:
            assert a.state_at(doc, round_no).equals(b.state_at(doc, round_no))

    def test_state_is_pure(self):
        """state_at(k) is a prefix-extension of state_at(k-1)'s history."""
        w = small_workload()
        g1 = w.state_at("doc0", 1)
        g2 = w.state_at("doc0", 2)
        assert "r1" in g2.node_ids()  # round 1's node survives round 2
        assert "r2" in g2.node_ids()
        assert "r2" not in g1.node_ids()
        assert g2.version > g1.version

    def test_expected_after_tracks_latest_round(self):
        w = small_workload()
        full = w.expected_after(len(w.ops))
        assert set(full) == {doc for doc, _ in w.ops}


class TestCrashSweep:
    def test_every_point_recovers(self, tmp_path):
        """A full sweep of a small workload: every crash point passes
        the committed-prefix contract."""
        workload = small_workload()
        total = count_ops(workload, tmp_path)
        assert total >= 10
        failures = []
        for point in range(1, total + 1):
            directory = tmp_path / f"p{point}"
            directory.mkdir()
            error = run_crash_point(workload, str(directory), point,
                                    fsync="never")
            if error is not None:
                failures.append(error)
        assert failures == []

    def test_fuzz_report_shape(self, tmp_path):
        report = fuzz(seed=5, min_points=1, directory=str(tmp_path),
                      fsync="never", verbose=False,
                      docs=2, rounds=2, base_nodes=6)
        assert report.ok
        assert report.points_run == report.total_ops > 0
        payload = report.to_dict()
        assert payload["failures"] == []
        assert payload["seed"] == 5

    def test_cli_entry(self, tmp_path, capsys):
        from repro.storage.crashfuzz import main

        report_path = tmp_path / "report.json"
        code = main(["--seed", "2", "--min-points", "1", "--max-points",
                     "8", "--fsync", "never", "--report", str(report_path)])
        assert code == 0
        assert report_path.exists()
        out = capsys.readouterr().out
        assert "PASS" in out
