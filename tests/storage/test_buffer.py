"""Unit tests for the buffer pool (LRU page cache)."""

import pytest

from repro.storage.pager import PAGE_SIZE, PageFile, RecordFile
from repro.storage.buffer import BufferPool


def filled_pagefile(tmp_path, pages=10):
    pf = PageFile(str(tmp_path / "buf.db"))
    for i in range(pages):
        page_no = pf.allocate_page()
        pf.write_page(page_no, bytes([i % 256]) * PAGE_SIZE)
    return pf


class TestCaching:
    def test_hit_after_first_read(self, tmp_path):
        with BufferPool(filled_pagefile(tmp_path), capacity=4) as pool:
            pool.read_page(1)
            pool.read_page(1)
            assert pool.stats.hits == 1
            assert pool.stats.misses == 1
            assert pool.stats.hit_rate == 0.5

    def test_lru_eviction(self, tmp_path):
        with BufferPool(filled_pagefile(tmp_path), capacity=2) as pool:
            pool.read_page(1)
            pool.read_page(2)
            pool.read_page(3)  # evicts page 1
            assert pool.stats.evictions == 1
            pool.read_page(2)  # still cached
            assert pool.stats.hits == 1
            pool.read_page(1)  # miss again
            assert pool.stats.misses == 4

    def test_recency_updated_on_hit(self, tmp_path):
        with BufferPool(filled_pagefile(tmp_path), capacity=2) as pool:
            pool.read_page(1)
            pool.read_page(2)
            pool.read_page(1)  # refresh page 1
            pool.read_page(3)  # should evict page 2, not 1
            pool.read_page(1)
            assert pool.stats.hits == 2

    def test_capacity_validated(self, tmp_path):
        with pytest.raises(ValueError):
            BufferPool(filled_pagefile(tmp_path), capacity=0)


class TestWriteBack:
    def test_dirty_page_flushed_on_close(self, tmp_path):
        path = tmp_path / "wb.db"
        pf = PageFile(str(path))
        page_no = pf.allocate_page()
        with BufferPool(pf, capacity=2) as pool:
            pool.write_page(page_no, b"\x07" * PAGE_SIZE)
        with PageFile(str(path)) as reopened:
            assert reopened.read_page(page_no) == b"\x07" * PAGE_SIZE

    def test_dirty_page_flushed_on_eviction(self, tmp_path):
        pf = filled_pagefile(tmp_path, pages=5)
        with BufferPool(pf, capacity=1) as pool:
            pool.write_page(1, b"\xaa" * PAGE_SIZE)
            pool.read_page(2)  # evicts dirty page 1
            assert pool.stats.writebacks == 1
            assert pool.read_page(1) == b"\xaa" * PAGE_SIZE

    def test_read_through_write_cache(self, tmp_path):
        pf = filled_pagefile(tmp_path)
        with BufferPool(pf, capacity=4) as pool:
            pool.write_page(1, b"\x11" * PAGE_SIZE)
            assert pool.read_page(1) == b"\x11" * PAGE_SIZE
            assert pool.stats.hits == 1  # served from the dirty frame


class TestInterfaceCompatibility:
    def test_record_file_over_buffer_pool(self, tmp_path):
        """RecordFile works unchanged on top of the buffer pool."""
        pf = PageFile(str(tmp_path / "rf.db"))
        with BufferPool(pf, capacity=4) as pool:
            rf = RecordFile(pool)
            ids = [rf.insert(f"rec{i}".encode()) for i in range(100)]
            for i, rid in enumerate(ids):
                assert rf.read(rid) == f"rec{i}".encode()
            assert pool.stats.hits > 0

    def test_clustered_layout_improves_hit_rate(self, tmp_path):
        """Sequential page access through a small pool beats random."""
        import random

        pf = filled_pagefile(tmp_path, pages=40)
        sequential = BufferPool(pf, capacity=4)
        for page_no in range(1, 41):
            for _ in range(3):
                sequential.read_page(page_no)
        rng = random.Random(0)
        random_pool = BufferPool(pf, capacity=4)
        accesses = [page for page in range(1, 41) for _ in range(3)]
        rng.shuffle(accesses)
        for page_no in accesses:
            random_pool.read_page(page_no)
        assert sequential.stats.hit_rate > random_pool.stats.hit_rate
        sequential.close()
