"""EXPLAIN / EXPLAIN ANALYZE over the paper's worked example."""

from __future__ import annotations

from repro.matching import GraphMatcher, MatchOptions, baseline_options
from repro.obs.explain import explain_document, explain_ground, render_text
from repro.storage import GraphDatabase


def test_explain_reports_per_node_retrieval_and_counts(paper_graph,
                                                       triangle_pattern):
    matcher = GraphMatcher(paper_graph)
    report = explain_ground(matcher, triangle_pattern)
    assert report["graph"] == "G"
    assert report["pattern_nodes"] == 3
    rows = {row["node"]: row for row in report["nodes"]}
    assert set(rows) == set(triangle_pattern.node_names())
    for row in rows.values():
        # two nodes per label in the paper graph; indexes must be used
        assert row["retrieval"] in ("attribute-index", "label-index")
        assert row["estimated_mates"] == 2
        assert row["feasible_mates"] == 2
        assert 0 <= row["refined"] <= row["after_pruning"] <= 2
    assert report["order_policy"] in ("greedy", "connected", "plan-cache")
    assert set(report["order"]) == set(rows)
    assert report["estimated_cost"] >= 0
    assert report["spaces"]["refined"] <= report["spaces"]["retrieved"]
    assert "actual" not in report


def test_baseline_options_skip_pruning_and_refinement(paper_graph,
                                                      triangle_pattern):
    matcher = GraphMatcher(paper_graph)
    report = explain_ground(matcher, triangle_pattern,
                            baseline_options())
    assert report["local"] == "none"
    assert report["refine"] is False
    assert report["order_policy"] == "connected"
    for row in report["nodes"]:
        # no local pruning: the feasible mates survive untouched
        assert row["after_pruning"] == row["feasible_mates"]
        assert row["refined"] == row["feasible_mates"]


def test_analyze_attaches_actuals_matching_a_real_run(paper_graph,
                                                      triangle_pattern):
    matcher = GraphMatcher(paper_graph)
    report = explain_ground(matcher, triangle_pattern, analyze=True)
    actual = report["actual"]
    # the only A-B-C triangle in the paper graph is (A1, B1, C2)
    assert actual["mappings"] == 1
    assert actual["outcome"]["status"] == "COMPLETE"
    assert actual["search"]["results"] == 1
    assert actual["search"]["candidates_tried"] >= 1
    assert set(actual["times"]) >= {"search"}
    assert actual["total_time"] >= 0
    assert actual["order"] == report["order"]


def test_explain_document_covers_every_graph(paper_graph, triangle_pattern):
    database = GraphDatabase()
    database.register("data", paper_graph)
    document = explain_document(database, "data", triangle_pattern,
                                MatchOptions(), analyze=True)
    assert document["document"] == "data"
    assert document["analyze"] is True
    assert document["derivations"] == 1
    assert len(document["graphs"]) == 1

    text = render_text(document)
    assert "graph G" in text
    assert "search order" in text
    assert "estimated cost" in text
    assert "actual: 1 mapping(s)" in text
    assert "phase timings" in text


def test_unlabeled_nodes_fall_back_to_scans(paper_graph):
    from repro.core import GroundPattern, SimpleMotif

    motif = SimpleMotif()
    motif.add_node("x")
    motif.add_node("y")
    motif.add_edge("x", "y")
    matcher = GraphMatcher(paper_graph)
    report = explain_ground(matcher, GroundPattern(motif))
    for row in report["nodes"]:
        assert row["retrieval"] == "scan"
        assert row["estimated_mates"] == paper_graph.num_nodes()
