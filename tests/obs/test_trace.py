"""Tracing spans: nesting, cross-thread adoption, offline rebuild."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.obs.trace import (
    NOOP_SPAN,
    JsonlSink,
    SpanCollector,
    find_spans,
    read_trace,
    span,
    span_tree,
    tracer,
)


def test_disabled_tracer_returns_the_noop_singleton():
    assert not tracer().enabled
    assert span("anything", key="value") is NOOP_SPAN
    assert tracer().start("root") is NOOP_SPAN
    # the no-op span is inert under every part of the span API
    with NOOP_SPAN as s:
        s.annotate(a=1)
        s.incr("n")
        s.finish()
    assert NOOP_SPAN.tags == {}
    assert NOOP_SPAN.counters == {}


def test_span_nesting_and_finish_order():
    collector = SpanCollector()
    with tracer().session(collector):
        with span("outer", who="test") as outer:
            with span("inner") as inner:
                inner.incr("items", 3)
            outer.annotate(done=True)
    names = [s.name for s in collector.spans]
    # children finish before their parents
    assert names == ["inner", "outer"]
    inner, outer = collector.spans
    assert inner.parent_id == outer.span_id
    assert inner.trace_id == outer.trace_id
    assert inner.counters == {"items": 3}
    assert outer.tags == {"who": "test", "done": True}
    assert inner.duration is not None and outer.duration is not None
    # the session restored the disabled state
    assert not tracer().enabled
    assert span("after") is NOOP_SPAN


def test_sibling_spans_share_the_parent_not_each_other():
    collector = SpanCollector()
    with tracer().session(collector):
        with span("parent") as parent:
            with span("first"):
                pass
            with span("second"):
                pass
    first = collector.by_name("first")[0]
    second = collector.by_name("second")[0]
    assert first.parent_id == parent.span_id
    assert second.parent_id == parent.span_id


def test_root_top_spans_aggregates_the_subtree():
    collector = SpanCollector()
    with tracer().session(collector):
        with span("request") as root:
            for _ in range(3):
                with span("step"):
                    pass
        top = root.top_spans()
    assert top["step"]["count"] == 3
    assert top["request"]["count"] == 1
    assert top["step"]["total"] >= 0


def test_thread_pool_workers_nest_under_their_own_request():
    """Concurrent requests on pool threads never interleave their trees.

    This is the service execution model: a root is started on the
    submitting thread, the worker adopts it via ``activate``, and every
    span the matcher emits must land under that root — not under
    whatever other request is running on a sibling thread.
    """
    collector = SpanCollector()
    barrier = threading.Barrier(4)

    def work(request_index: int, root):
        with tracer().activate(root):
            barrier.wait(timeout=10)  # all four requests in flight at once
            with span("execute", request=request_index):
                for step in range(3):
                    with span("step") as s:
                        s.annotate(request=request_index)
            root.finish()

    with tracer().session(collector):
        roots = [tracer().start("request", index=i) for i in range(4)]
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(work, i, root)
                       for i, root in enumerate(roots)]
            for future in futures:
                future.result(timeout=30)

    by_trace = {root.trace_id: root.tags["index"] for root in roots}
    executes = collector.by_name("execute")
    assert len(executes) == 4
    for execute in executes:
        # the execute span belongs to the request that spawned it
        assert by_trace[execute.trace_id] == execute.tags["request"]
    for step in collector.by_name("step"):
        assert by_trace[step.trace_id] == step.tags["request"]
    # every root aggregated exactly its own 3 steps, not a neighbour's
    for root in roots:
        assert root.top_spans()["step"]["count"] == 3


def test_activate_with_none_or_noop_is_inert():
    with tracer().activate(None) as target:
        assert target is None
    with tracer().activate(NOOP_SPAN) as target:
        assert target is NOOP_SPAN
        assert tracer().current() is None


def test_jsonl_roundtrip_rebuilds_the_tree(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path)
    try:
        with tracer().session(sink):
            with span("request", client="t") as root:
                with span("phase_one"):
                    with span("leaf") as leaf:
                        leaf.incr("rows", 7)
                with span("phase_two"):
                    pass
    finally:
        sink.close()

    records = read_trace(path)
    assert len(records) == 4
    forest = span_tree(records)
    assert [r["name"] for r in forest] == ["request"]
    request = forest[0]
    assert request["tags"] == {"client": "t"}
    assert [c["name"] for c in request["children"]] == ["phase_one",
                                                        "phase_two"]
    leaves = find_spans(forest, "leaf")
    assert len(leaves) == 1
    assert leaves[0]["counters"] == {"rows": 7}
    assert leaves[0]["parent"] == request["children"][0]["span"]
    assert root.span_id == request["span"]


def test_exception_inside_a_span_is_tagged_and_reraised():
    collector = SpanCollector()
    try:
        with tracer().session(collector):
            with span("failing"):
                raise RuntimeError("boom")
    except RuntimeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("the exception was swallowed")
    failing = collector.by_name("failing")[0]
    assert "RuntimeError: boom" in failing.tags["error"]


def test_broken_sink_never_breaks_the_traced_code():
    def bad_sink(finished):
        raise OSError("disk full")

    collector = SpanCollector()
    with tracer().session(bad_sink):
        with tracer().session(collector):
            with span("survives"):
                pass
    assert [s.name for s in collector.spans] == ["survives"]
