"""The keep-N-slowest slow-query log."""

from __future__ import annotations

from repro.obs.slowlog import MAX_QUERY_CHARS, SlowQueryEntry, SlowQueryLog


def entry(request_id: str, elapsed: float, **kwargs) -> SlowQueryEntry:
    return SlowQueryEntry(request_id=request_id, elapsed=elapsed, **kwargs)


def test_keeps_the_slowest_and_evicts_the_fastest():
    log = SlowQueryLog(capacity=2)
    assert log.record(entry("a", 0.5))
    assert log.record(entry("b", 0.1))
    assert log.record(entry("c", 0.9))       # evicts b (0.1)
    assert not log.record(entry("d", 0.05))  # faster than everything kept
    assert [e.request_id for e in log.entries()] == ["c", "a"]
    assert [e.elapsed for e in log.entries()] == [0.9, 0.5]
    assert len(log) == 2
    assert log.recorded == 3
    assert log.dropped == 2  # b's eviction and d's rejection


def test_threshold_filters_fast_requests():
    log = SlowQueryLog(capacity=8, threshold=0.1)
    assert not log.record(entry("fast", 0.05))
    assert log.record(entry("exactly", 0.1))  # at-threshold is kept
    assert log.record(entry("slow", 0.2))
    assert [e.request_id for e in log.entries()] == ["slow", "exactly"]


def test_capacity_zero_disables_the_log():
    log = SlowQueryLog(capacity=0)
    assert not log.record(entry("x", 10.0))
    assert log.entries() == []
    assert len(log) == 0


def test_ties_break_and_nothing_crashes_on_equal_elapsed():
    log = SlowQueryLog(capacity=3)
    for name in ("a", "b", "c", "d"):
        log.record(entry(name, 0.5))
    assert len(log) == 3
    assert all(e.elapsed == 0.5 for e in log.entries())


def test_snapshot_and_render_are_slowest_first():
    log = SlowQueryLog(capacity=4)
    log.record(entry("q1", 0.2, status="COMPLETE", cache="miss",
                     query="graph P { node a; }",
                     spans={"match.query": {"total": 0.15, "count": 1}}))
    log.record(entry("q2", 0.7, status="TIMED_OUT",
                     reason="deadline exceeded",
                     degradation=["fallback order"]))
    snap = log.snapshot()
    assert [row["request_id"] for row in snap] == ["q2", "q1"]
    assert snap[0]["reason"] == "deadline exceeded"
    assert snap[1]["spans"]["match.query"]["count"] == 1
    lines = log.render_lines()
    assert "TIMED_OUT" in lines[0] and "q2" in lines[0]
    assert "match.query" in lines[1]
    log.clear()
    assert log.entries() == []


def test_oversized_query_text_is_truncated():
    log = SlowQueryLog(capacity=1)
    log.record(entry("big", 1.0, query="x" * (MAX_QUERY_CHARS + 100)))
    stored = log.entries()[0].query
    assert len(stored) == MAX_QUERY_CHARS + 3
    assert stored.endswith("...")
