"""Metrics registry, histogram bucketing and the Prometheus renderer."""

from __future__ import annotations

import math
import random
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
    render_json,
    render_prometheus,
)


# -- histogram --------------------------------------------------------------


def _naive_bucket_index(bounds, value):
    """The old linear scan: first bound with value <= bound."""
    for i, bound in enumerate(bounds):
        if value <= bound:
            return i
    return len(bounds)


def test_bisect_bucketing_matches_the_linear_reference():
    rng = random.Random(42)
    bounds = list(DEFAULT_LATENCY_BUCKETS)
    hist = Histogram(buckets=bounds)
    reference = [0] * (len(bounds) + 1)
    values = [rng.uniform(0, 12) for _ in range(500)]
    values += list(bounds)  # exact boundary hits are the tricky case
    values += [0.0, 1e-9]
    for value in values:
        hist.observe(value)
        reference[_naive_bucket_index(bounds, value)] += 1
    assert hist.counts == reference
    assert hist.total == len(values)
    assert math.isclose(hist.sum, sum(values))


def test_cumulative_buckets_are_monotone_and_end_at_total():
    hist = Histogram(buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        hist.record(value)  # the back-compat alias
    pairs = hist.cumulative_buckets()
    assert pairs == [(0.1, 1), (1.0, 3), (float("inf"), 4)]
    snap = hist.snapshot()
    assert snap["count"] == 4
    assert snap["buckets"] == {"0.1": 1, "1": 3, "+Inf": 4}
    assert snap["max"] == 5.0
    assert snap["p50"] == 1.0


def test_histogram_under_concurrent_writers_loses_nothing():
    hist = Histogram(buckets=(0.5,))
    registry = MetricsRegistry()
    counter = registry.counter("c_total")
    writers, per_writer = 8, 2000

    def write():
        for i in range(per_writer):
            hist.observe(0.25 if i % 2 == 0 else 0.75)
            counter.inc()

    threads = [threading.Thread(target=write) for _ in range(writers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    expected = writers * per_writer
    assert hist.total == expected
    assert hist.counts == [expected // 2, expected // 2]
    assert counter.value == expected


# -- registry ---------------------------------------------------------------


def test_registry_get_or_create_and_label_sets():
    registry = MetricsRegistry()
    a = registry.counter("repro_requests_total", "Requests.")
    assert registry.counter("repro_requests_total") is a
    ok = registry.counter("repro_outcomes_total",
                          labels={"status": "COMPLETE"})
    bad = registry.counter("repro_outcomes_total",
                           labels={"status": "TIMED_OUT"})
    assert ok is not bad
    ok.inc(2)
    families = {f["name"]: f for f in registry.collect()}
    samples = families["repro_outcomes_total"]["samples"]
    assert {tuple(s["labels"].items()): s["value"] for s in samples} == {
        (("status", "COMPLETE"),): 2,
        (("status", "TIMED_OUT"),): 0,
    }


def test_registry_rejects_kind_mismatch_and_bad_names():
    registry = MetricsRegistry()
    registry.counter("repro_thing_total")
    with pytest.raises(ValueError):
        registry.gauge("repro_thing_total")
    with pytest.raises(ValueError):
        registry.counter("0bad-name")


def test_callback_gauge_reads_live_and_survives_failures():
    registry = MetricsRegistry()
    box = {"value": 3}
    gauge = registry.gauge("repro_box", fn=lambda: box["value"])
    assert gauge.value == 3
    box["value"] = 9
    assert gauge.value == 9
    broken = registry.gauge("repro_broken",
                            fn=lambda: 1 / 0)
    assert broken.value == 0  # a failing callback must not break scrapes


# -- renderers --------------------------------------------------------------


def test_prometheus_render_parse_roundtrip():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "Requests.").inc(5)
    registry.gauge("repro_in_flight", "In flight.").set(2)
    registry.counter("repro_outcomes_total",
                     labels={"status": "COMPLETE"}).inc(4)
    hist = registry.histogram("repro_latency_seconds", "Latency.",
                              buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 3.0):
        hist.observe(value)

    text = render_prometheus(registry)
    assert "# TYPE repro_latency_seconds histogram" in text
    parsed = parse_prometheus_text(text)
    assert parsed["repro_requests_total"] == 5
    assert parsed["repro_in_flight"] == 2
    assert parsed['repro_outcomes_total{status="COMPLETE"}'] == 4
    assert parsed['repro_latency_seconds_bucket{le="0.1"}'] == 1
    assert parsed['repro_latency_seconds_bucket{le="1"}'] == 2
    assert parsed['repro_latency_seconds_bucket{le="+Inf"}'] == 3
    assert parsed["repro_latency_seconds_count"] == 3
    assert math.isclose(parsed["repro_latency_seconds_sum"], 3.55)

    document = render_json(registry)
    assert document["repro_requests_total"]["samples"][0]["value"] == 5
    snap = document["repro_latency_seconds"]["samples"][0]["value"]
    assert snap["buckets"]["+Inf"] == 3


def test_parser_rejects_malformed_exposition():
    with pytest.raises(ValueError):
        parse_prometheus_text("repro_total not-a-number\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("this is { garbage\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("# TYPE repro_total nonsense\n")
    with pytest.raises(ValueError):
        parse_prometheus_text('repro_total{bad labels} 1\n')
