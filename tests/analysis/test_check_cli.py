"""The ``repro-gql check`` subcommand end to end."""

import json

import pytest

from repro.cli import main
from repro.core import Graph, GraphCollection
from repro.storage import save_collection


@pytest.fixture
def labeled_file(tmp_path):
    graph = Graph("G")
    graph.add_node("n1", label="A", weight=3)
    graph.add_node("n2", label="B", weight=4)
    graph.add_edge("n1", "n2")
    path = tmp_path / "data.gql"
    save_collection(GraphCollection([graph]), path)
    return str(path)


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestCheck:
    def test_clean_file_passes(self, tmp_path, capsys):
        query = write(tmp_path, "ok.gql",
                      "graph P { node v1; node v2; edge e1 (v1, v2); }")
        assert main(["check", query]) == 0
        out = capsys.readouterr().out
        assert "1 file(s) checked, 0 finding(s)" in out

    def test_errors_fail_with_positions(self, tmp_path, capsys):
        query = write(tmp_path, "bad.gql",
                      "graph P { node v1; } where Q.x > 1")
        assert main(["check", query]) == 1
        out = capsys.readouterr().out
        assert "error GQL001" in out
        assert "bad.gql:1:" in out
        assert "errors present" in out

    def test_warnings_pass_without_strict(self, tmp_path, capsys):
        query = write(tmp_path, "warn.gql",
                      "graph P { node v1; node v2; }")
        assert main(["check", query]) == 0
        assert "warning GQL009" in capsys.readouterr().out

    def test_strict_promotes_warnings(self, tmp_path):
        query = write(tmp_path, "warn.gql",
                      "graph P { node v1; node v2; }")
        assert main(["check", "--strict", query]) == 1

    def test_syntax_error_is_gql000(self, tmp_path, capsys):
        query = write(tmp_path, "syn.gql", "graph P { node v1")
        assert main(["check", query]) == 1
        assert "GQL000" in capsys.readouterr().out

    def test_json_output_shape(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.gql",
                    "graph P { node v1; } where Q.x > 1")
        ok = write(tmp_path, "ok.gql", "graph P { node v1; }")
        assert main(["check", "--json", bad, ok]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert set(payload["files"]) == {bad, ok}
        (finding,) = [d for d in payload["files"][bad]
                      if d["code"] == "GQL001"]
        assert finding["severity"] == "error"
        assert finding["line"] == 1
        assert payload["files"][ok] == []

    def test_schema_from_enables_collection_checks(self, tmp_path,
                                                   labeled_file, capsys):
        query = write(tmp_path, "typo.gql",
                      "graph P { node v1 where v1.wieght > 2; }")
        assert main(["check", query]) == 0  # no schema, no finding
        capsys.readouterr()
        assert main(["check", "--schema-from", labeled_file, query]) == 0
        assert "GQL004" in capsys.readouterr().out

    def test_missing_file_is_a_usage_error(self, capsys):
        assert main(["check", "/nonexistent/q.gql"]) == 2
        assert "error" in capsys.readouterr().err


class TestExplainDiagnostics:
    def test_explain_renders_diagnostics(self, tmp_path, labeled_file,
                                         capsys):
        query = write(tmp_path, "q.gql",
                      'graph P { node v1 where v1.label = "Z"; }')
        assert main(["explain", labeled_file, "--pattern", query]) == 0
        out = capsys.readouterr().out
        assert "diagnostic: warning GQL005" in out
