"""Golden corpus: Datalog safety and stratification (DLG001–DLG003)."""

from repro.analysis import Severity, analyze_datalog
from repro.analysis.datalog import analyze_rule
from repro.datalog.ast import Atom, BodyLiteral, Builtin, Program, Rule, Var


def only(diags, code):
    hits = [d for d in diags if d.code == code]
    assert hits, f"expected {code}, got {[d.code for d in diags]}"
    return hits


X, Y, Z = Var("X"), Var("Y"), Var("Z")


class TestSafety:
    def test_unbound_head_variable_is_dlg001(self):
        rule = Rule(Atom("p", [X, Y]), [BodyLiteral(Atom("e", [X]))])
        (d,) = only(analyze_rule(rule), "DLG001")
        assert d.severity is Severity.ERROR
        assert "Y" in d.message
        assert d.span is None  # programmatic rules carry no position

    def test_loose_negated_variable_is_dlg002(self):
        rule = Rule(Atom("p", [X]), [
            BodyLiteral(Atom("e", [X])),
            BodyLiteral(Atom("q", [Y]), negated=True),
        ])
        (d,) = only(analyze_rule(rule), "DLG002")
        assert "negated atom" in d.message and "Y" in d.message

    def test_loose_builtin_variable_is_dlg002(self):
        rule = Rule(Atom("p", [X]), [
            BodyLiteral(Atom("e", [X])),
            Builtin("<", Z, 3),
        ])
        (d,) = only(analyze_rule(rule), "DLG002")
        assert "builtin" in d.message and "Z" in d.message

    def test_safe_rule_is_clean(self):
        rule = Rule(Atom("p", [X]), [
            BodyLiteral(Atom("e", [X, Y])),
            BodyLiteral(Atom("q", [Y]), negated=True),
            Builtin("<", X, 10),
        ])
        assert analyze_rule(rule) == []

    def test_program_reports_every_unsafe_rule(self):
        program = Program(rules=[
            Rule(Atom("p", [X]), []),
            Rule(Atom("q", [Y]), []),
        ])
        diags = analyze_datalog(program)
        assert len(only(diags, "DLG001")) == 2


class TestStratification:
    def test_negation_cycle_is_dlg003(self):
        program = Program(rules=[
            Rule(Atom("p", []), [BodyLiteral(Atom("q", []), negated=True)]),
            Rule(Atom("q", []), [BodyLiteral(Atom("p", []), negated=True)]),
        ])
        (d,) = only(analyze_datalog(program), "DLG003")
        assert d.severity is Severity.ERROR

    def test_stratified_negation_is_clean(self):
        program = Program(rules=[
            Rule(Atom("base", [X]), [BodyLiteral(Atom("e", [X]))]),
            Rule(Atom("top", [X]), [
                BodyLiteral(Atom("e", [X])),
                BodyLiteral(Atom("base", [X]), negated=True),
            ]),
        ])
        assert analyze_datalog(program) == []

    def test_stratification_waits_for_safety(self):
        # an unsafe rule suppresses the stratification pass (its result
        # would be meaningless) — only the safety error is reported
        program = Program(rules=[
            Rule(Atom("p", [X]), [BodyLiteral(Atom("p", [X]), negated=True)]),
        ])
        diags = analyze_datalog(program)
        assert "DLG003" not in {d.code for d in diags}
        only(diags, "DLG001")
        only(diags, "DLG002")
