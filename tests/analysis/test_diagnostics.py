"""Diagnostic values: wire form, rendering, ordering, the code registry."""

from repro.analysis import (
    CODES,
    Diagnostic,
    Severity,
    errors_only,
    has_errors,
    promote_warnings,
    sort_diagnostics,
    to_wire,
)
from repro.analysis.diagnostics import Span


class TestCodeRegistry:
    def test_every_code_has_a_fixed_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            assert isinstance(severity, Severity)
            assert title
        assert {"GQL000", "GQL001", "GQL009", "DLG003"} <= set(CODES)

    def test_severity_ranks_order(self):
        assert (Severity.ERROR.rank > Severity.WARNING.rank
                > Severity.HINT.rank)


class TestWireForm:
    def test_round_trip_with_span(self):
        d = Diagnostic("GQL001", Severity.ERROR, "unbound 'Q'", Span(3, 7))
        data = d.to_dict()
        assert data == {"code": "GQL001", "severity": "error",
                        "message": "unbound 'Q'", "line": 3, "column": 7}
        assert Diagnostic.from_dict(data) == d

    def test_unknown_span_omitted_from_wire(self):
        d = Diagnostic("DLG001", Severity.ERROR, "unsafe")
        assert "line" not in d.to_dict()
        assert Diagnostic.from_dict(d.to_dict()).span is None

    def test_to_wire_is_a_list_of_dicts(self):
        wire = to_wire([Diagnostic("GQL008", Severity.HINT, "redundant")])
        assert wire == [{"code": "GQL008", "severity": "hint",
                         "message": "redundant"}]


class TestRender:
    def test_with_position(self):
        d = Diagnostic("GQL004", Severity.WARNING, "typo?", Span(2, 5))
        assert d.render("q.gql") == "q.gql:2:5: warning GQL004 typo?"

    def test_without_position(self):
        d = Diagnostic("DLG003", Severity.ERROR, "cycle")
        assert d.render() == "<query>: error DLG003 cycle"


class TestFilters:
    def test_errors_only_and_has_errors(self):
        diags = [
            Diagnostic("GQL008", Severity.HINT, "h"),
            Diagnostic("GQL004", Severity.WARNING, "w"),
            Diagnostic("GQL001", Severity.ERROR, "e"),
        ]
        assert has_errors(diags)
        assert [d.code for d in errors_only(diags)] == ["GQL001"]
        assert not has_errors(diags[:2])

    def test_promote_warnings_leaves_hints_alone(self):
        diags = [
            Diagnostic("GQL008", Severity.HINT, "h"),
            Diagnostic("GQL004", Severity.WARNING, "w"),
        ]
        promoted = promote_warnings(diags)
        assert promoted[0].severity is Severity.HINT
        assert promoted[1].severity is Severity.ERROR
        assert promoted[1].code == "GQL004"

    def test_sort_is_source_order_with_unknown_spans_last(self):
        a = Diagnostic("GQL004", Severity.WARNING, "w", Span(5, 1))
        b = Diagnostic("GQL001", Severity.ERROR, "e", Span(2, 3))
        c = Diagnostic("DLG001", Severity.ERROR, "no span")
        assert sort_diagnostics([a, c, b]) == [b, a, c]
