"""The lock-discipline lint (tools/lint_concurrency.py)."""

import importlib.util
import textwrap
from pathlib import Path

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "lint_concurrency.py"
_spec = importlib.util.spec_from_file_location("lint_concurrency", _TOOL)
lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint)


def findings(src):
    return lint.check_source(textwrap.dedent(src))


def codes(src):
    return [code for _, code, _ in findings(src)]


class TestDetection:
    def test_sleep_under_lock_is_c001(self):
        assert codes("""
            import time
            def f(self):
                with self._lock:
                    time.sleep(1)
        """) == ["C001"]

    def test_unbounded_wait_under_lock_is_c002(self):
        assert codes("""
            def f(self):
                with self._lock:
                    self._done.wait()
        """) == ["C002"]

    def test_bounded_wait_is_allowed(self):
        assert codes("""
            def f(self):
                with self._lock:
                    self._done.wait(0.1)
                    self._queue.get(timeout=2)
                    self._other.get(block=False)
        """) == []

    def test_socket_io_under_lock_is_c003(self):
        assert codes("""
            def f(self):
                with self._lock:
                    data = self._sock.recv(4096)
        """) == ["C003"]

    def test_subprocess_under_lock_is_c003(self):
        assert codes("""
            import subprocess
            def f(self):
                with self._lock:
                    subprocess.run(["true"])
        """) == ["C003"]

    def test_nested_lock_is_c004(self):
        assert codes("""
            def f(self):
                with self._lock:
                    with self._counter_lock:
                        pass
        """) == ["C004"]

    def test_mutex_names_count_as_locks(self):
        assert codes("""
            import time
            def f(self):
                with registry.mutex:
                    time.sleep(1)
        """) == ["C001"]


class TestScoping:
    def test_blocking_outside_a_lock_is_fine(self):
        assert codes("""
            import time
            def f(self):
                time.sleep(1)
                with self._lock:
                    self.n += 1
        """) == []

    def test_non_lock_context_managers_do_not_count(self):
        assert codes("""
            import time
            def f(self):
                with open("x") as fh, self._tracer.span("s"):
                    time.sleep(1)
        """) == []

    def test_nested_function_under_lock_runs_later(self):
        assert codes("""
            import time
            def f(self):
                with self._lock:
                    def callback():
                        time.sleep(1)
                    self._callbacks.append(callback)
        """) == []

    def test_waiver_comment_suppresses_the_finding(self):
        assert codes("""
            def f(self):
                with self._lock:
                    self._done.wait()  # lint: allow-blocking-under-lock - safe
        """) == []

    def test_findings_carry_line_numbers(self):
        hits = findings("""
            import time
            def f(self):
                with self._lock:
                    time.sleep(1)
        """)
        (lineno, code, message) = hits[0]
        assert code == "C001" and "sleep" in message
        assert lineno == 5


class TestRealLayers:
    def test_service_and_cluster_are_clean(self):
        root = _TOOL.parents[1] / "src" / "repro"
        for layer in ("service", "cluster"):
            for path in sorted((root / layer).rglob("*.py")):
                assert lint.check_file(path) == [], f"findings in {path}"
