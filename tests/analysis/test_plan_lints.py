"""Golden corpus: plan lints (GQL009 connectivity, GQL010 index hint)."""

from repro.analysis import Severity, analyze_pattern_text


def only(diags, code):
    hits = [d for d in diags if d.code == code]
    assert hits, f"expected {code}, got {[d.code for d in diags]}"
    return hits


def codes(diags):
    return {d.code for d in diags}


class TestConnectivity:
    def test_two_isolated_nodes_are_gql009(self):
        diags = analyze_pattern_text("graph P { node v1; node v2; }")
        (d,) = only(diags, "GQL009")
        assert d.severity is Severity.WARNING
        assert "cartesian" in d.message

    def test_edge_connects_the_components(self):
        diags = analyze_pattern_text(
            "graph P { node v1; node v2; edge e1 (v1, v2); }")
        assert "GQL009" not in codes(diags)

    def test_cross_predicate_connects_the_components(self):
        diags = analyze_pattern_text(
            "graph P { node v1; node v2; } where v1.x = v2.x")
        assert "GQL009" not in codes(diags)

    def test_unify_connects_the_components(self):
        diags = analyze_pattern_text(
            "graph P { node v1; node v2; unify v1, v2; }")
        assert "GQL009" not in codes(diags)

    def test_single_node_pattern_is_clean(self):
        diags = analyze_pattern_text("graph P { node v1; }")
        assert "GQL009" not in codes(diags)


class TestIndexHint:
    def test_disjunctive_node_filter_is_gql010(self):
        diags = analyze_pattern_text(
            'graph P { node v1 where v1.label = "A" | v1.label = "B"; }')
        (d,) = only(diags, "GQL010")
        assert d.severity is Severity.HINT
        assert "disjunction" in d.message

    def test_conjunctive_filter_rides_the_index(self):
        diags = analyze_pattern_text(
            'graph P { node v1 where v1.label = "A" & v1.weight > 2; }')
        assert "GQL010" not in codes(diags)

    def test_non_indexable_alternative_is_not_flagged(self):
        # one branch compares two attributes — no rewrite would make the
        # alternation indexable, so the hint stays quiet
        diags = analyze_pattern_text(
            'graph P { node v1 where v1.label = "A" | v1.x = v1.y; }')
        assert "GQL010" not in codes(diags)
