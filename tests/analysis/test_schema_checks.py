"""Golden corpus: schema-aware diagnostics (GQL004–GQL006)."""

import pytest

from repro.analysis import (
    Severity,
    analyze_pattern_text,
    infer_schema,
    schema_for_document,
    type_bucket,
)
from repro.core.graph import Graph


@pytest.fixture
def schema():
    graph = Graph("G")
    graph.add_node("n1", label="A", weight=3)
    graph.add_node("n2", label="B", weight=4)
    graph.add_edge("n1", "n2", kind="knows")
    return infer_schema(graph)


def only(diags, code):
    hits = [d for d in diags if d.code == code]
    assert hits, f"expected {code}, got {[d.code for d in diags]}"
    return hits


class TestInference:
    def test_buckets(self):
        assert type_bucket(3) == "number"
        assert type_bucket(2.5) == "number"
        assert type_bucket(True) == "number"
        assert type_bucket("x") == "str"
        assert type_bucket(None) == "other"

    def test_observed_shape(self, schema):
        assert schema.graphs == 1
        assert schema.node_attrs["weight"] == {"number"}
        assert schema.edge_attrs["kind"] == {"str"}
        assert schema.labels == {"A", "B"}
        assert schema.known_attr("label") and not schema.known_attr("size")

    def test_schema_for_missing_document_is_none(self):
        class FakeDb:
            def doc(self, name):
                raise KeyError(name)

        assert schema_for_document(FakeDb(), "nope") is None


class TestUnknownAttribute:
    def test_typo_is_gql004(self, schema):
        diags = analyze_pattern_text(
            "graph P { node v1 where v1.wieght > 2; }", schema=schema)
        (d,) = only(diags, "GQL004")
        assert d.severity is Severity.WARNING
        assert "'wieght'" in d.message
        assert d.span is not None and d.span.known

    def test_known_attribute_is_clean(self, schema):
        diags = analyze_pattern_text(
            "graph P { node v1 where v1.weight > 2; }", schema=schema)
        assert not [d for d in diags if d.code == "GQL004"]

    def test_no_schema_means_no_gql004(self):
        diags = analyze_pattern_text(
            "graph P { node v1 where v1.wieght > 2; }")
        assert not [d for d in diags if d.code == "GQL004"]


class TestUnknownTagOrLabel:
    def test_unknown_label_value_is_gql005(self, schema):
        diags = analyze_pattern_text(
            'graph P { node v1 where v1.label = "Z"; }', schema=schema)
        (d,) = only(diags, "GQL005")
        assert d.severity is Severity.WARNING
        assert "'Z'" in d.message

    def test_known_label_value_is_clean(self, schema):
        diags = analyze_pattern_text(
            'graph P { node v1 where v1.label = "A"; }', schema=schema)
        assert not [d for d in diags if d.code == "GQL005"]


class TestTypeConfusion:
    def test_number_vs_string_is_gql006(self, schema):
        diags = analyze_pattern_text(
            'graph P { node v1 where v1.weight = "heavy"; }', schema=schema)
        (d,) = only(diags, "GQL006")
        assert d.severity is Severity.WARNING
        assert "'weight'" in d.message

    def test_matching_buckets_are_clean(self, schema):
        diags = analyze_pattern_text(
            "graph P { node v1 where v1.weight > 2; }", schema=schema)
        assert not [d for d in diags if d.code == "GQL006"]
