"""Golden corpus: predicate analysis (GQL007, GQL008, GQL011)."""

from repro.analysis import Severity, analyze_pattern_text


def only(diags, code):
    hits = [d for d in diags if d.code == code]
    assert hits, f"expected {code}, got {[d.code for d in diags]}"
    return hits


def codes(diags):
    return {d.code for d in diags}


class TestConstantFolding:
    def test_always_false_conjunct_is_gql007(self):
        diags = analyze_pattern_text(
            "graph P { node v1; } where 1 > 2")
        (d,) = only(diags, "GQL007")
        assert d.severity is Severity.WARNING
        assert "always false" in d.message

    def test_always_true_conjunct_is_gql008(self):
        diags = analyze_pattern_text(
            "graph P { node v1; } where 2 > 1")
        (d,) = only(diags, "GQL008")
        assert d.severity is Severity.HINT
        assert "always true" in d.message

    def test_both_in_one_conjunction(self):
        diags = analyze_pattern_text(
            "graph P { node v1; } where 1 > 2 & 2 > 1")
        assert {"GQL007", "GQL008"} <= codes(diags)

    def test_non_constant_conjunct_is_clean(self):
        diags = analyze_pattern_text(
            "graph P { node v1; } where v1.weight > 2")
        assert codes(diags).isdisjoint({"GQL007", "GQL008"})

    def test_node_level_predicates_are_folded_too(self):
        diags = analyze_pattern_text(
            "graph P { node v1 where 1 = 2; }")
        only(diags, "GQL007")


class TestEmptyRange:
    def test_contradictory_bounds_are_gql011(self):
        diags = analyze_pattern_text(
            "graph P { node v1; } where v1.x > 5 & v1.x < 3")
        (d,) = only(diags, "GQL011")
        assert d.severity is Severity.WARNING
        assert "v1.x" in d.message

    def test_contradictory_equalities_are_gql011(self):
        diags = analyze_pattern_text(
            "graph P { node v1; } where v1.x = 1 & v1.x = 2")
        only(diags, "GQL011")

    def test_satisfiable_range_is_clean(self):
        diags = analyze_pattern_text(
            "graph P { node v1; } where v1.x > 3 & v1.x < 5")
        assert "GQL011" not in codes(diags)

    def test_touching_inclusive_bounds_are_clean(self):
        diags = analyze_pattern_text(
            "graph P { node v1; } where v1.x >= 3 & v1.x <= 3")
        assert "GQL011" not in codes(diags)

    def test_touching_exclusive_bounds_are_empty(self):
        diags = analyze_pattern_text(
            "graph P { node v1; } where v1.x > 3 & v1.x < 4")
        # integers in (3, 4) exist in the rationals — the analyzer only
        # flags bounds that exclude every value, so this stays clean
        assert "GQL011" not in codes(diags)

    def test_bounds_on_different_attributes_are_independent(self):
        diags = analyze_pattern_text(
            "graph P { node v1; } where v1.x > 5 & v1.y < 3")
        assert "GQL011" not in codes(diags)
