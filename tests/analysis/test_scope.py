"""Golden corpus: syntax and scope diagnostics (GQL000–GQL003)."""

from repro.analysis import (
    Severity,
    analyze_pattern_text,
    analyze_text,
)


def only(diags, code):
    """The findings with *code*, asserting there is at least one."""
    hits = [d for d in diags if d.code == code]
    assert hits, f"expected {code}, got {[d.code for d in diags]}"
    return hits


def codes(diags):
    return {d.code for d in diags}


class TestSyntax:
    def test_unterminated_pattern_is_gql000(self):
        diags = analyze_text("graph P { node v1")
        (d,) = only(diags, "GQL000")
        assert d.severity is Severity.ERROR
        assert d.span is not None and d.span.line == 1

    def test_clean_program_has_no_findings(self):
        assert analyze_text("graph P { node v1; node v2; "
                            "edge e1 (v1, v2); };") == []


class TestUnbound:
    def test_unknown_dotted_root_is_gql001(self):
        diags = analyze_pattern_text(
            "graph P { node v1; } where Q.x > 1")
        (d,) = only(diags, "GQL001")
        assert d.severity is Severity.ERROR
        assert "'Q'" in d.message
        assert d.span is not None and d.span.known

    def test_standalone_member_ref_is_gql001(self):
        diags = analyze_pattern_text(
            "graph P { node v1; graph Missing as M; edge e1 (v1, M.v); }")
        (d,) = only(diags, "GQL001")
        assert "Missing" in d.message

    def test_member_ref_resolved_by_env_is_clean(self):
        # the service passes no env, but program mode does: a name the
        # environment supplies is not an error
        from repro.analysis import analyze_pattern
        from repro.lang.parser import parse_graph_decl

        decl = parse_graph_decl(
            "graph P { node v1; graph Known as M; edge e1 (v1, M.v); }")
        diags = analyze_pattern(decl, env=("Known",))
        assert "GQL001" not in codes(diags)

    def test_bare_single_segment_roots_are_runtime_lookups(self):
        # bare names fall back to attribute lookups, never an error
        diags = analyze_pattern_text(
            'graph P { node v1 where label = "A"; }')
        assert "GQL001" not in codes(diags)

    def test_element_names_are_in_scope_for_graph_where(self):
        diags = analyze_pattern_text(
            "graph P { node v1; node v2; edge e1 (v1, v2); } "
            "where v1.weight > v2.weight")
        assert "GQL001" not in codes(diags)


class TestShadowing:
    def test_redefining_a_used_pattern_is_gql002(self):
        diags = analyze_text(
            "graph P { node v1; };\n"
            "graph Q { graph P as X; edge e1 (X.v1, w); };\n"
            "graph P { node v3; };")
        (d,) = only(diags, "GQL002")
        assert d.severity is Severity.WARNING
        assert "'P'" in d.message
        assert d.span is not None and d.span.line == 3  # at the shadower

    def test_redefining_an_unused_pattern_is_gql003(self):
        diags = analyze_text(
            "graph P { node v1; };\n"
            "graph P { node v2; };")
        (d,) = only(diags, "GQL003")
        assert d.severity is Severity.HINT
        assert d.span is not None and d.span.line == 1  # at the dead one
