"""Bootstrap plumbing: ready-line failures carry the child's output.

Boot failures in CI are only diagnosable if the raised error itself
shows what the child printed — the subprocess and its pipe are gone by
the time anyone can attach.  These tests use tiny real subprocesses
(``python -c``), not shard servers, so they stay fast.
"""

import subprocess
import sys

import pytest

from repro.cluster.bootstrap import wait_ready


def spawn(code: str) -> subprocess.Popen:
    return subprocess.Popen([sys.executable, "-c", code],
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)


def test_child_exit_error_includes_the_captured_output_tail():
    process = spawn("print('booting'); print('fatal: no store'); "
                    "raise SystemExit(3)")
    with pytest.raises(RuntimeError) as excinfo:
        wait_ready(process, timeout=10.0)
    message = str(excinfo.value)
    assert "rc=3" in message
    assert "booting" in message and "fatal: no store" in message


def test_timeout_error_includes_the_captured_output_tail():
    process = spawn("import time; print('still warming up', flush=True); "
                    "time.sleep(30)")
    try:
        with pytest.raises(TimeoutError) as excinfo:
            wait_ready(process, timeout=0.5)
        assert "still warming up" in str(excinfo.value)
    finally:
        process.kill()
        process.wait()


def test_only_the_last_lines_are_kept():
    lines = "".join(f"print('line {i}')\n" for i in range(60))
    process = spawn(lines + "raise SystemExit(1)")
    with pytest.raises(RuntimeError) as excinfo:
        wait_ready(process, timeout=10.0)
    message = str(excinfo.value)
    assert "line 59" in message  # the tail survived
    assert "line 0" not in message  # the head was dropped


def test_a_clean_ready_line_still_parses():
    process = spawn("print('prose banner'); "
                    "print('ready {\"host\": \"h\", \"port\": 7}')")
    try:
        payload = wait_ready(process, timeout=10.0)
        assert payload == {"host": "h", "port": 7}
    finally:
        process.wait()
