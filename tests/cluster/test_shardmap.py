"""ShardMap: deterministic placement, bounded moves, versioning."""

import pytest

from repro.cluster import ShardMap

IDS = [f"mol{i}" for i in range(200)]


def test_placement_is_deterministic_across_instances():
    first = ShardMap(["a", "b", "c"])
    second = ShardMap(["a", "b", "c"])
    assert [first.owner(g) for g in IDS] == [second.owner(g) for g in IDS]


def test_split_covers_every_shard_and_every_graph():
    shard_map = ShardMap(["a", "b", "c"])
    split = shard_map.split(IDS)
    assert set(split) == {"a", "b", "c"}  # empty shards stay visible
    assert sorted(g for owned in split.values() for g in owned) == \
        sorted(IDS)
    for shard, owned in split.items():
        assert all(shard_map.owner(g) == shard for g in owned)


def test_distribution_is_roughly_even():
    split = ShardMap(["a", "b", "c", "d"], replicas=64).split(IDS)
    sizes = sorted(len(owned) for owned in split.values())
    assert sizes[0] >= len(IDS) // 12  # no starved shard


def test_adding_a_shard_moves_only_a_fraction():
    shard_map = ShardMap(["a", "b", "c"])
    version = shard_map.version
    moves = shard_map.add_shard("d", known_ids=IDS)
    assert shard_map.version == version + 1
    assert 0 < len(moves) < len(IDS) // 2  # ~1/4 expected, not a reshuffle
    assert all(m.dst == "d" for m in moves)  # only the newcomer gains
    assert all(shard_map.owner(m.graph_id) == "d" for m in moves)


def test_removing_a_shard_reassigns_exactly_its_graphs():
    shard_map = ShardMap(["a", "b", "c"])
    owned_by_c = shard_map.split(IDS)["c"]
    moves = shard_map.remove_shard("c", known_ids=IDS)
    assert sorted(m.graph_id for m in moves) == sorted(owned_by_c)
    assert all(m.src == "c" and m.dst in ("a", "b") for m in moves)
    assert "c" not in shard_map.shards


def test_move_pins_win_over_the_ring_and_bump_the_version():
    shard_map = ShardMap(["a", "b"])
    graph = next(g for g in IDS if shard_map.owner(g) == "a")
    version = shard_map.version
    moves = shard_map.move(graph, "b")
    assert [m.to_dict() for m in moves] == \
        [{"graph": graph, "from": "a", "to": "b"}]
    assert shard_map.owner(graph) == "b"
    assert shard_map.version == version + 1
    # moving a graph to where it already lives is a no-op, version too
    assert shard_map.move(graph, "b") == []
    assert shard_map.version == version + 1


def test_removing_a_shard_dissolves_its_pins():
    shard_map = ShardMap(["a", "b", "c"])
    graph = next(g for g in IDS if shard_map.owner(g) != "c")
    shard_map.move(graph, "c")
    shard_map.remove_shard("c", known_ids=[graph])
    assert shard_map.owner(graph) in ("a", "b")


def test_serialization_round_trip_preserves_placement():
    shard_map = ShardMap(["a", "b", "c"], replicas=32)
    shard_map.move(IDS[0], "b")
    back = ShardMap.from_dict(shard_map.to_dict())
    assert back.version == shard_map.version
    assert [back.owner(g) for g in IDS] == \
        [shard_map.owner(g) for g in IDS]


def test_owners_returns_r_distinct_shards_with_the_primary_first():
    shard_map = ShardMap(["a", "b", "c", "d"], replication_factor=3)
    for graph in IDS:
        prefs = shard_map.owners(graph)
        assert len(prefs) == 3
        assert len(set(prefs)) == 3  # distinct processes, or the
        assert prefs[0] == shard_map.owner(graph)  # replica is useless


def test_every_graph_of_a_slice_shares_one_preference_list():
    # failover moves whole slices: every graph owned by shard s must
    # agree on where that slice's replicas live
    shard_map = ShardMap(["a", "b", "c", "d"], replication_factor=2)
    for shard, owned in shard_map.split(IDS).items():
        expected = shard_map.preference_list(shard)
        assert expected[0] == shard
        for graph in owned:
            assert shard_map.owners(graph) == expected


def test_replication_factor_above_shard_count_caps_at_every_shard():
    shard_map = ShardMap(["a", "b", "c"], replication_factor=7)
    for graph in IDS[:20]:
        assert sorted(shard_map.owners(graph)) == ["a", "b", "c"]


def test_move_pins_only_the_primary_not_the_replicas():
    shard_map = ShardMap(["a", "b", "c"], replication_factor=2)
    graph = next(g for g in IDS if shard_map.owner(g) == "a")
    target = next(s for s in ("b", "c")
                  if s != shard_map.owners(graph)[1])
    shard_map.move(graph, target)
    prefs = shard_map.owners(graph)
    assert prefs[0] == target  # the pin moved the primary...
    assert prefs == shard_map.preference_list(target)  # ...and the
    # replicas follow the NEW primary's ring successors, not the pin


def test_replication_round_trips_through_serialization():
    shard_map = ShardMap(["a", "b", "c"], replication_factor=2)
    back = ShardMap.from_dict(shard_map.to_dict())
    assert back.replication_factor == 2
    assert [back.owners(g) for g in IDS[:20]] == \
        [shard_map.owners(g) for g in IDS[:20]]


def test_preference_list_rejects_unknown_shards():
    with pytest.raises(ValueError):
        ShardMap(["a", "b"]).preference_list("nope")
    with pytest.raises(ValueError):
        ShardMap(["a"], replication_factor=0)


def test_invalid_constructions_are_rejected():
    with pytest.raises(ValueError):
        ShardMap([])
    with pytest.raises(ValueError):
        ShardMap(["a", "a"])
    with pytest.raises(ValueError):
        ShardMap(["a"], replicas=0)
    shard_map = ShardMap(["a", "b"])
    with pytest.raises(ValueError):
        shard_map.move("g", "nope")
    with pytest.raises(ValueError):
        shard_map.add_shard("a")
    with pytest.raises(ValueError):
        shard_map.remove_shard("nope")
    shard_map.remove_shard("b")
    with pytest.raises(ValueError):
        shard_map.remove_shard("a")  # never below one shard
