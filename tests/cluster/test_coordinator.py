"""ClusterCoordinator semantics against scripted in-process shards.

The coordinator's client factory is the seam: these tests substitute
scripted fakes for TCP clients, so merge order, PARTIAL accounting,
hedging, breakers and cache invalidation are each exercised
deterministically — no sockets, no subprocesses, no sleeps beyond the
hedge timer itself.
"""

import threading
import time

from repro.cluster import ClusterCoordinator, ShardMap
from repro.runtime import Outcome, QueryOutcome
from repro.service.client import ClientReply

QUERY = 'graph P { node a <label="C">; }'


class ScriptedShard:
    """One fake shard endpoint: scripted rows, status, delay or error."""

    def __init__(self, rows=2, status=Outcome.COMPLETE, delay=0.0,
                 error=None, reason=""):
        self.rows = rows
        self.status = status
        self.delay = delay
        self.error = error
        self.reason = reason
        self.connections = 0
        self._lock = threading.Lock()


class ScriptedClient:
    def __init__(self, shard: ScriptedShard):
        self.shard = shard
        with shard._lock:
            shard.connections += 1
            self.connection = shard.connections

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None

    def query(self, query_text, **kwargs):
        shard = self.shard
        delay = shard.delay
        if callable(delay):
            delay = delay(self.connection)
        if delay:
            time.sleep(delay)
        if shard.error is not None:
            raise shard.error
        rows = [{"graph": f"g{i}", "nodes": {}, "edges": {}}
                for i in range(shard.rows)]
        limit = kwargs.get("limit")
        if limit is not None:
            rows = rows[:limit]
        return ClientReply(
            ok=True, request_id="r", results=rows,
            outcome=QueryOutcome(status=shard.status,
                                 reason=shard.reason,
                                 steps=10, results=len(rows)))


def build(shards, **kwargs):
    """A coordinator over scripted shards keyed ``shard0..shardN``."""
    table = {f"shard{i}": shard for i, shard in enumerate(shards)}
    endpoints = {sid: ("scripted", i) for i, sid in enumerate(table)}

    def factory(host, port, timeout=None, client_name=""):
        return ScriptedClient(table[f"shard{port}"])

    coordinator = ClusterCoordinator(
        ShardMap(list(table)), endpoints,
        client_factory=factory, timeout=kwargs.pop("timeout", 5.0),
        **kwargs)
    return coordinator


def test_all_shards_merge_to_complete_with_full_accounting():
    coordinator = build([ScriptedShard(rows=2), ScriptedShard(rows=3)])
    reply = coordinator.query(QUERY)
    assert reply.outcome.status is Outcome.COMPLETE
    assert reply.submitted == 2 and reply.merged == 2 and reply.failed == 0
    assert len(reply.results) == 5
    assert {row["shard"] for row in reply.results} == {"shard0", "shard1"}
    detail = reply.outcome.detail
    assert detail["submitted"] == detail["merged"] + detail["failed"]
    assert detail["shards"]["shard1"]["rows"] == 3
    assert reply.outcome.steps == 20  # per-shard accounting is summed


def test_one_dead_shard_degrades_to_partial_not_failure():
    dead = ScriptedShard(error=ConnectionRefusedError("refused"))
    coordinator = build([ScriptedShard(rows=2), dead,
                         ScriptedShard(rows=1)])
    reply = coordinator.query(QUERY)
    assert reply.outcome.status is Outcome.PARTIAL
    assert reply.error is None  # rows were merged: partial, not failed
    assert reply.submitted == 3 == reply.merged + reply.failed
    assert reply.merged == 2 and reply.failed == 1
    assert len(reply.results) == 3
    entry = reply.outcome.detail["shards"]["shard1"]
    assert entry["merged"] is False and "refused" in entry["error"]
    assert "shard1" in reply.outcome.reason


def test_all_shards_down_is_partial_with_an_error():
    coordinator = build([ScriptedShard(error=ConnectionError("down")),
                         ScriptedShard(error=ConnectionError("down"))])
    reply = coordinator.query(QUERY)
    assert reply.outcome.status is Outcome.PARTIAL
    assert reply.merged == 0 and reply.failed == 2
    assert reply.results == []
    assert reply.error is not None


def test_shed_and_timed_out_shards_count_as_failed():
    coordinator = build([
        ScriptedShard(rows=2),
        ScriptedShard(rows=0, status=Outcome.SHED, reason="breaker open"),
        ScriptedShard(rows=0, status=Outcome.TIMED_OUT,
                      reason="deadline expired"),
    ])
    reply = coordinator.query(QUERY)
    assert reply.outcome.status is Outcome.PARTIAL
    assert reply.merged == 1 and reply.failed == 2
    shards = reply.outcome.detail["shards"]
    assert shards["shard1"]["error"] == "breaker open"
    assert shards["shard2"]["status"] == "TIMED_OUT"


def test_global_limit_truncates_across_shards():
    coordinator = build([ScriptedShard(rows=4), ScriptedShard(rows=4)])
    reply = coordinator.query(QUERY, limit=5)
    assert reply.outcome.status is Outcome.TRUNCATED
    assert len(reply.results) == 5
    assert reply.merged == 2  # truncation is not failure
    # deterministic merge order: shard0's rows first
    assert [row["shard"] for row in reply.results] == \
        ["shard0"] * 4 + ["shard1"]


def test_hedge_races_a_second_connection_and_the_fast_one_wins():
    # first connection to the slow shard stalls; the hedge answers
    slow = ScriptedShard(rows=1,
                         delay=lambda conn: 2.0 if conn == 1 else 0.0)
    coordinator = build([ScriptedShard(rows=1), slow],
                        hedge_after=0.1, timeout=5.0)
    started = time.monotonic()
    reply = coordinator.query(QUERY)
    elapsed = time.monotonic() - started
    assert reply.outcome.status is Outcome.COMPLETE
    assert reply.merged == 2
    assert elapsed < 1.5  # did not wait out the stalled connection
    assert slow.connections == 2
    entry = reply.outcome.detail["shards"]["shard1"]
    assert entry["hedged"] is True and entry["hedge_won"] is True
    counters = coordinator.stats()["counters"]
    assert counters["hedges"] == 1 and counters["hedge_wins"] == 1


def test_breaker_opens_after_repeated_failures_and_skips_the_shard():
    dead = ScriptedShard(error=ConnectionError("down"))
    coordinator = build([ScriptedShard(rows=1), dead],
                        breaker_threshold=2, breaker_cooldown=30.0,
                        result_cache_size=0)
    coordinator.query(QUERY)
    coordinator.query(QUERY)  # two failures: the breaker opens
    assert dead.connections == 2
    reply = coordinator.query(QUERY)
    assert dead.connections == 2  # skipped: no third connection
    assert reply.outcome.status is Outcome.PARTIAL
    entry = reply.outcome.detail["shards"]["shard1"]
    assert "breaker open" in entry["error"]
    assert coordinator.stats()["counters"]["breaker_skips"] == 1


def test_result_cache_hits_and_move_invalidation():
    shard = ScriptedShard(rows=2)
    coordinator = build([shard, ScriptedShard(rows=1)])
    cold = coordinator.query(QUERY)
    warm = coordinator.query(QUERY)
    assert cold.cache == "miss" and warm.cache == "hit"
    assert warm.results == cold.results
    assert shard.connections == 1  # the hit never touched the shard
    # an explicit placement change invalidates the affected entries
    graph = warm.results[0]["graph"]
    src = coordinator.shard_map.owner(graph)
    dst = next(s for s in coordinator.shard_map.shards if s != src)
    moves = coordinator.move(graph, dst)
    assert [m.dst for m in moves] == [dst]
    after = coordinator.query(QUERY)
    assert after.cache == "miss"
    assert shard.connections == 2


def test_partial_replies_are_never_cached():
    flaky = ScriptedShard(error=ConnectionError("down"))
    coordinator = build([ScriptedShard(rows=1), flaky])
    first = coordinator.query(QUERY)
    assert first.partial
    flaky.error = None  # the shard recovers
    second = coordinator.query(QUERY)
    assert second.cache == "miss"
    assert second.outcome.status is Outcome.COMPLETE
    assert second.merged == 2


def test_targeted_fanout_touches_only_the_owning_shard():
    shards = [ScriptedShard(rows=1), ScriptedShard(rows=1)]
    coordinator = build(shards)
    reply = coordinator.query(QUERY, shard_ids=["shard1"],
                              use_cache=False)
    assert reply.submitted == 1
    assert shards[0].connections == 0
    assert shards[1].connections == 1
    assert [row["shard"] for row in reply.results] == ["shard1"]
