"""ClusterCoordinator semantics against scripted in-process shards.

The coordinator's client factory is the seam: these tests substitute
scripted fakes for TCP clients, so merge order, PARTIAL accounting,
hedging, breakers and cache invalidation are each exercised
deterministically — no sockets, no subprocesses, no sleeps beyond the
hedge timer itself.
"""

import threading
import time

from repro.cluster import ClusterCoordinator, ShardMap
from repro.runtime import Outcome, QueryOutcome
from repro.service.client import ClientReply

QUERY = 'graph P { node a <label="C">; }'


class ScriptedShard:
    """One fake shard endpoint: scripted rows, status, delay or error."""

    def __init__(self, rows=2, status=Outcome.COMPLETE, delay=0.0,
                 error=None, reason="", version=None):
        self.rows = rows
        self.status = status
        self.delay = delay
        self.error = error
        self.reason = reason
        self.version = version
        self.connections = 0
        self.query_connections = 0
        self.cancelled = []
        self.documents = []
        self._lock = threading.Lock()


class ScriptedClient:
    def __init__(self, shard: ScriptedShard):
        self.shard = shard
        with shard._lock:
            shard.connections += 1
            self.connection = shard.connections

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None

    def cancel(self, target, reason=""):
        with self.shard._lock:
            self.shard.cancelled.append(target)
        return True

    def query(self, query_text, document="data", **kwargs):
        shard = self.shard
        with shard._lock:
            shard.query_connections += 1
            query_connection = shard.query_connections
            shard.documents.append(document)
        delay = shard.delay
        if callable(delay):
            delay = delay(query_connection)
        if delay:
            time.sleep(delay)
        if shard.error is not None:
            raise shard.error
        rows = [{"graph": f"g{i}", "nodes": {}, "edges": {}}
                for i in range(shard.rows)]
        limit = kwargs.get("limit")
        if limit is not None:
            rows = rows[:limit]
        return ClientReply(
            ok=True, request_id="r", results=rows,
            outcome=QueryOutcome(status=shard.status,
                                 reason=shard.reason,
                                 steps=10, results=len(rows)),
            versions=({document: shard.version}
                      if shard.version is not None else {}))


def build(shards, replication=1, **kwargs):
    """A coordinator over scripted shards keyed ``shard0..shardN``."""
    table = {f"shard{i}": shard for i, shard in enumerate(shards)}
    endpoints = {sid: ("scripted", i) for i, sid in enumerate(table)}

    def factory(host, port, timeout=None, client_name=""):
        return ScriptedClient(table[f"shard{port}"])

    coordinator = ClusterCoordinator(
        ShardMap(list(table), replication_factor=replication), endpoints,
        client_factory=factory, timeout=kwargs.pop("timeout", 5.0),
        **kwargs)
    return coordinator


def test_invalid_query_is_rejected_before_fan_out():
    shards = [ScriptedShard(rows=2), ScriptedShard(rows=3)]
    coordinator = build(shards)
    reply = coordinator.query("graph P { node v1; } where Q.x > 1")
    assert reply.outcome.status is Outcome.REJECTED
    assert reply.outcome.reason == "invalid_query"
    diags = reply.outcome.detail["diagnostics"]
    assert diags and diags[0]["code"] == "GQL001"
    # no shard ever saw the query
    assert all(shard.query_connections == 0 for shard in shards)
    assert coordinator.stats()["counters"]["invalid_queries"] == 1


def test_all_shards_merge_to_complete_with_full_accounting():
    coordinator = build([ScriptedShard(rows=2), ScriptedShard(rows=3)])
    reply = coordinator.query(QUERY)
    assert reply.outcome.status is Outcome.COMPLETE
    assert reply.submitted == 2 and reply.merged == 2 and reply.failed == 0
    assert len(reply.results) == 5
    assert {row["shard"] for row in reply.results} == {"shard0", "shard1"}
    detail = reply.outcome.detail
    assert detail["submitted"] == detail["merged"] + detail["failed"]
    assert detail["shards"]["shard1"]["rows"] == 3
    assert reply.outcome.steps == 20  # per-shard accounting is summed


def test_one_dead_shard_degrades_to_partial_not_failure():
    dead = ScriptedShard(error=ConnectionRefusedError("refused"))
    coordinator = build([ScriptedShard(rows=2), dead,
                         ScriptedShard(rows=1)])
    reply = coordinator.query(QUERY)
    assert reply.outcome.status is Outcome.PARTIAL
    assert reply.error is None  # rows were merged: partial, not failed
    assert reply.submitted == 3 == reply.merged + reply.failed
    assert reply.merged == 2 and reply.failed == 1
    assert len(reply.results) == 3
    entry = reply.outcome.detail["shards"]["shard1"]
    assert entry["merged"] is False and "refused" in entry["error"]
    assert "shard1" in reply.outcome.reason


def test_all_shards_down_is_partial_with_an_error():
    coordinator = build([ScriptedShard(error=ConnectionError("down")),
                         ScriptedShard(error=ConnectionError("down"))])
    reply = coordinator.query(QUERY)
    assert reply.outcome.status is Outcome.PARTIAL
    assert reply.merged == 0 and reply.failed == 2
    assert reply.results == []
    assert reply.error is not None


def test_shed_and_timed_out_shards_count_as_failed():
    coordinator = build([
        ScriptedShard(rows=2),
        ScriptedShard(rows=0, status=Outcome.SHED, reason="breaker open"),
        ScriptedShard(rows=0, status=Outcome.TIMED_OUT,
                      reason="deadline expired"),
    ])
    reply = coordinator.query(QUERY)
    assert reply.outcome.status is Outcome.PARTIAL
    assert reply.merged == 1 and reply.failed == 2
    shards = reply.outcome.detail["shards"]
    assert shards["shard1"]["error"] == "breaker open"
    assert shards["shard2"]["status"] == "TIMED_OUT"


def test_global_limit_truncates_across_shards():
    coordinator = build([ScriptedShard(rows=4), ScriptedShard(rows=4)])
    reply = coordinator.query(QUERY, limit=5)
    assert reply.outcome.status is Outcome.TRUNCATED
    assert len(reply.results) == 5
    assert reply.merged == 2  # truncation is not failure
    # deterministic merge order: shard0's rows first
    assert [row["shard"] for row in reply.results] == \
        ["shard0"] * 4 + ["shard1"]


def test_hedge_races_a_second_connection_and_the_fast_one_wins():
    # first connection to the slow shard stalls; the hedge answers
    slow = ScriptedShard(rows=1,
                         delay=lambda conn: 2.0 if conn == 1 else 0.0)
    coordinator = build([ScriptedShard(rows=1), slow],
                        hedge_after=0.1, timeout=5.0)
    started = time.monotonic()
    reply = coordinator.query(QUERY)
    elapsed = time.monotonic() - started
    assert reply.outcome.status is Outcome.COMPLETE
    assert reply.merged == 2
    assert elapsed < 1.5  # did not wait out the stalled connection
    assert slow.query_connections == 2
    entry = reply.outcome.detail["shards"]["shard1"]
    assert entry["hedged"] is True and entry["hedge_won"] is True
    counters = coordinator.stats()["counters"]
    assert counters["hedges"] == 1 and counters["hedge_wins"] == 1
    # the losing (stalled) request was cancelled, not left to burn a
    # shard worker: the loser's id reached the shard's cancel op
    assert counters["hedge_cancelled"] == 1
    assert len(slow.cancelled) == 1
    assert slow.cancelled[0].endswith("-primary")


def test_breaker_opens_after_repeated_failures_and_skips_the_shard():
    dead = ScriptedShard(error=ConnectionError("down"))
    coordinator = build([ScriptedShard(rows=1), dead],
                        breaker_threshold=2, breaker_cooldown=30.0,
                        result_cache_size=0)
    coordinator.query(QUERY)
    coordinator.query(QUERY)  # two failures: the breaker opens
    assert dead.connections == 2
    reply = coordinator.query(QUERY)
    assert dead.connections == 2  # skipped: no third connection
    assert reply.outcome.status is Outcome.PARTIAL
    entry = reply.outcome.detail["shards"]["shard1"]
    assert "breaker open" in entry["error"]
    assert coordinator.stats()["counters"]["breaker_skips"] == 1


def test_result_cache_hits_and_move_invalidation():
    shard = ScriptedShard(rows=2)
    coordinator = build([shard, ScriptedShard(rows=1)])
    cold = coordinator.query(QUERY)
    warm = coordinator.query(QUERY)
    assert cold.cache == "miss" and warm.cache == "hit"
    assert warm.results == cold.results
    assert shard.connections == 1  # the hit never touched the shard
    # an explicit placement change invalidates the affected entries
    graph = warm.results[0]["graph"]
    src = coordinator.shard_map.owner(graph)
    dst = next(s for s in coordinator.shard_map.shards if s != src)
    moves = coordinator.move(graph, dst)
    assert [m.dst for m in moves] == [dst]
    after = coordinator.query(QUERY)
    assert after.cache == "miss"
    assert shard.connections == 2


def test_partial_replies_are_never_cached():
    flaky = ScriptedShard(error=ConnectionError("down"))
    coordinator = build([ScriptedShard(rows=1), flaky])
    first = coordinator.query(QUERY)
    assert first.partial
    flaky.error = None  # the shard recovers
    second = coordinator.query(QUERY)
    assert second.cache == "miss"
    assert second.outcome.status is Outcome.COMPLETE
    assert second.merged == 2


def test_failover_serves_a_dead_slice_from_its_replica():
    # R=2 over two shards: each slice's preference list is both shards,
    # so killing one process must not lose any slice
    dead = ScriptedShard(error=ConnectionRefusedError("refused"))
    live = ScriptedShard(rows=3)
    table = {"shard0": dead, "shard1": live}
    coordinator = build([dead, live], replication=2,
                        result_cache_size=0)
    victim_slice = next(s for s in table
                        if coordinator.shard_map.preference_list(s)[0]
                        == "shard0")
    reply = coordinator.query(QUERY)
    assert reply.outcome.status is Outcome.COMPLETE  # zero PARTIAL
    assert reply.failed == 0
    entry = reply.outcome.detail["shards"][victim_slice]
    assert entry["merged"] is True
    assert entry["replica_used"] == "shard1"
    assert entry["failovers"] == 1
    assert coordinator.stats()["counters"]["failovers"] == 1
    # the replica was asked for the *slice* document, not its own
    assert f"data@{victim_slice}" in live.documents


def test_exhausted_preference_list_degrades_to_partial():
    coordinator = build(
        [ScriptedShard(error=ConnectionError("down0")),
         ScriptedShard(error=ConnectionError("down1")),
         ScriptedShard(rows=2)],
        replication=2, result_cache_size=0)
    # find a slice whose two replicas are the two dead processes
    doomed = [s for s in ("shard0", "shard1", "shard2")
              if set(coordinator.shard_map.preference_list(s)) ==
              {"shard0", "shard1"}]
    reply = coordinator.query(QUERY)
    for shard in doomed:
        entry = reply.outcome.detail["shards"][shard]
        assert entry["merged"] is False
        # both replicas appear in the error trail
        assert "down0" in entry["error"] and "down1" in entry["error"]
    if doomed:
        assert reply.outcome.status is Outcome.PARTIAL


def test_shed_replica_fails_over_but_app_error_is_definitive():
    shedding = ScriptedShard(rows=0, status=Outcome.SHED,
                             reason="queue full")
    healthy = ScriptedShard(rows=2)
    coordinator = build([shedding, healthy], replication=2,
                        result_cache_size=0)
    slice0 = next(s for s in ("shard0", "shard1")
                  if coordinator.shard_map.preference_list(s)[0]
                  == "shard0")
    reply = coordinator.query(QUERY)
    entry = reply.outcome.detail["shards"][slice0]
    # SHED is transient: the replica absorbed it
    assert entry["merged"] is True and entry["replica_used"] == "shard1"
    # an application error is deterministic: no failover, it surfaces
    class AppErrorClient(ScriptedClient):
        def query(self, query_text, **kwargs):
            reply = super().query(query_text, **kwargs)
            reply.error = "syntax error at line 1"
            return reply
    broken = build([ScriptedShard(rows=1), ScriptedShard(rows=1)],
                   replication=2, result_cache_size=0)
    broken.client_factory = lambda host, port, timeout=None, \
        client_name="": AppErrorClient(ScriptedShard(rows=1))
    reply = broken.query(QUERY)
    for entry in reply.outcome.detail["shards"].values():
        assert entry["merged"] is False
        assert "syntax error" in entry["error"]
        assert "failovers" not in entry  # definitive on the primary


def test_replica_version_divergence_is_counted_not_merged_over():
    primary = ScriptedShard(rows=2, version=5)
    secondary = ScriptedShard(rows=2, version=7)  # stale/ahead replica
    coordinator = build([primary, secondary], replication=2,
                        result_cache_size=0, breaker_threshold=0)
    slice0 = next(s for s in ("shard0", "shard1")
                  if coordinator.shard_map.preference_list(s)[0]
                  == "shard0")
    first = coordinator.query(QUERY)
    assert first.failed == 0
    assert coordinator.stats()["counters"].get(
        "version_divergence", 0) == 0
    primary.error = ConnectionError("down")  # force the failover read
    second = coordinator.query(QUERY)
    assert second.failed == 0
    entry = second.outcome.detail["shards"][slice0]
    assert entry["replica_used"] == "shard1" and entry["version"] == 7
    assert coordinator.stats()["counters"]["version_divergence"] >= 1
    # the rows still merged: divergence is observed, never a failure
    assert second.outcome.status is Outcome.COMPLETE


def test_move_invalidates_exactly_the_affected_cache_entries():
    shards = [ScriptedShard(rows=1), ScriptedShard(rows=1),
              ScriptedShard(rows=1)]
    coordinator = build(shards)
    graph = "mol-under-test"
    src = coordinator.shard_map.owner(graph)
    others = [s for s in coordinator.shard_map.shards if s != src]
    dst, untouched = others[0], others[1]
    for target in (src, dst, untouched):
        assert coordinator.query(QUERY, shard_ids=[target]).cache \
            == "miss"
    # all three targeted entries are now warm
    for target in (src, dst, untouched):
        assert coordinator.query(QUERY, shard_ids=[target]).cache \
            == "hit"
    coordinator.move(graph, dst)
    # entries touching the move's src/dst dropped; the bystander lives
    assert coordinator.query(QUERY, shard_ids=[src]).cache == "miss"
    assert coordinator.query(QUERY, shard_ids=[dst]).cache == "miss"
    assert coordinator.query(QUERY, shard_ids=[untouched]).cache \
        == "hit"


def test_out_of_band_map_version_bump_flushes_the_whole_cache():
    coordinator = build([ScriptedShard(rows=1), ScriptedShard(rows=1)])
    assert coordinator.query(QUERY).cache == "miss"
    assert coordinator.query(QUERY).cache == "hit"
    # a mutation NOT routed through coordinator.move: no move list, so
    # every entry is suspect
    coordinator.shard_map.move("some-graph", "shard1")
    if coordinator.shard_map.version == coordinator._map_version_seen:
        coordinator.shard_map.version += 1  # the move was a no-op pin
    assert coordinator.query(QUERY).cache == "miss"


def test_replicated_invalidation_drops_entries_via_replica_overlap():
    shards = [ScriptedShard(rows=1) for _ in range(3)]
    coordinator = build(shards, replication=2)
    target = coordinator.shard_map.shards[0]
    replica = coordinator.shard_map.preference_list(target)[1]
    assert coordinator.query(QUERY, shard_ids=[target]).cache == "miss"
    assert coordinator.query(QUERY, shard_ids=[target]).cache == "hit"
    # invalidating the REPLICA must drop the entry targeted at the
    # primary: a failover could have served it from there
    coordinator.invalidate_shards({replica})
    assert coordinator.query(QUERY, shard_ids=[target]).cache == "miss"


def test_targeted_fanout_touches_only_the_owning_shard():
    shards = [ScriptedShard(rows=1), ScriptedShard(rows=1)]
    coordinator = build(shards)
    reply = coordinator.query(QUERY, shard_ids=["shard1"],
                              use_cache=False)
    assert reply.submitted == 1
    assert shards[0].connections == 0
    assert shards[1].connections == 1
    assert [row["shard"] for row in reply.results] == ["shard1"]
