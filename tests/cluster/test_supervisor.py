"""ShardSupervisor semantics against fake processes.

The supervisor's decisions — restart, back off, abandon, flag
unresponsive — are driven here through ``poll_once()`` with scripted
process and probe fakes, so every branch runs deterministically without
subprocesses or the watch thread.  (Real SIGKILL-and-recover runs live
in ``tests/integration/test_cluster_soak.py``.)
"""

import time

import pytest

from repro.cluster.supervisor import ShardSupervisor
from repro.obs.metrics import MetricsRegistry


class FakeShard:
    """Mimics the ShardProcess surface the supervisor touches."""

    class _Process:
        def __init__(self, shard):
            self.shard = shard
            self.pid = 12345

        def poll(self):
            return None if self.shard.alive else -9

    def __init__(self, alive=True, respawn_error=None):
        self.alive = alive
        self.restarts = 0
        self.respawn_error = respawn_error
        self.respawns = 0
        self.host, self.port = "127.0.0.1", 1111
        self.data_path = "/tmp/fake.store"
        self.process = self._Process(self)

    def respawn(self, ready_timeout=30.0):
        self.respawns += 1
        if self.respawn_error is not None:
            raise self.respawn_error
        self.alive = True
        self.port += 1  # a fresh OS-assigned port every boot
        self.restarts += 1
        return {"host": self.host, "port": self.port}


class FakeCluster:
    def __init__(self, shards):
        self.shards = shards
        self.noted = []

    def note_restart(self, shard_id):
        self.noted.append(shard_id)


class ReadyClient:
    def __init__(self, answer=(True, "")):
        self.answer = answer

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None

    def ready(self):
        if isinstance(self.answer, Exception):
            raise self.answer
        return self.answer


def supervise(cluster, probe=(True, ""), **kwargs):
    return ShardSupervisor(
        cluster, client_factory=lambda host, port: ReadyClient(probe),
        **kwargs)


def test_dead_shard_is_restarted_and_the_endpoint_published():
    metrics = MetricsRegistry()
    shard = FakeShard(alive=False)
    cluster = FakeCluster({"shard0": shard})
    supervisor = supervise(cluster, metrics=metrics)
    supervisor.poll_once()
    assert shard.respawns == 1 and shard.alive
    assert cluster.noted == ["shard0"]  # the fresh port was published
    stats = supervisor.stats()
    assert stats["restarts"] == 1
    assert stats["per_shard_restarts"]["shard0"] == 1
    kinds = [e["event"] for e in supervisor.events]
    assert kinds == ["down", "restarted"]
    assert metrics.counter(
        "repro_cluster_shard_restarts_total").value == 1


def test_restart_budget_abandons_a_flapping_shard():
    shard = FakeShard(alive=False)
    shard.restarts = 2  # already restarted twice
    cluster = FakeCluster({"shard0": shard})
    supervisor = supervise(cluster, restart_budget=2)
    supervisor.poll_once()
    assert shard.respawns == 0  # budget gone: no third attempt
    assert supervisor.stats()["abandoned"] == {
        "shard0": "restart budget (2) exhausted"}
    # abandoned shards are skipped entirely on later polls
    supervisor.poll_once()
    assert shard.respawns == 0
    assert [e["event"] for e in supervisor.events] == ["abandoned"]


def test_failed_restart_backs_off_before_retrying():
    shard = FakeShard(alive=False, respawn_error=RuntimeError("no boot"))
    cluster = FakeCluster({"shard0": shard})
    supervisor = supervise(cluster, backoff_base=30.0)
    supervisor.poll_once()
    assert shard.respawns == 1
    assert supervisor.stats()["restart_failures"] == 1
    supervisor.poll_once()  # inside the backoff window: no attempt
    assert shard.respawns == 1
    kinds = [e["event"] for e in supervisor.events]
    assert kinds == ["down", "restart_failed"]


def test_backoff_window_lapses_and_the_retry_runs():
    shard = FakeShard(alive=False, respawn_error=RuntimeError("no boot"))
    cluster = FakeCluster({"shard0": shard})
    supervisor = supervise(cluster, backoff_base=0.02, backoff_max=0.02)
    supervisor.poll_once()
    shard.respawn_error = None  # the transient boot problem clears
    time.sleep(0.05)
    supervisor.poll_once()
    assert shard.respawns == 2 and shard.alive
    assert supervisor.stats()["restarts"] == 1


def test_consecutive_unready_probes_flag_the_shard():
    shard = FakeShard(alive=True)
    cluster = FakeCluster({"shard0": shard})
    supervisor = supervise(cluster, probe=(False, "draining"),
                           unready_threshold=3)
    for _ in range(4):
        supervisor.poll_once()
    events = [e for e in supervisor.events
              if e["event"] == "unresponsive"]
    assert len(events) == 1  # flagged once at the threshold, not spammed
    assert "draining" in events[0]["detail"]
    assert supervisor.stats()["unready"]["shard0"] == 4
    # a live process is never restarted for being unready
    assert shard.respawns == 0


def test_a_ready_probe_resets_the_unready_streak():
    shard = FakeShard(alive=True)
    cluster = FakeCluster({"shard0": shard})
    supervisor = supervise(cluster, probe=(False, "warming up"),
                           unready_threshold=3)
    supervisor.poll_once()
    supervisor.poll_once()
    supervisor._client_factory = lambda host, port: ReadyClient((True, ""))
    supervisor.poll_once()
    assert supervisor.stats()["unready"] == {}
    assert all(e["event"] != "unresponsive" for e in supervisor.events)


def test_probe_exceptions_count_as_unready_not_crashes():
    shard = FakeShard(alive=True)
    cluster = FakeCluster({"shard0": shard})
    supervisor = supervise(cluster,
                           probe=ConnectionRefusedError("refused"),
                           unready_threshold=1)
    supervisor.poll_once()
    events = supervisor.events
    assert events[0]["event"] == "unresponsive"
    assert "ConnectionRefusedError" in events[0]["detail"]


def test_start_and_stop_are_idempotent():
    cluster = FakeCluster({"shard0": FakeShard(alive=True)})
    supervisor = supervise(cluster, poll_interval=0.01)
    supervisor.start()
    supervisor.start()
    time.sleep(0.05)
    supervisor.stop()
    supervisor.stop()
    assert supervisor.stats()["polls"] >= 1


def test_negative_budget_is_rejected():
    with pytest.raises(ValueError):
        ShardSupervisor(FakeCluster({}), restart_budget=-1)
