"""Unit tests for the dataset generators (Section 5 workloads)."""

import random
from collections import Counter

import pytest

from repro.datasets import (
    clique_queries,
    dblp_collection,
    erdos_renyi_graph,
    extract_connected_query,
    extracted_queries,
    go_term_labels,
    label_universe,
    ppi_network,
    tiny_dblp,
    top_labels,
)
from repro.datasets.queries import find_clique, seeded_clique_query
from repro.matching import find_matches


class TestErdosRenyi:
    def test_sizes(self):
        g = erdos_renyi_graph(100, 250, seed=1)
        assert g.num_nodes() == 100
        assert g.num_edges() == 250

    def test_deterministic(self):
        a = erdos_renyi_graph(50, 100, seed=9)
        b = erdos_renyi_graph(50, 100, seed=9)
        assert a.equals(b)

    def test_different_seeds_differ(self):
        a = erdos_renyi_graph(50, 100, seed=1)
        b = erdos_renyi_graph(50, 100, seed=2)
        assert not a.equals(b)

    def test_zipf_label_skew(self):
        g = erdos_renyi_graph(2000, 4000, num_labels=100, seed=3)
        counts = Counter(n.label for n in g.nodes())
        ordered = [c for _, c in counts.most_common()]
        # most frequent label clearly dominates the tail
        assert ordered[0] > 4 * ordered[-1]

    def test_impossible_edge_count_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(3, 100, seed=1)

    def test_no_self_loops_or_parallels(self):
        g = erdos_renyi_graph(30, 60, seed=4)
        seen = set()
        for e in g.edges():
            assert e.source != e.target
            key = tuple(sorted((e.source, e.target)))
            assert key not in seen
            seen.add(key)


class TestPPI:
    def test_paper_scale_defaults(self):
        g = ppi_network()
        assert g.num_nodes() == 3112
        assert g.num_edges() == 12519
        labels = {n.label for n in g.nodes()}
        assert len(labels) <= 183

    def test_heavy_tail_degrees(self):
        g = ppi_network(n=500, m=2000, seed=2)
        degrees = sorted((g.degree(n) for n in g.node_ids()), reverse=True)
        mean = sum(degrees) / len(degrees)
        # hubs well above the mean (a uniform random graph would
        # concentrate tightly around it)
        assert degrees[0] > 3 * mean

    def test_contains_cliques(self):
        g = ppi_network(n=500, m=2000, seed=2)
        rng = random.Random(0)
        assert find_clique(g, 4, rng) is not None

    def test_top_labels_ordering(self):
        g = ppi_network(n=500, m=2000, seed=2)
        top = top_labels(g, 10)
        counts = Counter(n.label for n in g.nodes())
        assert counts[top[0]] >= counts[top[-1]]
        assert len(top) == 10

    def test_label_names(self):
        assert len(go_term_labels()) == 183
        assert go_term_labels()[0].startswith("GO:")
        assert len(label_universe(5)) == 5


class TestDBLP:
    def test_tiny_matches_fig_4_13(self):
        c = tiny_dblp()
        assert len(c) == 2
        assert c[0].num_nodes() == 2
        assert c[1].num_nodes() == 3
        assert c[1].node("v3")["name"] == "A"  # the shared author

    def test_collection_shape(self):
        c = dblp_collection(num_papers=50, num_authors=20, seed=1)
        assert len(c) == 50
        for paper in c:
            assert paper.get("booktitle") is not None
            assert paper.num_edges() == 0
            assert 1 <= paper.num_nodes() <= 4
            for node in paper.nodes():
                assert node.tag == "author"

    def test_author_reuse(self):
        c = dblp_collection(num_papers=100, num_authors=10, seed=1)
        authors = Counter(
            node["name"] for paper in c for node in paper.nodes()
        )
        assert authors.most_common(1)[0][1] > 5  # prolific authors recur


class TestQueries:
    def test_clique_queries_batch(self):
        queries = clique_queries([2, 3], ["A", "B"], per_size=5, seed=1)
        assert len(queries) == 10
        assert queries[0].num_nodes() == 2
        assert queries[-1].num_nodes() == 3

    def test_seeded_clique_query_has_answer(self):
        g = ppi_network(n=400, m=1600, seed=5)
        rng = random.Random(1)
        q = seeded_clique_query(g, 3, rng)
        assert q is not None
        assert find_matches(q, g, exhaustive=False)

    def test_extracted_query_has_answer(self):
        g = erdos_renyi_graph(200, 600, seed=6)
        rng = random.Random(2)
        q = extract_connected_query(g, 5, rng)
        assert q.motif.is_connected()
        assert find_matches(q, g, exhaustive=False)

    def test_extracted_queries_batch(self):
        g = erdos_renyi_graph(200, 600, seed=6)
        queries = extracted_queries(g, [3, 4], per_size=3, seed=0)
        assert len(queries) == 6

    def test_extract_too_large_rejected(self):
        g = erdos_renyi_graph(5, 4, seed=1)
        with pytest.raises(ValueError):
            extract_connected_query(g, 10, random.Random(0))
