"""Ablation — search-order policies (Section 4.4 design choices).

Compares, on the same refined search spaces:

* ``greedy``      — the paper's cost-model greedy (frequency gammas);
* ``greedy-const``— greedy with a constant reduction factor;
* ``connected``   — connectivity-only order (no cost model);
* ``declared``    — pattern declaration order (no optimization at all).

The cost model's value shows up in the search step: greedy orders keep
the number of partial states visited low.
"""

from typing import Dict, List


from harness import fmt_ms, get_ppi, get_ppi_matcher, mean, ppi_clique_workload, print_table
from repro.matching import (
    CostModel,
    SearchCounters,
    connected_order,
    find_matches,
    greedy_order,
    refine_search_space,
    retrieve_feasible_mates,
)

SIZES = (4, 5, 6)
PER_SIZE = 6


def run_experiment():
    graph = get_ppi()
    matcher = get_ppi_matcher()
    workload = ppi_clique_workload(SIZES, PER_SIZE, seed=2718)
    policies = ("greedy", "greedy-const", "connected", "declared")
    rows: List = []
    for size in SIZES:
        per_policy: Dict[str, List[float]] = {p: [] for p in policies}
        states: Dict[str, List[int]] = {p: [] for p in policies}
        for query in workload[size]:
            space = retrieve_feasible_mates(
                query, graph, profile_index=matcher.profile_index,
                local="profile",
            )
            space = refine_search_space(query.motif, graph, space)
            if not all(space.values()):
                continue
            sizes_map = {u: len(c) for u, c in space.items()}
            orders = {
                "greedy": greedy_order(
                    query.motif, sizes_map,
                    CostModel(query.motif, stats=matcher.stats),
                ),
                "greedy-const": greedy_order(
                    query.motif, sizes_map,
                    CostModel(query.motif, stats=None, gamma_const=0.1),
                ),
                "connected": connected_order(query.motif, sizes_map),
                "declared": query.motif.node_names(),
            }
            import time

            for policy, order in orders.items():
                counters = SearchCounters()
                started = time.perf_counter()
                find_matches(query, graph, candidates=space, order=order,
                             limit=1000, counters=counters)
                per_policy[policy].append(time.perf_counter() - started)
                states[policy].append(counters.partial_states)
        row = [size]
        for policy in policies:
            row.append(fmt_ms(mean(per_policy[policy])))
            row.append(f"{mean(states[policy]):.0f}"
                       if states[policy] else "-")
        rows.append(tuple(row))
    return rows


HEADERS = ("clique size",
           "greedy ms", "states",
           "greedy-const ms", "states",
           "connected ms", "states",
           "declared ms", "states")


def report(rows):
    print_table("Ablation: search-order policy (PPI clique queries)",
                HEADERS, rows)


def test_search_order_ablation(benchmark):
    rows = run_experiment()
    report(rows)
    assert rows
    # the cost-based orders never visit dramatically more states than the
    # naive declared order (and usually far fewer)
    for row in rows:
        greedy_states = float(row[2])
        declared_states = float(row[8])
        assert greedy_states <= declared_states * 2 + 100

    graph = get_ppi()
    matcher = get_ppi_matcher()
    query = ppi_clique_workload([5], 2, seed=1)[5][-1]
    from repro.matching import optimized_options

    benchmark(lambda: matcher.match(query, optimized_options(limit=1000)))


if __name__ == "__main__":
    report(run_experiment())
