"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's evaluation artifacts
(Figs. 4.20–4.23, Table 4.1) plus our ablations.  Data graphs and their
indexes are built once per process and cached here.

Scale: by default the workloads run at the paper's PPI scale (3112 nodes)
and a reduced synthetic scale so a full run finishes in minutes on a
laptop in pure Python.  Set ``REPRO_FULL_SCALE=1`` for the paper's full
synthetic sizes (10K–320K nodes).
"""

from __future__ import annotations

import os
import random
import statistics
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import Graph, GroundPattern
from repro.datasets import erdos_renyi_graph, ppi_network, top_labels
from repro.datasets.queries import (
    clique_query,
    extract_connected_query,
    seeded_clique_query,
)
from repro.matching import GraphMatcher, MatchOptions, baseline_options
from repro.obs.trace import SpanCollector, tracer
from repro.runtime import ExecutionContext, Outcome
from repro.sqlbaseline import SQLGraphMatcher, WorkBudgetExceeded

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE") == "1"

#: The paper terminates queries with more than 1000 answers.
HIT_LIMIT = 1000
#: Queries with >= this many answers fall in the "high hits" group.
HIGH_HITS = 100
#: Row budget for the SQL arm (the stand-in for "terminated immediately").
SQL_ROW_BUDGET = 3_000_000 if FULL_SCALE else 600_000

_cache: Dict[str, object] = {}


def get_ppi() -> Graph:
    """The yeast-scale PPI network (cached)."""
    if "ppi" not in _cache:
        _cache["ppi"] = ppi_network()
    return _cache["ppi"]  # type: ignore[return-value]


def get_ppi_matcher() -> GraphMatcher:
    """GraphMatcher over the PPI network (cached; builds indexes once)."""
    if "ppi_matcher" not in _cache:
        _cache["ppi_matcher"] = GraphMatcher(get_ppi())
    return _cache["ppi_matcher"]  # type: ignore[return-value]


def get_ppi_sql(join_order: str = "greedy") -> SQLGraphMatcher:
    """SQL baseline over the PPI network (cached)."""
    key = f"ppi_sql_{join_order}"
    if key not in _cache:
        _cache[key] = SQLGraphMatcher(get_ppi(), join_order=join_order)
    return _cache[key]  # type: ignore[return-value]


def get_synthetic(n: int, seed: int = 0) -> Graph:
    """An Erdős–Rényi graph with m = 5n and 100 Zipf labels (cached)."""
    key = f"er_{n}_{seed}"
    if key not in _cache:
        _cache[key] = erdos_renyi_graph(n, 5 * n, num_labels=100, seed=seed)
    return _cache[key]  # type: ignore[return-value]


def get_synthetic_matcher(n: int, seed: int = 0) -> GraphMatcher:
    """GraphMatcher over a synthetic graph (cached)."""
    key = f"er_matcher_{n}_{seed}"
    if key not in _cache:
        _cache[key] = GraphMatcher(get_synthetic(n, seed))
    return _cache[key]  # type: ignore[return-value]


def synthetic_sizes() -> List[int]:
    """The Fig. 4.23(b) graph-size sweep (scaled by default)."""
    if FULL_SCALE:
        return [10_000, 20_000, 40_000, 80_000, 160_000, 320_000]
    return [2_000, 4_000, 8_000, 16_000]


def synthetic_base_size() -> int:
    """The fixed graph size of Figs. 4.22 / 4.23(a)."""
    return 10_000 if FULL_SCALE else 4_000


# --------------------------------------------------------------------------
# Workloads
# --------------------------------------------------------------------------


def ppi_clique_workload(
    sizes: Sequence[int],
    per_size: int,
    seed: int = 0,
) -> Dict[int, List[GroundPattern]]:
    """Clique queries over the PPI network, per the paper's recipe.

    Half the batch is random-labeled from the top-40 most frequent labels
    (paper's generator; zero-answer queries are later discarded), half is
    seeded from actual cliques (guaranteeing non-empty groups at every
    size the network supports).
    """
    graph = get_ppi()
    pool = top_labels(graph, 40)
    # weight the pool by label frequency: queries about common GO terms
    # dominate real workloads and populate the paper's high-hits group
    from collections import Counter

    counts = Counter(node.label for node in graph.nodes())
    weighted_pool: List = []
    for label in pool:
        weighted_pool.extend([label] * max(1, counts[label] // 10))
    rng = random.Random(seed)
    out: Dict[int, List[GroundPattern]] = {}
    for size in sizes:
        queries: List[GroundPattern] = []
        for _ in range(max(1, per_size // 2)):
            queries.append(clique_query(size, weighted_pool, rng))
        for _ in range(max(1, per_size - per_size // 2)):
            seeded = seeded_clique_query(graph, size, rng)
            if seeded is not None:
                queries.append(seeded)
        out[size] = queries
    return out


def synthetic_query_workload(
    graph: Graph,
    sizes: Sequence[int],
    per_size: int,
    seed: int = 0,
) -> Dict[int, List[GroundPattern]]:
    """Random connected subgraph queries (Section 5.2 recipe)."""
    rng = random.Random(seed)
    out: Dict[int, List[GroundPattern]] = {}
    for size in sizes:
        queries = []
        for _ in range(per_size):
            try:
                queries.append(extract_connected_query(graph, size, rng))
            except ValueError:
                continue
        out[size] = queries
    return out


# --------------------------------------------------------------------------
# Measurement
# --------------------------------------------------------------------------


class QueryResult:
    """One query's measurements across configurations."""

    __slots__ = ("hits", "ratios", "times", "outcomes", "cache", "phases",
                 "sql_time", "sql_aborted")

    def __init__(self) -> None:
        self.hits = 0
        self.ratios: Dict[str, float] = {}
        self.times: Dict[str, float] = {}
        self.outcomes: Dict[str, Outcome] = {}
        #: serving-path cache verdicts ("hit"/"miss"/"bypass") per run
        self.cache: Dict[str, str] = {}
        #: per-configuration span totals (span name -> summed seconds),
        #: pulled from the tracer during :func:`measure_query`
        self.phases: Dict[str, Dict[str, float]] = {}
        self.sql_time: Optional[float] = None
        self.sql_aborted = False

    @property
    def timed_out(self) -> bool:
        """Whether any configuration hit its per-run deadline."""
        return any(o is Outcome.TIMED_OUT for o in self.outcomes.values())

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form for BENCH result files.

        Outcome statuses are recorded by name so serving-path effects
        (timeouts, truncation, cache hits) are trackable over time.
        """
        return {
            "hits": self.hits,
            "ratios": dict(self.ratios),
            "times": dict(self.times),
            "outcomes": {name: status.value
                         for name, status in self.outcomes.items()},
            "cache": dict(self.cache),
            "phases": {name: dict(totals)
                       for name, totals in self.phases.items()},
            "sql_time": self.sql_time,
            "sql_aborted": self.sql_aborted,
        }


def measure_query(
    matcher: GraphMatcher,
    query: GroundPattern,
    sql_matcher: Optional[SQLGraphMatcher] = None,
    radius: int = 1,
    timeout: Optional[float] = None,
    service=None,
    query_text: Optional[str] = None,
) -> QueryResult:
    """Run one query through every configuration the figures need.

    *timeout* optionally bounds each configuration's run with its own
    fresh :class:`ExecutionContext` (a per-run wall-clock deadline, so a
    pathological query cannot stall the whole benchmark sweep); the
    per-configuration outcomes land in ``result.outcomes``.

    *service* (a :class:`repro.service.QueryService`) additionally sends
    the query through the serving path twice — cold then warm — so BENCH
    JSONs track cache hit/miss verdicts and serving outcomes over time.
    Pass *query_text* for the cacheable text form of *query*; without it
    the compiled pattern is sent and the caches report ``"bypass"``.
    """
    result = QueryResult()

    if service is not None:
        serving_query = query_text if query_text is not None else query
        for run_name in ("service_cold", "service_warm"):
            response = service.execute(serving_query, limit=HIT_LIMIT,
                                       timeout=timeout)
            result.outcomes[run_name] = response.outcome.status
            result.cache[run_name] = response.cache
            result.times[run_name] = response.elapsed

    def run(name: str, options: MatchOptions):
        context = (ExecutionContext(timeout=timeout)
                   if timeout is not None else None)
        collector = SpanCollector()
        with tracer().session(collector):
            report = matcher.match(query, options, context=context)
        result.outcomes[name] = report.outcome.status
        # per-phase timings come from the spans the matcher emitted; the
        # report's own stopwatch is the fallback if none were collected
        totals = collector.totals()
        result.phases[name] = totals if totals else {
            f"match.{phase}": seconds
            for phase, seconds in report.times.items()
        }
        return report

    profile_report = run(
        "profiles", MatchOptions(local="profile", refine=False,
                                 optimize_order=True, limit=HIT_LIMIT,
                                 radius=radius),
    )
    result.hits = len(profile_report.mappings)
    result.ratios["profiles"] = profile_report.reduction_ratio("retrieved")
    result.times["retrieve_profiles"] = profile_report.times.get("local_pruning", 0.0)

    subgraph_report = run(
        "subgraphs", MatchOptions(local="subgraph", refine=False,
                                  optimize_order=True, limit=HIT_LIMIT,
                                  radius=radius),
    )
    result.ratios["subgraphs"] = subgraph_report.reduction_ratio("retrieved")
    result.times["retrieve_subgraphs"] = subgraph_report.times.get("local_pruning", 0.0)

    refined_report = run(
        "refined", MatchOptions(local="profile", refine=True,
                                optimize_order=True, limit=HIT_LIMIT,
                                radius=radius),
    )
    result.ratios["refined"] = refined_report.reduction_ratio("refined")
    result.times["refine"] = refined_report.times.get("refine", 0.0)
    result.times["optimized_total"] = refined_report.total_time
    # search over the refined space with the optimized order — compare
    # against search_no_opt below, which uses the same space
    result.times["search_opt"] = refined_report.times.get("search", 0.0)

    unordered_report = run(
        "no_opt", MatchOptions(local="profile", refine=True,
                               optimize_order=False, limit=HIT_LIMIT,
                               radius=radius),
    )
    result.times["search_no_opt"] = unordered_report.times.get("search", 0.0)

    baseline_report = run("baseline", baseline_options(limit=HIT_LIMIT))
    result.times["baseline_total"] = baseline_report.total_time

    if sql_matcher is not None:
        started = time.perf_counter()
        try:
            sql_matcher.match(query, limit=HIT_LIMIT,
                              max_rows_examined=SQL_ROW_BUDGET)
            result.sql_time = time.perf_counter() - started
        except WorkBudgetExceeded:
            result.sql_time = time.perf_counter() - started
            result.sql_aborted = True
    return result


def split_by_hits(results: List[QueryResult]) -> Tuple[List[QueryResult], List[QueryResult]]:
    """The paper's low-hits (<100, >0) and high-hits (>=100) groups."""
    answered = [r for r in results if r.hits > 0]
    low = [r for r in answered if r.hits < HIGH_HITS]
    high = [r for r in answered if r.hits >= HIGH_HITS]
    return low, high


def geometric_mean(values: Iterable[float], floor: float = 1e-30) -> float:
    """Geometric mean with a floor (ratios can hit exactly zero)."""
    values = [max(v, floor) for v in values]
    if not values:
        return float("nan")
    return statistics.geometric_mean(values)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean, NaN on empty."""
    values = list(values)
    if not values:
        return float("nan")
    return sum(values) / len(values)


# --------------------------------------------------------------------------
# Table printing
# --------------------------------------------------------------------------


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print one paper-style results table."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))


def fmt_ratio(value: float) -> str:
    """Scientific-notation reduction ratio (the figures' log axes)."""
    if value != value:  # NaN
        return "-"
    return f"{value:.2e}"


def fmt_ms(value: Optional[float]) -> str:
    """Milliseconds with one decimal."""
    if value is None or value != value:
        return "-"
    return f"{value * 1000:.1f}"
