"""Ablation — refinement level l (Algorithm 4.2).

The paper sets the maximum refinement level to the query size.  This
ablation sweeps l and shows the trade-off: the search space shrinks
monotonically with l and converges quickly (most pruning happens in the
first couple of levels), while refinement time grows roughly linearly.
"""

from typing import List


from harness import (
    fmt_ms,
    fmt_ratio,
    geometric_mean,
    get_synthetic,
    get_synthetic_matcher,
    mean,
    print_table,
    synthetic_base_size,
    synthetic_query_workload,
)
from repro.matching import MatchOptions

LEVELS = (0, 1, 2, 4, 8, 16)
QUERY_SIZE = 10
PER_LEVEL = 6


def run_experiment():
    n = synthetic_base_size()
    graph = get_synthetic(n)
    matcher = get_synthetic_matcher(n)
    queries = synthetic_query_workload(graph, [QUERY_SIZE], PER_LEVEL,
                                       seed=314)[QUERY_SIZE]
    rows: List = []
    for level in LEVELS:
        ratios, times, search_times = [], [], []
        for query in queries:
            options = MatchOptions(
                local="profile",
                refine=level > 0,
                refine_level=level if level > 0 else None,
                limit=1000,
            )
            report = matcher.match(query, options)
            ratios.append(report.reduction_ratio("refined"))
            times.append(report.times.get("refine", 0.0))
            search_times.append(report.times["search"])
        rows.append((
            level,
            fmt_ratio(geometric_mean(ratios)),
            fmt_ms(mean(times)),
            fmt_ms(mean(search_times)),
        ))
    return rows


def report(rows):
    print_table(
        f"Ablation: refinement level (query size {QUERY_SIZE}, "
        f"synthetic n={synthetic_base_size()})",
        ("level l", "refined ratio", "refine ms", "search ms"),
        rows,
    )


def test_refinement_level_ablation(benchmark):
    rows = run_experiment()
    report(rows)
    ratios = [float(row[1]) for row in rows]
    # monotone non-increasing search space with level
    for before, after in zip(ratios, ratios[1:]):
        assert after <= before * 1.0000001
    # refinement at the paper's setting prunes vs no refinement
    assert ratios[-1] < ratios[0]

    n = synthetic_base_size()
    matcher = get_synthetic_matcher(n)
    query = synthetic_query_workload(get_synthetic(n), [QUERY_SIZE], 1,
                                     seed=3)[QUERY_SIZE][0]
    options = MatchOptions(local="profile", refine=True, refine_level=4,
                           limit=1000)
    benchmark(lambda: matcher.match(query, options))


if __name__ == "__main__":
    report(run_experiment())
