"""Table 4.1 — comparison of query languages, as executable probes.

The paper's table is qualitative:

    Language  | Basic unit   | Query style  | Semistructured
    GraphQL   | graphs       | set-oriented | yes
    SQL       | tuples       | set-oriented | no
    TAX       | trees        | set-oriented | yes
    GraphLog  | nodes/edges  | logic prog.  | -
    OODB      | nodes/edges  | navigational | no

This reproduction implements three of those systems (GraphQL, SQL,
Datalog-as-GraphLog-core), so each claimed cell is *demonstrated* by a
probe rather than asserted:

* basic unit — what the engine's operators consume and return;
* set-oriented vs logic — the querying interface;
* semistructured — whether heterogeneous records/graphs can coexist in
  one collection without schema errors.
"""


from harness import print_table
from repro.core import Graph, GraphCollection, GroundPattern, select
from repro.core.bindings import MatchedGraph
from repro.core.motif import SimpleMotif
from repro.datalog import Atom, BodyLiteral, Program, Rule, Var, query
from repro.sqlbaseline import RelationalDatabase, SchemaError, SQLEngine


def probe_graphql_basic_unit() -> str:
    """σ consumes a collection of graphs and returns matched graphs."""
    g = Graph("g")
    g.add_node("n", label="A")
    motif = SimpleMotif()
    motif.add_node("u", attrs={"label": "A"})
    result = select(GraphCollection([g]), GroundPattern(motif))
    assert all(isinstance(m, MatchedGraph) for m in result)
    return "graphs"


def probe_graphql_semistructured() -> bool:
    """Heterogeneous graphs live in one collection and one query binds both."""
    g1 = Graph("g1")
    g1.add_node("x", label="A", weight=3)
    g2 = Graph("g2")
    g2.add_node("y", label="A", color="red")  # different attributes
    g2.add_node("z")  # attribute-free node
    motif = SimpleMotif()
    motif.add_node("u", attrs={"label": "A"})
    result = select(GraphCollection([g1, g2]), GroundPattern(motif))
    return len(result) == 2


def probe_sql_basic_unit() -> str:
    """The SQL engine consumes and produces rows (tuples)."""
    db = RelationalDatabase()
    db.create_table("T", ["a"])
    db.table("T").insert((1,))
    rows = SQLEngine(db).execute("SELECT t.a FROM T t")
    assert rows == [(1,)]
    return "tuples"


def probe_sql_not_semistructured() -> bool:
    """A strict schema: rows with the wrong arity are rejected."""
    db = RelationalDatabase()
    db.create_table("T", ["a", "b"])
    try:
        db.table("T").insert((1,))
    except SchemaError:
        return True
    return False


def probe_datalog_basic_unit() -> str:
    """Datalog (the GraphLog core) manipulates node/edge facts."""
    program = Program()
    program.fact("edge", "a", "b")
    X, Y = Var("X"), Var("Y")
    program.add_rule(Rule(Atom("r", [X, Y]), [BodyLiteral(Atom("edge", [X, Y]))]))
    assert query(program, Atom("r", [X, Y])) == [("a", "b")]
    return "nodes/edges"


def run_probes():
    rows = [
        ("GraphQL", probe_graphql_basic_unit(), "set-oriented",
         "yes" if probe_graphql_semistructured() else "no"),
        ("SQL", probe_sql_basic_unit(), "set-oriented",
         "no" if probe_sql_not_semistructured() else "yes"),
        ("Datalog (GraphLog core)", probe_datalog_basic_unit(),
         "logic programming", "-"),
    ]
    return rows


def report(rows):
    print_table(
        "Table 4.1 language comparison (probed on this repo's engines)",
        ("Language", "Basic unit", "Query style", "Semistructured"),
        rows,
    )


def test_table_4_1(benchmark):
    rows = run_probes()
    report(rows)
    as_dict = {row[0]: row[1:] for row in rows}
    assert as_dict["GraphQL"] == ("graphs", "set-oriented", "yes")
    assert as_dict["SQL"] == ("tuples", "set-oriented", "no")
    assert as_dict["Datalog (GraphLog core)"][0] == "nodes/edges"
    benchmark(run_probes)


if __name__ == "__main__":
    report(run_probes())
