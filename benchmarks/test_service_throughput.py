"""Serving-path throughput: QueryService under concurrent clients.

Not a paper figure — this tracks the service layer added on top of the
paper's matcher: admission control, the result cache, and per-request
governance.  The experiment drives concurrent clients over a mixed
workload (repeated cacheable queries plus unique ones) and reports
throughput, latency quantiles and cache effectiveness, so regressions
in the serving path show up next to the matcher benchmarks.
"""

import json
import threading
from typing import List

from harness import (
    HIT_LIMIT,
    fmt_ms,
    get_ppi,
    measure_query,
    print_table,
)

from repro.datasets.queries import seeded_clique_query
from repro.runtime import Outcome
from repro.service import QueryService, ServiceConfig

import random

CLIENTS = 6
REQUESTS_PER_CLIENT = 12
WORKERS = 3

#: text form keeps the requests cacheable end to end
EDGE_TEMPLATE = ('graph P {{ node a <label="{a}">; node b <label="{b}">; '
                 'edge e1 (a, b); }}')


def label_pool(graph, k: int = 8) -> List[str]:
    from collections import Counter

    counts = Counter(node.label for node in graph.nodes())
    return [label for label, _count in counts.most_common(k)]


def make_service() -> QueryService:
    service = QueryService(ServiceConfig(
        workers=WORKERS, queue_depth=CLIENTS * REQUESTS_PER_CLIENT,
        per_client=REQUESTS_PER_CLIENT, default_timeout=10.0,
        default_max_results=HIT_LIMIT))
    service.register("data", get_ppi())
    return service


def run_experiment():
    service = make_service()
    graph = get_ppi()
    labels = label_pool(graph)
    rng = random.Random(17)
    # one hot query (every client repeats it => cache hits) plus a
    # per-client tail of mostly-unique label pairs (cache misses)
    hot = EDGE_TEMPLATE.format(a=labels[0], b=labels[1])
    responses = []
    lock = threading.Lock()

    def client(index):
        mine = []
        for j in range(REQUESTS_PER_CLIENT):
            if j % 2 == 0:
                text = hot
            else:
                a, b = rng.sample(labels, 2)
                text = EDGE_TEMPLATE.format(a=a, b=b)
            mine.append(service.execute(text, client=f"bench{index}"))
        with lock:
            responses.extend(mine)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats = service.shutdown()
    return responses, stats


def report(responses, stats):
    hits = [r for r in responses if r.cache == "hit"]
    executed = [r for r in responses if not r.rejected]
    latency = stats["latency"]
    print_table(
        "Service throughput — "
        f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, "
        f"{WORKERS} workers (PPI)",
        ["requests", "rejected", "cache hits", "hit rate",
         "p50 ms", "p95 ms", "max ms"],
        [(
            len(responses), stats["rejected"], len(hits),
            f"{len(hits) / max(1, len(executed)):.0%}",
            fmt_ms(latency.get("p50")), fmt_ms(latency.get("p95")),
            fmt_ms(latency.get("max")),
        )],
    )


def test_service_throughput(capsys):
    responses, stats = run_experiment()

    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(responses) == total
    assert stats["admitted"] + stats["rejected"] == stats["submitted"]
    executed = [r for r in responses if not r.rejected]
    assert executed
    for response in executed:
        assert response.outcome.status in (Outcome.COMPLETE,
                                           Outcome.TRUNCATED)
    hits = [r for r in responses if r.cache == "hit"]
    assert hits, "the repeated hot query produced no cache hits"

    with capsys.disabled():
        report(responses, stats)


def test_measure_query_records_serving_path():
    """measure_query result dicts carry cache verdicts + outcomes."""
    service = make_service()
    try:
        from harness import get_ppi_matcher

        graph = get_ppi()
        labels = label_pool(graph)
        text = EDGE_TEMPLATE.format(a=labels[0], b=labels[1])
        rng = random.Random(5)
        query = seeded_clique_query(graph, 2, rng)
        result = measure_query(get_ppi_matcher(), query,
                               service=service, query_text=text)

        assert result.cache["service_cold"] == "miss"
        assert result.cache["service_warm"] == "hit"
        assert result.outcomes["service_warm"] in (Outcome.COMPLETE,
                                                   Outcome.TRUNCATED)
        payload = result.as_dict()
        # BENCH JSONs must be directly serializable
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["cache"]["service_warm"] == "hit"
        assert round_tripped["outcomes"]["service_cold"] in (
            "COMPLETE", "TRUNCATED")
        assert round_tripped["times"]["service_warm"] >= 0.0
    finally:
        service.shutdown()
