"""Serving-path throughput: QueryService under concurrent clients.

Not a paper figure — this tracks the service layer added on top of the
paper's matcher: admission control, the result cache, and per-request
governance.  The experiment drives concurrent clients over a mixed
workload (repeated cacheable queries plus unique ones) and reports
throughput, latency quantiles and cache effectiveness, so regressions
in the serving path show up next to the matcher benchmarks.
"""

import json
import os
import threading
import time
from typing import List

from harness import (
    HIT_LIMIT,
    fmt_ms,
    get_ppi,
    measure_query,
    print_table,
)

from repro.datasets.queries import seeded_clique_query
from repro.runtime import Outcome
from repro.service import QueryService, ServiceConfig

import random

CLIENTS = 6
REQUESTS_PER_CLIENT = 12
WORKERS = 3

#: text form keeps the requests cacheable end to end
EDGE_TEMPLATE = ('graph P {{ node a <label="{a}">; node b <label="{b}">; '
                 'edge e1 (a, b); }}')


def label_pool(graph, k: int = 8) -> List[str]:
    from collections import Counter

    counts = Counter(node.label for node in graph.nodes())
    return [label for label, _count in counts.most_common(k)]


def make_service() -> QueryService:
    service = QueryService(ServiceConfig(
        workers=WORKERS, queue_depth=CLIENTS * REQUESTS_PER_CLIENT,
        per_client=REQUESTS_PER_CLIENT, default_timeout=10.0,
        default_max_results=HIT_LIMIT))
    service.register("data", get_ppi())
    return service


def run_experiment():
    service = make_service()
    graph = get_ppi()
    labels = label_pool(graph)
    rng = random.Random(17)
    # one hot query (every client repeats it => cache hits) plus a
    # per-client tail of mostly-unique label pairs (cache misses)
    hot = EDGE_TEMPLATE.format(a=labels[0], b=labels[1])
    responses = []
    lock = threading.Lock()

    def client(index):
        mine = []
        for j in range(REQUESTS_PER_CLIENT):
            if j % 2 == 0:
                text = hot
            else:
                a, b = rng.sample(labels, 2)
                text = EDGE_TEMPLATE.format(a=a, b=b)
            mine.append(service.execute(text, client=f"bench{index}"))
        with lock:
            responses.extend(mine)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats = service.shutdown()
    return responses, stats


def report(responses, stats):
    hits = [r for r in responses if r.cache == "hit"]
    executed = [r for r in responses if not r.rejected]
    latency = stats["latency"]
    print_table(
        "Service throughput — "
        f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, "
        f"{WORKERS} workers (PPI)",
        ["requests", "rejected", "cache hits", "hit rate",
         "p50 ms", "p95 ms", "max ms"],
        [(
            len(responses), stats["rejected"], len(hits),
            f"{len(hits) / max(1, len(executed)):.0%}",
            fmt_ms(latency.get("p50")), fmt_ms(latency.get("p95")),
            fmt_ms(latency.get("max")),
        )],
    )


def test_service_throughput(capsys):
    responses, stats = run_experiment()

    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(responses) == total
    assert stats["admitted"] + stats["rejected"] == stats["submitted"]
    executed = [r for r in responses if not r.rejected]
    assert executed
    for response in executed:
        assert response.outcome.status in (Outcome.COMPLETE,
                                           Outcome.TRUNCATED)
    hits = [r for r in responses if r.cache == "hit"]
    assert hits, "the repeated hot query produced no cache hits"

    with capsys.disabled():
        report(responses, stats)


#: 4-node carbon chain over the molecule collection: heavy enough that
#: per-shard execution, not the wire, dominates each fan-out
CHAIN_QUERY = ('graph P { node a <label="C">; node b <label="C">; '
               'node c <label="C">; node d <label="C">; '
               'edge e1 (a, b); edge e2 (b, c); edge e3 (c, d); }')
CLUSTER_SHARDS = 4
CLUSTER_QUERIES = 4


def _cluster_soak(cluster, queries=CLUSTER_QUERIES):
    """Mean per-fan-out latency with every cache off (pure execution)."""
    coordinator = cluster.coordinator(timeout=120.0, result_cache_size=0)
    warm = coordinator.query(CHAIN_QUERY, limit=100000,
                             use_shard_cache=False)
    assert warm.failed == 0, f"warm-up lost shards: {warm.outcome}"
    rows = len(warm.results)
    started = time.monotonic()
    for _ in range(queries):
        reply = coordinator.query(CHAIN_QUERY, limit=100000,
                                  use_shard_cache=False)
        assert reply.failed == 0
        assert len(reply.results) == rows  # sharding never changes answers
    return (time.monotonic() - started) / queries, rows


def test_cluster_throughput_vs_single_shard(capsys):
    """A 4-shard split vs the same collection on one server.

    Shards are separate OS processes, so the fan-out's speedup is real
    process parallelism — which needs cores to run on.  With >= 4 CPUs
    the acceptance bar is a >= 2x throughput gain; on smaller hosts the
    same run instead bounds the coordinator's overhead (a 1-core box
    physically cannot run four matchers at once, and a benchmark that
    pretended otherwise would be measuring noise).
    """
    from repro.cluster import launch_cluster
    from repro.datasets.molecules import molecule_collection

    collection = molecule_collection(num_molecules=120, seed=31)
    with launch_cluster(collection, num_shards=1) as single:
        single_latency, single_rows = _cluster_soak(single)
    with launch_cluster(collection, num_shards=CLUSTER_SHARDS) as sharded:
        sharded_latency, sharded_rows = _cluster_soak(sharded)

    assert single_rows == sharded_rows
    speedup = single_latency / sharded_latency
    cores = os.cpu_count() or 1
    with capsys.disabled():
        print_table(
            f"Cluster scatter-gather — {len(collection)} molecules, "
            f"{CLUSTER_QUERIES} fan-outs, {cores} CPU core(s)",
            ["layout", "per-query", "rows", "speedup"],
            [("1 shard", fmt_ms(single_latency), single_rows, "1.00x"),
             (f"{CLUSTER_SHARDS} shards",
              fmt_ms(sharded_latency), sharded_rows,
              f"{speedup:.2f}x")],
        )
    if cores >= CLUSTER_SHARDS:
        assert speedup >= 2.0, (
            f"4-shard split only {speedup:.2f}x faster with "
            f"{cores} cores available")
    else:
        # no parallel hardware: the split must still not cost much —
        # fan-out + merge overhead bounded at 50% over one server
        assert sharded_latency <= single_latency * 1.5, (
            f"fan-out overhead too high on {cores} core(s): "
            f"{sharded_latency * 1000:.1f}ms vs "
            f"{single_latency * 1000:.1f}ms single-shard")


def test_measure_query_records_serving_path():
    """measure_query result dicts carry cache verdicts + outcomes."""
    service = make_service()
    try:
        from harness import get_ppi_matcher

        graph = get_ppi()
        labels = label_pool(graph)
        text = EDGE_TEMPLATE.format(a=labels[0], b=labels[1])
        rng = random.Random(5)
        query = seeded_clique_query(graph, 2, rng)
        result = measure_query(get_ppi_matcher(), query,
                               service=service, query_text=text)

        assert result.cache["service_cold"] == "miss"
        assert result.cache["service_warm"] == "hit"
        assert result.outcomes["service_warm"] in (Outcome.COMPLETE,
                                                   Outcome.TRUNCATED)
        payload = result.as_dict()
        # BENCH JSONs must be directly serializable
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["cache"]["service_warm"] == "hit"
        assert round_tripped["outcomes"]["service_cold"] in (
            "COMPLETE", "TRUNCATED")
        assert round_tripped["times"]["service_warm"] >= 0.0
    finally:
        service.shutdown()
