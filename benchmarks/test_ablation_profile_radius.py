"""Ablation — neighborhood radius r (Definition 4.10 design choice).

The paper stores neighborhood subgraphs and profiles of radius 1.  This
ablation sweeps r ∈ {0, 1, 2}: radius 0 degenerates to plain label
retrieval (no pruning beyond F_u).  Radius 1 is the paper's choice, and
the sweep shows why: on a hub-heavy network, radius-2 *profile* pruning
is actually **weaker** than radius 1 — a two-hop neighborhood around a
hub covers so much of the graph that its label multiset contains almost
any pattern profile — while costing ~5x more to index.  (The exact
neighborhood-*subgraph* test is monotone in r; the light-weight profile
approximation is not.)
"""

from typing import List


from harness import (
    fmt_ms,
    fmt_ratio,
    geometric_mean,
    get_ppi,
    mean,
    ppi_clique_workload,
    print_table,
)
import time

from repro.matching import GraphMatcher, MatchOptions

RADII = (0, 1, 2)
SIZES = (4, 5)
PER_SIZE = 6


def run_experiment():
    graph = get_ppi()
    workload = ppi_clique_workload(SIZES, PER_SIZE, seed=1618)
    rows: List = []
    for radius in RADII:
        started = time.perf_counter()
        matcher = GraphMatcher(graph, radius=radius)
        build_time = time.perf_counter() - started
        ratios, prune_times, totals = [], [], []
        for size in SIZES:
            for query in workload[size]:
                report = matcher.match(
                    query,
                    MatchOptions(local="profile", refine=False, limit=1000,
                                 radius=radius),
                )
                if not report.mappings:
                    continue
                ratios.append(report.reduction_ratio("retrieved"))
                prune_times.append(report.times["local_pruning"])
                totals.append(report.total_time)
        rows.append((
            radius,
            fmt_ms(build_time),
            fmt_ratio(geometric_mean(ratios)),
            fmt_ms(mean(prune_times)),
            fmt_ms(mean(totals)),
        ))
    return rows


def report(rows):
    print_table(
        "Ablation: profile radius (PPI clique queries, profile pruning)",
        ("radius", "index build ms", "retrieved ratio",
         "prune ms", "total ms"),
        rows,
    )


def test_profile_radius_ablation(benchmark):
    rows = run_experiment()
    report(rows)
    by_radius = {row[0]: row for row in rows}
    # radius 0 profiles carry only the node's own label: no pruning power
    # beyond label retrieval, so its ratio is the largest
    assert float(by_radius[0][2]) >= float(by_radius[1][2]) * 0.999
    assert float(by_radius[0][2]) >= float(by_radius[2][2]) * 0.999
    # radius 1 is the sweet spot: it must dominate radius 0 outright, and
    # deeper radii cost strictly more to index
    assert float(by_radius[1][2]) < float(by_radius[0][2])
    assert float(by_radius[2][1]) > float(by_radius[1][1])

    graph = get_ppi()
    matcher = GraphMatcher(graph, radius=1)
    query = ppi_clique_workload([4], 2, seed=6)[4][0]
    options = MatchOptions(local="profile", refine=False, limit=1000)
    benchmark(lambda: matcher.match(query, options))


if __name__ == "__main__":
    report(run_experiment())
