"""Fig. 4.22 — synthetic graphs: search space and per-step time vs query size.

Paper setup: Erdős–Rényi graph with n = 10K, m = 5n, 100 Zipf labels;
queries are random connected subgraphs of sizes 4–20.

Expected shapes:
(a) unlike clique queries, the *global* pruning (refinement) produces the
    smallest search space, beating retrieval by full neighborhood
    subgraphs — sparse extracted queries have little local structure for
    the neighborhood test to exploit, while refinement propagates
    constraints across the whole pattern;
(b) retrieval by subgraphs costs the most among the pruning steps; the
    optimized search order keeps search time flat.
"""

from typing import Dict, List

import pytest

from harness import (
    fmt_ms,
    fmt_ratio,
    geometric_mean,
    get_synthetic,
    get_synthetic_matcher,
    mean,
    measure_query,
    print_table,
    synthetic_base_size,
    synthetic_query_workload,
)

SIZES = (4, 8, 12, 16, 20)
PER_SIZE = 6


def run_experiment(per_size: int = PER_SIZE):
    n = synthetic_base_size()
    graph = get_synthetic(n)
    matcher = get_synthetic_matcher(n)
    workload = synthetic_query_workload(graph, SIZES, per_size, seed=99)
    space_rows: List = []
    time_rows: List = []
    raw: Dict[int, List] = {}
    for size in SIZES:
        results = [measure_query(matcher, q) for q in workload[size]]
        results = [r for r in results if r.hits > 0]
        if not results:
            continue
        raw[size] = results
        space_rows.append((
            size,
            len(results),
            fmt_ratio(geometric_mean(r.ratios["profiles"] for r in results)),
            fmt_ratio(geometric_mean(r.ratios["subgraphs"] for r in results)),
            fmt_ratio(geometric_mean(r.ratios["refined"] for r in results)),
        ))
        time_rows.append((
            size,
            fmt_ms(mean(r.times["retrieve_profiles"] for r in results)),
            fmt_ms(mean(r.times["retrieve_subgraphs"] for r in results)),
            fmt_ms(mean(r.times["refine"] for r in results)),
            fmt_ms(mean(r.times["search_opt"] for r in results)),
            fmt_ms(mean(r.times["search_no_opt"] for r in results)),
        ))
    return {"space": space_rows, "time": time_rows, "raw": raw}


def report(rows) -> None:
    n = synthetic_base_size()
    print_table(
        f"Fig 4.22(a) search space, synthetic graph n={n}, m=5n (low hits)",
        ("query size", "#queries", "by profiles", "by subgraphs", "refined"),
        rows["space"],
    )
    print_table(
        f"Fig 4.22(b) per-step time (ms), synthetic graph n={n}",
        ("query size", "retr profiles", "retr subgraphs", "refine",
         "search w/ opt", "search w/o opt"),
        rows["time"],
    )


@pytest.fixture(scope="module")
def experiment():
    rows = run_experiment()
    report(rows)
    return rows


def test_fig_4_22_shapes(experiment, benchmark):
    space = experiment["space"]
    assert space
    refined_wins = 0
    for row in space:
        _, _, profiles, subgraphs, refined = row
        assert float(refined) <= float(profiles) * 1.0000001
        if float(refined) <= float(subgraphs) * 1.0000001:
            refined_wins += 1
    # the paper's headline for synthetic graphs: global pruning produces
    # the smallest space (allow a minority of exceptions on tiny samples)
    assert refined_wins >= max(1, len(space) // 2)

    # reduction deepens as queries grow
    assert float(space[-1][4]) < float(space[0][4])

    # benchmark one refinement pass on a mid-size query
    n = synthetic_base_size()
    graph = get_synthetic(n)
    matcher = get_synthetic_matcher(n)
    query = synthetic_query_workload(graph, [12], 1, seed=3)[12][0]
    from repro.matching import MatchOptions

    options = MatchOptions(local="profile", refine=True, limit=1000)
    benchmark(lambda: matcher.match(query, options))


if __name__ == "__main__":
    report(run_experiment())
