"""Fig. 4.21 — running time for clique queries on the PPI network.

(a) per-step times under varying clique size: retrieve-by-profiles,
    retrieve-by-subgraphs, refine, search with / without the optimized
    order.
(b) total query time (log scale in the paper): Optimized vs Baseline vs
    SQL-based, low-hits queries.

Expected shapes:
* retrieval by subgraphs costs far more than retrieval by profiles
  (its pruning is exact but needs a sub-isomorphism test per candidate);
* the optimized total stays flat and small; the SQL-based approach grows
  explosively with clique size (one join per pattern edge — a size-k
  clique needs 2·C(k,2) joins) and is orders of magnitude slower.
"""

from typing import List

import pytest

from harness import (
    fmt_ms,
    get_ppi_matcher,
    get_ppi_sql,
    mean,
    measure_query,
    ppi_clique_workload,
    print_table,
    split_by_hits,
)

SIZES = (2, 3, 4, 5)  # the SQL arm is intractable beyond 5 in pure Python
PER_SIZE = 8


def run_experiment(per_size: int = PER_SIZE, with_sql: bool = True):
    matcher = get_ppi_matcher()
    sql_matcher = get_ppi_sql() if with_sql else None
    workload = ppi_clique_workload(SIZES, per_size, seed=777)
    step_rows: List = []
    total_rows: List = []
    for size in SIZES:
        results = [
            measure_query(matcher, q, sql_matcher=sql_matcher)
            for q in workload[size]
        ]
        low, _high = split_by_hits(results)
        if not low:
            continue
        step_rows.append((
            size,
            len(low),
            fmt_ms(mean(r.times["retrieve_profiles"] for r in low)),
            fmt_ms(mean(r.times["retrieve_subgraphs"] for r in low)),
            fmt_ms(mean(r.times["refine"] for r in low)),
            fmt_ms(mean(r.times["search_opt"] for r in low)),
            fmt_ms(mean(r.times["search_no_opt"] for r in low)),
        ))
        sql_times = [r.sql_time for r in low if r.sql_time is not None]
        aborted = sum(1 for r in low if r.sql_aborted)
        total_rows.append((
            size,
            fmt_ms(mean(r.times["optimized_total"] for r in low)),
            fmt_ms(mean(r.times["baseline_total"] for r in low)),
            fmt_ms(mean(sql_times)) + (f" ({aborted} aborted)" if aborted else ""),
        ))
    return {"steps": step_rows, "totals": total_rows}


def report(rows) -> None:
    print_table(
        "Fig 4.21(a) per-step time (ms), clique queries (low hits)",
        ("clique size", "#queries", "retr profiles", "retr subgraphs",
         "refine", "search w/ opt", "search w/o opt"),
        rows["steps"],
    )
    print_table(
        "Fig 4.21(b) total time (ms), clique queries (low hits)",
        ("clique size", "Optimized", "Baseline", "SQL-based"),
        rows["totals"],
    )


@pytest.fixture(scope="module")
def experiment():
    rows = run_experiment()
    report(rows)
    return rows


def test_fig_4_21_shapes(experiment, benchmark):
    steps = experiment["steps"]
    totals = experiment["totals"]
    assert steps and totals

    def ms(cell: str) -> float:
        return float(cell.split()[0])

    # profiles retrieval is cheaper than subgraph retrieval on average
    profile_cost = mean(ms(row[2]) for row in steps)
    subgraph_cost = mean(ms(row[3]) for row in steps)
    assert profile_cost < subgraph_cost

    # SQL is much slower than the optimized pipeline at the largest size
    last = totals[-1]
    assert ms(last[3]) > 5 * ms(last[1]), (
        f"expected SQL >> optimized, got {last}"
    )

    # benchmark: the optimized end-to-end match on one size-4 query
    from harness import HIT_LIMIT
    from repro.matching import optimized_options

    matcher = get_ppi_matcher()
    query = ppi_clique_workload([4], 2, seed=5)[4][-1]
    benchmark(lambda: matcher.match(query, optimized_options(limit=HIT_LIMIT)))


if __name__ == "__main__":
    report(run_experiment())
