"""Full-scale Fig. 4.23(b): graph sizes 10K–320K (the paper's sweep).

A lean version of the graph-size experiment for the EXPERIMENTS.md
appendix: per size, three extracted size-4 queries run through the
Optimized pipeline, the Baseline, and the greedy-join SQL arm.

Run (takes tens of minutes in pure Python):

    python benchmarks/full_scale_fig_4_23b.py [output-file]
"""

import random
import sys
import time

from repro.datasets import erdos_renyi_graph
from repro.datasets.queries import extract_connected_query
from repro.matching import GraphMatcher, baseline_options, optimized_options
from repro.sqlbaseline import SQLGraphMatcher, WorkBudgetExceeded

SIZES = [10_000, 20_000, 40_000, 80_000, 160_000, 320_000]
PER_SIZE = 3
SQL_ROW_BUDGET = 20_000_000


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "results/full_scale_fig_4_23b.txt"
    lines = ["# Fig 4.23(b) at the paper's sizes (m = 5n, query size 4, "
             "3 queries/size, times in ms)",
             f"{'n':>8} {'gen_s':>7} {'build_s':>8} {'Optimized':>10} "
             f"{'Baseline':>10} {'SQL':>12}"]
    for n in SIZES:
        started = time.time()
        graph = erdos_renyi_graph(n, 5 * n, num_labels=100, seed=n)
        gen_seconds = time.time() - started
        started = time.time()
        matcher = GraphMatcher(graph)
        build_seconds = time.time() - started
        sql_matcher = SQLGraphMatcher(graph, join_order="greedy")
        rng = random.Random(7)
        opt_times, base_times, sql_times = [], [], []
        aborted = 0
        for _ in range(PER_SIZE):
            query = extract_connected_query(graph, 4, rng)
            report = matcher.match(
                query, optimized_options(limit=1000, compute_baseline=False)
            )
            if not report.mappings:
                continue
            opt_times.append(report.total_time)
            base = matcher.match(query, baseline_options(limit=1000))
            base_times.append(base.total_time)
            sql_started = time.perf_counter()
            try:
                sql_matcher.match(query, limit=1000,
                                  max_rows_examined=SQL_ROW_BUDGET)
            except WorkBudgetExceeded:
                aborted += 1
            sql_times.append(time.perf_counter() - sql_started)

        def ms(values):
            return f"{1000 * sum(values) / len(values):.1f}" if values else "-"

        sql_cell = ms(sql_times) + (f"({aborted}ab)" if aborted else "")
        line = (f"{n:>8} {gen_seconds:>7.1f} {build_seconds:>8.1f} "
                f"{ms(opt_times):>10} {ms(base_times):>10} {sql_cell:>12}")
        lines.append(line)
        print(line, flush=True)
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    print(f"written to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
