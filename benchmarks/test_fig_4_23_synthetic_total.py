"""Fig. 4.23 — total query time on synthetic graphs.

(a) total time vs query size (fixed graph): Optimized vs Baseline vs
    SQL-based — SQL does not scale to large queries;
(b) total time vs graph size (fixed query size 4): SQL scales to large
    graphs with small queries but remains well above the optimized
    pipeline; Optimized stays smallest throughout.
"""

from typing import List

import pytest

from harness import (
    FULL_SCALE,
    fmt_ms,
    get_synthetic,
    get_synthetic_matcher,
    mean,
    measure_query,
    print_table,
    synthetic_base_size,
    synthetic_query_workload,
    synthetic_sizes,
)
from repro.sqlbaseline import SQLGraphMatcher

QUERY_SIZES = (4, 8, 12, 16, 20)
#: SQL is exponential in pattern edges; cap its arm (the paper's SQL
#: curve also stops early in Fig. 4.23(a)).
SQL_MAX_QUERY_SIZE = 6 if not FULL_SCALE else 8
PER_SIZE = 4


def run_query_size_sweep(per_size: int = PER_SIZE):
    n = synthetic_base_size()
    graph = get_synthetic(n)
    matcher = get_synthetic_matcher(n)
    sql_matcher = SQLGraphMatcher(graph, join_order="greedy")
    sizes = sorted(set(QUERY_SIZES) | {SQL_MAX_QUERY_SIZE})
    workload = synthetic_query_workload(graph, sizes, per_size, seed=2023)
    rows: List = []
    for size in sizes:
        results = [
            measure_query(matcher, q,
                          sql_matcher=sql_matcher if size <= SQL_MAX_QUERY_SIZE
                          else None)
            for q in workload[size]
        ]
        results = [r for r in results if r.hits > 0]
        if not results:
            continue
        sql_times = [r.sql_time for r in results if r.sql_time is not None]
        aborted = sum(1 for r in results if r.sql_aborted)
        sql_cell = fmt_ms(mean(sql_times)) if sql_times else "n/a"
        if aborted:
            sql_cell += f" ({aborted} aborted)"
        rows.append((
            size,
            len(results),
            fmt_ms(mean(r.times["optimized_total"] for r in results)),
            fmt_ms(mean(r.times["baseline_total"] for r in results)),
            sql_cell,
        ))
    return rows


def run_graph_size_sweep(per_size: int = PER_SIZE):
    rows: List = []
    for n in synthetic_sizes():
        graph = get_synthetic(n)
        matcher = get_synthetic_matcher(n)
        sql_matcher = SQLGraphMatcher(graph, join_order="greedy")
        workload = synthetic_query_workload(graph, [4], per_size, seed=n)
        results = [
            measure_query(matcher, q, sql_matcher=sql_matcher)
            for q in workload[4]
        ]
        results = [r for r in results if r.hits > 0]
        if not results:
            continue
        sql_times = [r.sql_time for r in results if r.sql_time is not None]
        rows.append((
            n,
            len(results),
            fmt_ms(mean(r.times["optimized_total"] for r in results)),
            fmt_ms(mean(r.times["baseline_total"] for r in results)),
            fmt_ms(mean(sql_times)) if sql_times else "n/a",
        ))
    return rows


def report(query_rows, graph_rows) -> None:
    print_table(
        f"Fig 4.23(a) total time (ms) vs query size "
        f"(graph n={synthetic_base_size()}, low hits)",
        ("query size", "#queries", "Optimized", "Baseline", "SQL-based"),
        query_rows,
    )
    print_table(
        "Fig 4.23(b) total time (ms) vs graph size (query size 4)",
        ("graph size", "#queries", "Optimized", "Baseline", "SQL-based"),
        graph_rows,
    )


@pytest.fixture(scope="module")
def experiment():
    query_rows = run_query_size_sweep()
    graph_rows = run_graph_size_sweep()
    report(query_rows, graph_rows)
    return query_rows, graph_rows


def _ms(cell: str) -> float:
    return float(cell.split()[0])


def test_fig_4_23_shapes(experiment, benchmark):
    query_rows, graph_rows = experiment
    assert query_rows and graph_rows

    # (a) at the largest size SQL ran, it is the slowest arm
    sql_rows = [r for r in query_rows if r[4] != "n/a"]
    assert sql_rows, "SQL arm produced no data"
    last_sql = sql_rows[-1]
    assert _ms(last_sql[4]) > _ms(last_sql[2]), last_sql

    # (a) optimized handles the largest query sizes SQL cannot
    assert query_rows[-1][0] > sql_rows[-1][0] or len(sql_rows) == len(query_rows)

    # (b) optimized beats SQL at every graph size
    for row in graph_rows:
        if row[4] != "n/a":
            assert _ms(row[2]) < _ms(row[4]), row

    # benchmark the optimized arm on the base graph, query size 4
    n = synthetic_base_size()
    graph = get_synthetic(n)
    matcher = get_synthetic_matcher(n)
    query = synthetic_query_workload(graph, [4], 1, seed=1)[4][0]
    from repro.matching import optimized_options

    benchmark(lambda: matcher.match(query, optimized_options(limit=1000)))


if __name__ == "__main__":
    report(run_query_size_sweep(), run_graph_size_sweep())
