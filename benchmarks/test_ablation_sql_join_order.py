"""Ablation — SQL baseline join-order policy.

Section 5 notes that *"small improvements in SQL-based implementations
can be achieved by careful tuning"* but the architectural gap remains.
This ablation quantifies that: FROM-order (the literal Fig. 4.2 plan) vs
a greedy reordering that interleaves edge tables — greedy is much better,
yet still orders of magnitude behind the graph-native pipeline.
"""

import time
from typing import List


from harness import (
    fmt_ms,
    get_synthetic,
    get_synthetic_matcher,
    mean,
    print_table,
    synthetic_base_size,
    synthetic_query_workload,
)
from repro.matching import optimized_options
from repro.sqlbaseline import ExecutionStats, SQLGraphMatcher, WorkBudgetExceeded

SIZES = (3, 4, 5)
PER_SIZE = 4
ROW_BUDGET = 2_000_000


def run_experiment():
    n = synthetic_base_size()
    graph = get_synthetic(n)
    matcher = get_synthetic_matcher(n)
    from_matcher = SQLGraphMatcher(graph, join_order="from")
    greedy_matcher = SQLGraphMatcher(graph, join_order="greedy")
    workload = synthetic_query_workload(graph, SIZES, PER_SIZE, seed=555)
    rows: List = []
    for size in SIZES:
        graph_times, from_times, greedy_times = [], [], []
        from_aborts = greedy_aborts = 0
        for query in workload[size]:
            report = matcher.match(query, optimized_options(limit=1000))
            graph_times.append(report.total_time)
            for sql_matcher, times in ((from_matcher, from_times),
                                       (greedy_matcher, greedy_times)):
                stats = ExecutionStats()
                started = time.perf_counter()
                try:
                    sql_matcher.match(query, limit=1000, stats=stats,
                                      max_rows_examined=ROW_BUDGET)
                except WorkBudgetExceeded:
                    if sql_matcher is from_matcher:
                        from_aborts += 1
                    else:
                        greedy_aborts += 1
                times.append(time.perf_counter() - started)
        rows.append((
            size,
            fmt_ms(mean(graph_times)),
            fmt_ms(mean(from_times)) + (f" ({from_aborts} ab.)"
                                        if from_aborts else ""),
            fmt_ms(mean(greedy_times)) + (f" ({greedy_aborts} ab.)"
                                          if greedy_aborts else ""),
        ))
    return rows


def report(rows):
    print_table(
        f"Ablation: SQL join order (synthetic n={synthetic_base_size()}, "
        f"extracted queries)",
        ("query size", "GraphQL optimized", "SQL FROM-order", "SQL greedy"),
        rows,
    )


def _ms(cell: str) -> float:
    return float(cell.split()[0])


def test_sql_join_order_ablation(benchmark):
    rows = run_experiment()
    report(rows)
    assert rows
    # tuning helps SQL (greedy <= from on the largest size) but the
    # graph-native pipeline still wins
    last = rows[-1]
    assert _ms(last[3]) <= _ms(last[2]) * 1.5
    assert _ms(last[1]) < _ms(last[3])

    n = synthetic_base_size()
    graph = get_synthetic(n)
    greedy_matcher = SQLGraphMatcher(graph, join_order="greedy")
    query = synthetic_query_workload(graph, [3], 1, seed=9)[3][0]
    benchmark(lambda: greedy_matcher.match(query, limit=1000,
                                           max_rows_examined=ROW_BUDGET))


if __name__ == "__main__":
    report(run_experiment())
