"""Fig. 4.20 — search-space reduction ratios for clique queries.

Paper: clique queries of sizes 2–7 (top-40 labels) over the yeast PPI
network, split into low-hits (<100 answers) and high-hits groups; the
reduction ratio of the search space (Section 5.1) is plotted for
retrieve-by-profiles, retrieve-by-subgraphs, and the refined space.

Expected shape (both panels): refined < profiles (global pruning always
tightens the profile space), and for clique queries retrieve-by-subgraphs
gives the smallest retrieval space of the two local methods (the
neighborhood subgraph of a clique node *is* the entire clique).  Ratios
shrink rapidly with clique size.
"""

from typing import Dict, List

import pytest

from harness import (
    fmt_ratio,
    geometric_mean,
    get_ppi_matcher,
    measure_query,
    ppi_clique_workload,
    print_table,
    split_by_hits,
)

SIZES = (2, 3, 4, 5, 6, 7)
PER_SIZE = 12


def run_experiment(per_size: int = PER_SIZE) -> Dict[str, List]:
    """Measure reduction ratios per clique size, split by hit count."""
    matcher = get_ppi_matcher()
    workload = ppi_clique_workload(SIZES, per_size, seed=420)
    rows_low, rows_high = [], []
    for size in SIZES:
        results = [measure_query(matcher, q) for q in workload[size]]
        low, high = split_by_hits(results)
        for group, rows in ((low, rows_low), (high, rows_high)):
            if not group:
                continue
            rows.append((
                size,
                len(group),
                fmt_ratio(geometric_mean(r.ratios["profiles"] for r in group)),
                fmt_ratio(geometric_mean(r.ratios["subgraphs"] for r in group)),
                fmt_ratio(geometric_mean(r.ratios["refined"] for r in group)),
            ))
    return {"low": rows_low, "high": rows_high}


HEADERS = ("clique size", "#queries", "by profiles", "by subgraphs", "refined")


def report(rows: Dict[str, List]) -> None:
    print_table("Fig 4.20(a) reduction ratio, clique queries (low hits)",
                HEADERS, rows["low"])
    print_table("Fig 4.20(b) reduction ratio, clique queries (high hits)",
                HEADERS, rows["high"])


@pytest.fixture(scope="module")
def experiment():
    rows = run_experiment()
    report(rows)
    return rows


def test_fig_4_20_shapes(experiment, benchmark):
    """Shape assertions + a benchmark of the profile-retrieval stage."""
    rows = experiment["low"] + experiment["high"]
    assert rows, "workload produced no answered clique queries"
    for row in rows:
        _, _, profiles, subgraphs, refined = row
        # refinement always tightens (or equals) the profile space
        assert float(refined) <= float(profiles) * 1.0000001
        # for cliques, neighborhood subgraphs prune at least as hard as
        # profiles (the subgraph check subsumes the label multiset check)
        assert float(subgraphs) <= float(profiles) * 1.0000001
    # ratios trend down as cliques grow (compare smallest vs largest size)
    low = experiment["low"]
    if len(low) >= 2:
        assert float(low[-1][4]) <= float(low[0][4])

    # benchmark: one profile+refine pass on a representative query
    from harness import ppi_clique_workload
    from repro.matching import MatchOptions

    matcher = get_ppi_matcher()
    query = ppi_clique_workload([4], 2, seed=7)[4][0]
    options = MatchOptions(local="profile", refine=True, limit=1000)
    benchmark(lambda: matcher.match(query, options))


if __name__ == "__main__":
    report(run_experiment())
