"""Ablation — physical layout of graph data (Section 7 direction).

The paper asks *"how to decompose the large graph into small chunks and
preserve locality?"*.  We compare two page layouts of the same graph:
node records written in (scrambled) insertion order vs BFS cluster
order, measuring the average number of distinct pages a radius-1
neighborhood touches — a direct proxy for page faults per traversal
step in a disk-resident system.
"""

import random


from harness import print_table
from repro.datasets import erdos_renyi_graph, ppi_network
from repro.storage import GraphStore


def scrambled_copy(graph, seed=0):
    """The same graph with node declaration order randomized."""
    from repro.core import Graph

    ids = graph.node_ids()
    random.Random(seed).shuffle(ids)
    out = Graph(graph.name, directed=graph.directed)
    for node_id in ids:
        node = graph.node(node_id)
        out.add_node(node_id, **dict(node.tuple.items()))
    for edge in graph.edges():
        out.add_edge(edge.source, edge.target, edge_id=edge.id)
    return out


def _traversal_hit_rate(store, graph, capacity=6, walk_length=4000, seed=3):
    """Hit rate of a random-walk neighborhood traversal through a small
    buffer pool over the store's node->page placement."""
    from repro.storage import BufferPool

    pool = BufferPool(store.pagefile, capacity=capacity)
    rng = random.Random(seed)
    node_ids = graph.node_ids()
    current = node_ids[rng.randrange(len(node_ids))]
    placement = store._node_pages
    for _ in range(walk_length):
        pool.read_page(placement[current])
        neighbors = graph.all_neighbors(current)
        for neighbor in neighbors:
            pool.read_page(placement[neighbor])
        current = (neighbors[rng.randrange(len(neighbors))]
                   if neighbors else node_ids[rng.randrange(len(node_ids))])
    return pool.stats.hit_rate


def run_experiment(tmp_dir):
    datasets = [
        ("erdos-renyi n=2000 m=10000", scrambled_copy(
            erdos_renyi_graph(2000, 10000, seed=6))),
        ("ppi n=3112 m=12519", scrambled_copy(ppi_network())),
    ]
    rows = []
    for name, graph in datasets:
        spans = {}
        hit_rates = {}
        for policy in ("insertion", "bfs"):
            path = f"{tmp_dir}/{abs(hash(name)) % 10 ** 6}_{policy}.db"
            with GraphStore(path, clustering=policy) as store:
                store.save(graph)
                spans[policy] = store.neighborhood_page_span(graph)
                hit_rates[policy] = _traversal_hit_rate(store, graph)
        rows.append((
            name,
            f"{spans['insertion']:.2f}",
            f"{spans['bfs']:.2f}",
            f"{spans['insertion'] / spans['bfs']:.2f}x",
            f"{hit_rates['insertion']:.1%}",
            f"{hit_rates['bfs']:.1%}",
        ))
    return rows


def report(rows):
    print_table(
        "Ablation: storage clustering (radius-1 page span; buffer-pool "
        "hit rate on a neighborhood walk, 6 frames)",
        ("dataset", "span ins.", "span BFS", "improvement",
         "hit% ins.", "hit% BFS"),
        rows,
    )


def test_storage_clustering_ablation(benchmark, tmp_path):
    rows = run_experiment(str(tmp_path))
    report(rows)
    for row in rows:
        assert float(row[2]) <= float(row[1]) * 1.02, row
        # clustering never hurts the buffer hit rate
        assert float(row[5].rstrip("%")) >= float(row[4].rstrip("%")) - 1.0, row

    graph = scrambled_copy(erdos_renyi_graph(500, 2500, seed=1))

    def save_bfs():
        path = str(tmp_path / "bench.db")
        import os

        if os.path.exists(path):
            os.remove(path)
        with GraphStore(path, clustering="bfs") as store:
            store.save(graph)

    benchmark(save_bfs)


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        report(run_experiment(tmp))
