"""Run every benchmark driver and collect the paper-style tables.

Usage::

    python benchmarks/run_all.py [output-file]

Each driver is executed in-process (they share the harness caches, so
the PPI network and synthetic graphs are built once).  Output defaults
to ``results/benchmark_tables.txt``.
"""

from __future__ import annotations

import contextlib
import io
import sys
import time
from pathlib import Path

import test_ablation_collection_index
import test_ablation_profile_radius
import test_ablation_refinement_level
import test_ablation_search_order
import test_ablation_sql_join_order
import test_ablation_storage_clustering
import test_fig_4_20_clique_search_space
import test_fig_4_21_clique_time
import test_fig_4_22_synthetic_steps
import test_fig_4_23_synthetic_total
import test_service_throughput
import test_table_4_1_language_comparison


def drivers():
    yield ("Fig 4.20", lambda: test_fig_4_20_clique_search_space.report(
        test_fig_4_20_clique_search_space.run_experiment()))
    yield ("Fig 4.21", lambda: test_fig_4_21_clique_time.report(
        test_fig_4_21_clique_time.run_experiment()))
    yield ("Fig 4.22", lambda: test_fig_4_22_synthetic_steps.report(
        test_fig_4_22_synthetic_steps.run_experiment()))
    yield ("Fig 4.23", lambda: test_fig_4_23_synthetic_total.report(
        test_fig_4_23_synthetic_total.run_query_size_sweep(),
        test_fig_4_23_synthetic_total.run_graph_size_sweep()))
    yield ("Table 4.1", lambda: test_table_4_1_language_comparison.report(
        test_table_4_1_language_comparison.run_probes()))
    yield ("Refinement level", lambda: test_ablation_refinement_level.report(
        test_ablation_refinement_level.run_experiment()))
    yield ("Search order", lambda: test_ablation_search_order.report(
        test_ablation_search_order.run_experiment()))
    yield ("Profile radius", lambda: test_ablation_profile_radius.report(
        test_ablation_profile_radius.run_experiment()))
    yield ("SQL join order", lambda: test_ablation_sql_join_order.report(
        test_ablation_sql_join_order.run_experiment()))

    def collection_index():
        rows, build = test_ablation_collection_index.run_experiment()
        test_ablation_collection_index.report(rows, build)

    yield ("Collection index", collection_index)

    def storage_clustering():
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            test_ablation_storage_clustering.report(
                test_ablation_storage_clustering.run_experiment(tmp))

    yield ("Storage clustering", storage_clustering)
    yield ("Service throughput", lambda: test_service_throughput.report(
        *test_service_throughput.run_experiment()))


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        "results/benchmark_tables.txt"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.StringIO()
    started = time.time()
    for name, driver in drivers():
        print(f"running {name} ...", flush=True)
        step = time.time()
        with contextlib.redirect_stdout(buffer):
            driver()
        print(f"  done in {time.time() - step:.1f} s")
    buffer.write(f"\n# total benchmark time: {time.time() - started:.1f} s\n")
    out_path.write_text(buffer.getvalue(), encoding="utf-8")
    print(f"\ntables written to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
