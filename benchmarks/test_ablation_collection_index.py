"""Ablation — graph indexing for collections of small graphs.

Section 4: for a *"large collection of small graphs, e.g., chemical
compounds ... graph indexing plays a similar role for graph databases as
B-trees for relational databases: only a small number of graphs need to
be accessed. Scanning of the whole collection of graphs is not
necessary."*  This benchmark quantifies the claim on a synthetic compound
collection with a GraphGrep-style path index: filter ratio and end-to-end
speedup of filter+verify over a full scan.
"""

import random
import time
from typing import List


from harness import fmt_ms, mean, print_table
from repro.core import GroundPattern, SimpleMotif, select
from repro.datasets import molecule_collection
from repro.index import PathIndex, PathIndexStats

NUM_MOLECULES = 400
QUERY_SIZES = (2, 3, 4)
PER_SIZE = 6


def extract_compound_queries(collection, size, count, rng):
    queries: List[GroundPattern] = []
    attempts = 0
    while len(queries) < count and attempts < count * 20:
        attempts += 1
        source = collection[rng.randrange(len(collection))]
        if source.num_nodes() < size:
            continue
        start = rng.choice(source.node_ids())
        chosen = [start]
        frontier = list(source.neighbors(start))
        while len(chosen) < size and frontier:
            nxt = frontier.pop(rng.randrange(len(frontier)))
            if nxt in chosen:
                continue
            chosen.append(nxt)
            frontier.extend(source.neighbors(nxt))
        if len(chosen) == size:
            motif = SimpleMotif.from_graph(source.induced_subgraph(chosen))
            queries.append(GroundPattern(motif))
    return queries


def run_experiment():
    collection = molecule_collection(num_molecules=NUM_MOLECULES, seed=41)
    started = time.perf_counter()
    index = PathIndex(collection, max_length=3)
    build_time = time.perf_counter() - started
    rng = random.Random(12)
    rows = []
    for size in QUERY_SIZES:
        queries = extract_compound_queries(collection, size, PER_SIZE, rng)
        scan_times, indexed_times, ratios = [], [], []
        for query in queries:
            started = time.perf_counter()
            scanned = select(collection, query, exhaustive=False)
            scan_times.append(time.perf_counter() - started)
            stats = PathIndexStats()
            started = time.perf_counter()
            filtered = index.select(query, exhaustive=False, stats=stats)
            indexed_times.append(time.perf_counter() - started)
            ratios.append(stats.filter_ratio)
            assert len(filtered) == len(scanned)
        rows.append((
            size,
            len(queries),
            fmt_ms(mean(scan_times)),
            fmt_ms(mean(indexed_times)),
            f"{mean(ratios):.2f}",
        ))
    return rows, build_time


def report(rows, build_time):
    print_table(
        f"Ablation: collection path index "
        f"({NUM_MOLECULES} compounds, build {build_time * 1000:.0f} ms)",
        ("query size", "#queries", "full scan ms", "filter+verify ms",
         "filter ratio"),
        rows,
    )


def test_collection_index_ablation(benchmark):
    rows, build_time = run_experiment()
    report(rows, build_time)
    assert rows
    for row in rows:
        # the filter keeps a strict subset of the collection on average
        assert float(row[4]) < 1.0
    # indexed selection is faster than a full scan at the largest size
    last = rows[-1]
    assert float(last[3]) <= float(last[2]) * 1.2

    collection = molecule_collection(num_molecules=NUM_MOLECULES, seed=41)
    index = PathIndex(collection, max_length=3)
    rng = random.Random(5)
    query = extract_compound_queries(collection, 3, 1, rng)[0]
    benchmark(lambda: index.select(query, exhaustive=False))


if __name__ == "__main__":
    rows, build_time = run_experiment()
    report(rows, build_time)
