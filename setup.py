"""Compatibility shim for environments whose setuptools predates editable
PEP 660 installs (e.g. fully offline machines): ``python setup.py develop``.
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
