"""Attributed graphs: the basic unit of information in GraphQL.

A :class:`Graph` is a set of named nodes and named edges, each annotated
with an :class:`~repro.core.tuples.AttributeTuple` (Section 3.1).  Graphs
are undirected by default, matching the paper's Datalog translation which
writes each edge twice to permute its end points (Fig. 4.14); directed
graphs are supported with ``Graph(directed=True)``.

Implementation notes that mirror Section 4.1 of the paper:

* edges are kept in a hashtable keyed by end-point pairs so that the
  ``Check`` step of Algorithm 4.1 (does edge ``(v, phi(u_j))`` exist?) is
  O(1);
* adjacency lists are maintained for neighbor iteration.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from .tuples import AttributeTuple


class Node:
    """A graph node: an identifier plus an attribute tuple."""

    __slots__ = ("id", "tuple")

    def __init__(self, node_id: str, attrs: Optional[AttributeTuple] = None) -> None:
        self.id = node_id
        self.tuple = attrs if attrs is not None else AttributeTuple()

    def __getitem__(self, name: str) -> Any:
        return self.tuple[name]

    def get(self, name: str, default: Any = None) -> Any:
        """Attribute lookup with a default."""
        return self.tuple.get(name, default)

    @property
    def tag(self) -> Optional[str]:
        """The node tuple's type tag."""
        return self.tuple.tag

    @property
    def label(self) -> Any:
        """Convenience accessor for the conventional ``label`` attribute."""
        return self.tuple.get("label")

    def __repr__(self) -> str:
        return f"Node({self.id!r}, {self.tuple!r})"


class Edge:
    """A graph edge: an identifier, two end points, and attributes."""

    __slots__ = ("id", "source", "target", "tuple")

    def __init__(
        self,
        edge_id: str,
        source: str,
        target: str,
        attrs: Optional[AttributeTuple] = None,
    ) -> None:
        self.id = edge_id
        self.source = source
        self.target = target
        self.tuple = attrs if attrs is not None else AttributeTuple()

    def __getitem__(self, name: str) -> Any:
        return self.tuple[name]

    def get(self, name: str, default: Any = None) -> Any:
        """Attribute lookup with a default."""
        return self.tuple.get(name, default)

    @property
    def tag(self) -> Optional[str]:
        """The edge tuple's type tag."""
        return self.tuple.tag

    def endpoints(self) -> Tuple[str, str]:
        """The ``(source, target)`` node-id pair."""
        return (self.source, self.target)

    def other(self, node_id: str) -> str:
        """The end point opposite *node_id*."""
        if node_id == self.source:
            return self.target
        if node_id == self.target:
            return self.source
        raise KeyError(f"{node_id!r} is not an end point of edge {self.id!r}")

    def __repr__(self) -> str:
        return f"Edge({self.id!r}, {self.source!r} -> {self.target!r})"


class Graph:
    """An attributed graph with named nodes and edges.

    Parameters
    ----------
    name:
        Optional graph name (``graph G { ... }``).
    attrs:
        Graph-level attribute tuple (``graph G <inproceedings> { ... }``).
    directed:
        Whether edges are ordered pairs.  Defaults to undirected.
    """

    def __init__(
        self,
        name: Optional[str] = None,
        attrs: Optional[AttributeTuple] = None,
        directed: bool = False,
    ) -> None:
        self.name = name
        self.tuple = attrs if attrs is not None else AttributeTuple()
        self.directed = directed
        self._nodes: Dict[str, Node] = {}
        self._edges: Dict[str, Edge] = {}
        # adjacency: node id -> neighbor id -> list of edge ids
        self._adj: Dict[str, Dict[str, List[str]]] = {}
        # for directed graphs, reverse adjacency
        self._radj: Dict[str, Dict[str, List[str]]] = {}
        # edge lookup by end-point pair (first edge id for the pair)
        self._edge_by_pair: Dict[Tuple[str, str], str] = {}
        self._next_node = 0
        self._next_edge = 0
        # named member subgraphs (used by Cartesian product / composition)
        self.members: Dict[str, "Graph"] = {}
        # bumped on every structural mutation; index structures record the
        # version they were built against and detect staleness
        self.version = 0

    # -- construction --------------------------------------------------------

    def add_node(
        self,
        node_id: Optional[str] = None,
        tag: Optional[str] = None,
        **attrs: Any,
    ) -> Node:
        """Add a node and return it.

        An id is generated (``v1, v2, ...``) when none is given.  Keyword
        arguments become tuple attributes.
        """
        if node_id is None:
            while True:
                self._next_node += 1
                node_id = f"v{self._next_node}"
                if node_id not in self._nodes:
                    break
        elif node_id in self._nodes:
            raise ValueError(f"duplicate node id {node_id!r}")
        node = Node(node_id, AttributeTuple(attrs, tag=tag))
        self._nodes[node_id] = node
        self._adj[node_id] = {}
        if self.directed:
            self._radj[node_id] = {}
        self.version += 1
        return node

    def add_node_obj(self, node: Node) -> Node:
        """Add a pre-built :class:`Node` (copies nothing)."""
        if node.id in self._nodes:
            raise ValueError(f"duplicate node id {node.id!r}")
        self._nodes[node.id] = node
        self._adj[node.id] = {}
        if self.directed:
            self._radj[node.id] = {}
        self.version += 1
        return node

    def add_edge(
        self,
        source: str,
        target: str,
        edge_id: Optional[str] = None,
        tag: Optional[str] = None,
        **attrs: Any,
    ) -> Edge:
        """Add an edge between two existing nodes and return it."""
        if source not in self._nodes:
            raise KeyError(f"unknown node {source!r}")
        if target not in self._nodes:
            raise KeyError(f"unknown node {target!r}")
        if edge_id is None:
            while True:
                self._next_edge += 1
                edge_id = f"e{self._next_edge}"
                if edge_id not in self._edges:
                    break
        elif edge_id in self._edges:
            raise ValueError(f"duplicate edge id {edge_id!r}")
        edge = Edge(edge_id, source, target, AttributeTuple(attrs, tag=tag))
        self._edges[edge_id] = edge
        self._adj[source].setdefault(target, []).append(edge_id)
        if self.directed:
            self._radj[target].setdefault(source, []).append(edge_id)
        else:
            if source != target:
                self._adj[target].setdefault(source, []).append(edge_id)
        self._edge_by_pair.setdefault((source, target), edge_id)
        if not self.directed:
            self._edge_by_pair.setdefault((target, source), edge_id)
        self.version += 1
        return edge

    def remove_edge(self, edge_id: str) -> None:
        """Remove an edge by id."""
        edge = self._edges.pop(edge_id)
        for u, v in ((edge.source, edge.target), (edge.target, edge.source)):
            bucket = self._adj.get(u, {}).get(v)
            if bucket and edge_id in bucket:
                bucket.remove(edge_id)
                if not bucket:
                    del self._adj[u][v]
            if self.directed:
                rbucket = self._radj.get(v, {}).get(u)
                if rbucket and edge_id in rbucket:
                    rbucket.remove(edge_id)
                    if not rbucket:
                        del self._radj[v][u]
        for pair in [(edge.source, edge.target), (edge.target, edge.source)]:
            if self._edge_by_pair.get(pair) == edge_id:
                del self._edge_by_pair[pair]
                remaining = self._adj.get(pair[0], {}).get(pair[1], [])
                if remaining:
                    self._edge_by_pair[pair] = remaining[0]
        self.version += 1

    def remove_node(self, node_id: str) -> None:
        """Remove a node and all its incident edges."""
        if node_id not in self._nodes:
            raise KeyError(f"unknown node {node_id!r}")
        for edge_id in list(self.incident_edges(node_id)):
            self.remove_edge(edge_id)
        del self._nodes[node_id]
        del self._adj[node_id]
        self.version += 1
        if self.directed:
            del self._radj[node_id]

    # -- access ----------------------------------------------------------------

    def node(self, node_id: str) -> Node:
        """The node with the given id (KeyError if absent)."""
        return self._nodes[node_id]

    def edge(self, edge_id: str) -> Edge:
        """The edge with the given id (KeyError if absent)."""
        return self._edges[edge_id]

    def has_node(self, node_id: str) -> bool:
        """Whether a node with this id exists."""
        return node_id in self._nodes

    def has_edge(self, source: str, target: str) -> bool:
        """Whether an edge connects the two nodes (O(1) pair hashtable)."""
        return (source, target) in self._edge_by_pair

    def edge_between(self, source: str, target: str) -> Optional[Edge]:
        """The edge between two nodes, or ``None``."""
        edge_id = self._edge_by_pair.get((source, target))
        return self._edges[edge_id] if edge_id is not None else None

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._nodes.values())

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in insertion order."""
        return iter(self._edges.values())

    def node_ids(self) -> List[str]:
        """All node ids in insertion order."""
        return list(self._nodes)

    def edge_ids(self) -> List[str]:
        """All edge ids in insertion order."""
        return list(self._edges)

    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def neighbors(self, node_id: str) -> List[str]:
        """Neighbor node ids (out-neighbors for directed graphs)."""
        return list(self._adj[node_id])

    def in_neighbors(self, node_id: str) -> List[str]:
        """In-neighbors (equals :meth:`neighbors` for undirected graphs)."""
        if not self.directed:
            return list(self._adj[node_id])
        return list(self._radj[node_id])

    def all_neighbors(self, node_id: str) -> List[str]:
        """Neighbors ignoring direction (union of in and out)."""
        if not self.directed:
            return list(self._adj[node_id])
        seen = dict.fromkeys(self._adj[node_id])
        seen.update(dict.fromkeys(self._radj[node_id]))
        return list(seen)

    def degree(self, node_id: str) -> int:
        """Number of incident edges (in+out for directed graphs)."""
        total = sum(len(b) for b in self._adj[node_id].values())
        if self.directed:
            total += sum(len(b) for b in self._radj[node_id].values())
        elif self._adj[node_id].get(node_id):
            # undirected self-loops appear once in the adjacency bucket
            total += len(self._adj[node_id][node_id])
        return total

    def incident_edges(self, node_id: str) -> Iterator[str]:
        """Iterate ids of edges incident to the node."""
        seen: Set[str] = set()
        for bucket in self._adj[node_id].values():
            for edge_id in bucket:
                if edge_id not in seen:
                    seen.add(edge_id)
                    yield edge_id
        if self.directed:
            for bucket in self._radj[node_id].values():
                for edge_id in bucket:
                    if edge_id not in seen:
                        seen.add(edge_id)
                        yield edge_id

    def __getitem__(self, attr: str) -> Any:
        """Graph-level attribute lookup."""
        return self.tuple[attr]

    def get(self, attr: str, default: Any = None) -> Any:
        """Graph-level attribute lookup with a default."""
        return self.tuple.get(attr, default)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # -- derived graphs ---------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Graph":
        """A deep copy (tuples copied, same ids)."""
        out = Graph(name if name is not None else self.name,
                    self.tuple.copy(), directed=self.directed)
        for node in self.nodes():
            out.add_node_obj(Node(node.id, node.tuple.copy()))
        for edge in self.edges():
            out.add_edge(edge.source, edge.target, edge_id=edge.id,
                         **{})
            out.edge(edge.id).tuple = edge.tuple.copy()
        out._next_node = self._next_node
        out._next_edge = self._next_edge
        return out

    def induced_subgraph(self, node_ids: Iterable[str], name: Optional[str] = None) -> "Graph":
        """The subgraph induced by the given nodes (copies tuples)."""
        keep = set(node_ids)
        out = Graph(name, directed=self.directed)
        for node_id in keep:
            node = self._nodes[node_id]
            out.add_node_obj(Node(node.id, node.tuple.copy()))
        for edge in self.edges():
            if edge.source in keep and edge.target in keep:
                out.add_edge(edge.source, edge.target, edge_id=edge.id)
                out.edge(edge.id).tuple = edge.tuple.copy()
        return out

    def relabeled(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Graph":
        """A copy with node ids renamed through *mapping* (others kept)."""
        out = Graph(name if name is not None else self.name,
                    self.tuple.copy(), directed=self.directed)
        for node in self.nodes():
            out.add_node_obj(Node(mapping.get(node.id, node.id), node.tuple.copy()))
        for edge in self.edges():
            new = out.add_edge(
                mapping.get(edge.source, edge.source),
                mapping.get(edge.target, edge.target),
                edge_id=edge.id,
            )
            new.tuple = edge.tuple.copy()
        return out

    # -- comparison ----------------------------------------------------------------

    def equals(self, other: "Graph") -> bool:
        """Exact equality: same ids, same structure, same attributes."""
        if not isinstance(other, Graph):
            return False
        if self.directed != other.directed or self.tuple != other.tuple:
            return False
        if set(self._nodes) != set(other._nodes):
            return False
        for node_id, node in self._nodes.items():
            if node.tuple != other._nodes[node_id].tuple:
                return False
        mine = self._edge_pair_multiset()
        theirs = other._edge_pair_multiset()
        return mine == theirs

    def _edge_pair_multiset(self) -> Dict[Tuple[str, str], List[AttributeTuple]]:
        pairs: Dict[Tuple[str, str], List[AttributeTuple]] = {}
        for edge in self.edges():
            key = (edge.source, edge.target)
            if not self.directed and key[0] > key[1]:
                key = (key[1], key[0])
            pairs.setdefault(key, []).append(edge.tuple)
        for bucket in pairs.values():
            bucket.sort(key=repr)
        return pairs

    def signature(self) -> int:
        """A structural+attribute hash consistent with :meth:`equals`."""
        node_part = tuple(sorted((nid, hash(n.tuple)) for nid, n in self._nodes.items()))
        edge_part = tuple(
            sorted(
                (pair, tuple(hash(t) for t in ts))
                for pair, ts in self._edge_pair_multiset().items()
            )
        )
        return hash((self.directed, hash(self.tuple), node_part, edge_part))

    def __repr__(self) -> str:
        name = self.name or "<anon>"
        return (
            f"Graph({name}, nodes={len(self._nodes)}, edges={len(self._edges)}, "
            f"directed={self.directed})"
        )


def disjoint_union(
    parts: Mapping[str, Graph],
    name: Optional[str] = None,
    directed: Optional[bool] = None,
) -> Graph:
    """Compose member graphs into one graph with qualified node ids.

    Node ``v1`` of member ``X`` becomes ``X.v1`` in the result; the
    ``members`` mapping on the result records the original graphs.  This is
    the structural core of the Cartesian product operator (Section 3.3).
    """
    if directed is None:
        directed = any(g.directed for g in parts.values())
    out = Graph(name, directed=directed)
    for alias, part in parts.items():
        for node in part.nodes():
            out.add_node_obj(Node(f"{alias}.{node.id}", node.tuple.copy()))
        for edge in part.edges():
            new = out.add_edge(
                f"{alias}.{edge.source}", f"{alias}.{edge.target}",
                edge_id=f"{alias}.{edge.id}",
            )
            new.tuple = edge.tuple.copy()
        out.members[alias] = part
    return out
