"""The graph algebra (Section 3.3).

Bulk operators over collections of graphs, defined along the lines of the
relational algebra:

* **selection** σ_P(C) — generalized to graph pattern matching; returns
  matched graphs ⟨Φ, P, G⟩;
* **Cartesian product** C × D — composes pairs of graphs into one graph
  with the constituents as (unconnected) members;
* **join** C ⋈_P D — a product followed by a selection (valued join); a
  structural join adds composition;
* **composition** ω_T(C) — instantiates a graph template per input graph;
* set operators **union / difference / intersection**;
* **projection** and **renaming**, expressed through composition.

The five basic operators (selection, product, primitive composition,
union, difference) are complete; everything else here is sugar over them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from ..matching.basic import find_matches
from ..runtime import ExecutionContext
from .bindings import MatchedGraph, as_graph
from .collection import GraphCollection
from .graph import Graph, disjoint_union
from .pattern import GraphPattern, GroundPattern
from .predicate import Expr, Scope
from .template import GraphTemplate

PatternLike = Union[GraphPattern, GroundPattern]


def _ground_patterns(
    pattern: PatternLike, grammar=None, max_depth: int = 8
) -> List[GroundPattern]:
    if isinstance(pattern, GroundPattern):
        return [pattern]
    return pattern.ground(grammar, max_depth)


def select(
    collection: GraphCollection,
    pattern: PatternLike,
    exhaustive: bool = True,
    limit: Optional[int] = None,
    matcher_factory: Optional[Callable[[Graph], "object"]] = None,
    grammar=None,
    max_depth: int = 8,
    context: Optional[ExecutionContext] = None,
) -> GraphCollection:
    """The selection operator σ_P(C) (Section 3.3).

    Returns a collection of :class:`MatchedGraph`.  With ``exhaustive``
    every mapping of every graph is returned (a graph can match in many
    places); otherwise at most one mapping per graph.

    *matcher_factory* optionally supplies an access-method pipeline (a
    :class:`~repro.matching.planner.GraphMatcher` per graph); by default
    the basic Algorithm 4.1 with scan retrieval is used, which is the
    right choice for collections of small graphs.

    *context* governs the whole selection: the per-graph searches share
    its deadline/budgets, and an interrupted selection returns the
    matches found so far (check ``context.outcome()`` for the status).
    """
    grounds: List[GroundPattern] = _ground_patterns(pattern, grammar, max_depth)
    out = GraphCollection()
    for graph_like in collection:
        if context is not None and context.is_interrupted:
            break
        graph = as_graph(graph_like)
        for ground in grounds:
            if matcher_factory is not None:
                matcher = matcher_factory(graph)
                from ..matching.planner import MatchOptions

                report = matcher.match(
                    ground,
                    MatchOptions(exhaustive=exhaustive, limit=limit),
                    context=context,
                )
                mappings = report.mappings
            else:
                mappings = find_matches(
                    ground, graph, exhaustive=exhaustive, limit=limit,
                    context=context,
                )
            for mapping in mappings:
                out.add(MatchedGraph(mapping, ground, graph))
            if mappings and not exhaustive:
                break
    return out


def cartesian_product(
    left: GraphCollection,
    right: GraphCollection,
    left_name: str = "G1",
    right_name: str = "G2",
    context: Optional[ExecutionContext] = None,
) -> GraphCollection:
    """C × D: each output graph contains one member from each input.

    The constituent graphs are unconnected members of the result, reachable
    through qualified ids (``G1.v1``) and the ``members`` mapping.
    """
    out = GraphCollection()
    for graph_a in left:
        for graph_b in right:
            if context is not None:
                context.tick()
            out.add(
                disjoint_union(
                    {left_name: as_graph(graph_a), right_name: as_graph(graph_b)}
                )
            )
    return out


def join(
    left: GraphCollection,
    right: GraphCollection,
    condition: Union[PatternLike, Expr],
    left_name: str = "G1",
    right_name: str = "G2",
    context: Optional[ExecutionContext] = None,
) -> GraphCollection:
    """C ⋈_P D: Cartesian product followed by selection.

    *condition* is either a graph pattern (applied to the composite graph)
    or a bare predicate expression over the member graphs (a valued join,
    Fig. 4.10), evaluated with ``G1``/``G2`` bound to the members.
    """
    product = cartesian_product(left, right, left_name, right_name,
                                context=context)
    if isinstance(condition, (GraphPattern, GroundPattern)):
        return select(product, condition, context=context)
    out = GraphCollection()
    for composite in product:
        if context is not None:
            context.tick()
        scope = Scope(
            {alias: member for alias, member in composite.members.items()},
            fallback=composite,
        )
        if condition.holds(scope):
            out.add(composite)
    return out


def compose(
    template: GraphTemplate,
    *collections: GraphCollection,
    param_names: Optional[Sequence[str]] = None,
) -> GraphCollection:
    """The composition operator ω_T (Section 3.3).

    With one collection this is the primitive composition: one output
    graph per input graph.  With several collections, their Cartesian
    product feeds the template (one output per combination), matching the
    paper's reduction ω_T(C1, C2) = ω'_T(C1 × C2).
    """
    names = list(param_names) if param_names is not None else template.params
    if len(names) != len(collections):
        raise ValueError(
            f"template expects {len(names)} collections, got {len(collections)}"
        )
    out = GraphCollection()

    def recurse(index: int, chosen: Dict[str, Union[Graph, MatchedGraph]]) -> None:
        if index == len(names):
            out.add(template.instantiate(dict(chosen)))
            return
        for graph_like in collections[index]:
            chosen[names[index]] = graph_like
            recurse(index + 1, chosen)
            del chosen[names[index]]

    recurse(0, {})
    return out


def union(left: GraphCollection, right: GraphCollection) -> GraphCollection:
    """Set union of two collections."""
    return left.union(right)


def difference(left: GraphCollection, right: GraphCollection) -> GraphCollection:
    """Set difference of two collections."""
    return left.difference(right)


def intersection(left: GraphCollection, right: GraphCollection) -> GraphCollection:
    """Set intersection (derivable from difference; provided directly)."""
    return left.intersection(right)


# -- operators expressed through composition (Theorem 4.5 machinery) -------------


def project(
    collection: GraphCollection,
    pattern: PatternLike,
    attr_paths: Dict[str, str],
) -> GraphCollection:
    """Projection: rewrite selected attributes onto a fresh single node.

    *attr_paths* maps output attribute names to dotted paths into the
    pattern binding (e.g. ``{"name": "P.v1.name"}``).  This is the
    construction used in the proof of Theorem 4.5 (RA ⊆ GraphQL).
    """
    from .predicate import AttrRef

    matched = select(collection, pattern)
    grounds = _ground_patterns(pattern)
    pattern_name = grounds[0].name or "P"
    template = GraphTemplate([pattern_name])
    template.add_node(
        "v1",
        attr_exprs={
            out_name: AttrRef(tuple(path.split(".")))
            for out_name, path in attr_paths.items()
        },
    )
    out = GraphCollection()
    for matched_graph in matched:
        out.add(template.instantiate({pattern_name: matched_graph}))
    return out


def rename(
    collection: GraphCollection,
    renames: Dict[str, str],
) -> GraphCollection:
    """Renaming: per graph, rename node attributes via composition.

    *renames* maps old attribute names to new ones; node structure is
    preserved.
    """
    from .tuples import AttributeTuple

    out = GraphCollection()
    for graph_like in collection:
        graph = as_graph(graph_like).copy()
        for node in graph.nodes():
            if any(old in node.tuple for old in renames):
                attrs = {
                    renames.get(key, key): val for key, val in node.tuple.items()
                }
                node.tuple = AttributeTuple(attrs, tag=node.tuple.tag)
        out.add(graph)
    return out
