"""FLWR expressions: the query syntax semantics (Section 3.4).

GraphQL adopts For / Let / Where / Return expressions.  A ``for`` clause
binds a graph pattern (or a plain variable) against a document collection;
``where`` filters bindings; ``return`` emits one instantiated template per
binding, while ``let`` *accumulates* — each binding re-instantiates the
template with the accumulator included (``graph C;``), which is how the
co-authorship query of Fig. 4.12 grows its result graph.

A :class:`Program` is a sequence of statements (assignments and FLWR
expressions) evaluated against a database that resolves ``doc(name)``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, Union

from ..obs.trace import span as trace_span
from ..runtime import ExecutionContext, ExecutionInterrupted
from .algebra import select
from .bindings import MatchedGraph
from .collection import GraphCollection
from .graph import Graph
from .pattern import GraphPattern
from .predicate import Expr, Scope
from .template import GraphTemplate


class DocumentSource(Protocol):
    """Anything that can resolve ``doc(name)`` to a collection."""

    def doc(self, name: str) -> GraphCollection:  # pragma: no cover - protocol
        ...


class DictSource:
    """A document source backed by a plain dict (handy in tests)."""

    def __init__(self, docs: Dict[str, GraphCollection]) -> None:
        self._docs = dict(docs)

    def doc(self, name: str) -> GraphCollection:
        """Resolve a document name (KeyError when unknown)."""
        if name not in self._docs:
            raise KeyError(f"unknown document {name!r}")
        return self._docs[name]


class ForClause:
    """``for <pattern|var> [exhaustive] in doc(source) [where ...]``."""

    def __init__(
        self,
        source: str,
        pattern: Optional[GraphPattern] = None,
        var: Optional[str] = None,
        exhaustive: bool = False,
        where: Optional[Expr] = None,
    ) -> None:
        if (pattern is None) == (var is None):
            raise ValueError("a for clause binds either a pattern or a variable")
        self.source = source
        self.pattern = pattern
        self.var = var
        self.exhaustive = exhaustive
        self.where = where

    @property
    def binding_name(self) -> str:
        """The name the clause binds for downstream template parameters."""
        if self.var is not None:
            return self.var
        assert self.pattern is not None
        if not self.pattern.name:
            raise ValueError("for-clause patterns must be named")
        return self.pattern.name

    def bindings(
        self,
        database: DocumentSource,
        env: Dict[str, Any],
        grammar=None,
        context: Optional[ExecutionContext] = None,
    ) -> List[Union[Graph, MatchedGraph]]:
        """Evaluate the clause to the list of bindings, in document order."""
        with trace_span("flwr.for", source=self.source) as sp:
            out = self._bindings(database, env, grammar, context)
            sp.incr("bindings", len(out))
        return out

    def _bindings(
        self,
        database: DocumentSource,
        env: Dict[str, Any],
        grammar=None,
        context: Optional[ExecutionContext] = None,
    ) -> List[Union[Graph, MatchedGraph]]:
        collection = database.doc(self.source)
        out: List[Union[Graph, MatchedGraph]] = []
        if self.pattern is not None:
            # route big graphs through the database's cached access-method
            # pipeline (indexes + refinement); small graphs scan directly
            matcher_factory = None
            if hasattr(database, "matcher_for"):
                big = max((g.num_nodes() for g in collection
                           if isinstance(g, Graph)), default=0)
                if big >= 256:
                    matcher_factory = database.matcher_for  # type: ignore[attr-defined]
            matched = select(
                collection,
                self.pattern,
                exhaustive=self.exhaustive,
                grammar=grammar,
                matcher_factory=matcher_factory,
                context=context,
            )
            candidates: List[Union[Graph, MatchedGraph]] = list(matched)
        else:
            candidates = list(collection)
        for binding in candidates:
            if context is not None:
                context.tick()
            if self.where is not None:
                scope = Scope(
                    {self.binding_name: binding, **env}, fallback=binding
                )
                if not self.where.holds(scope):
                    continue
            out.append(binding)
        return out


class FLWRQuery:
    """One FLWR expression: a for clause plus a return or let clause."""

    def __init__(
        self,
        for_clause: ForClause,
        template: GraphTemplate,
        let_var: Optional[str] = None,
    ) -> None:
        self.for_clause = for_clause
        self.template = template
        self.let_var = let_var  # None => return mode

    def evaluate(
        self,
        database: DocumentSource,
        env: Optional[Dict[str, Any]] = None,
        grammar=None,
        context: Optional[ExecutionContext] = None,
    ) -> Union[GraphCollection, Graph]:
        """Evaluate against a database; returns the collection or accumulator.

        In ``let`` mode the environment entry for the accumulator is
        updated in place (so later statements see it) and the final
        accumulator graph is returned.
        """
        env = env if env is not None else {}
        name = self.for_clause.binding_name
        mode = "return" if self.let_var is None else "let"
        with trace_span("flwr.query", mode=mode) as sp:
            bindings = self.for_clause.bindings(database, env, grammar,
                                                context=context)
            if self.let_var is None:
                out = GraphCollection()
                for binding in bindings:
                    if context is not None:
                        context.tick()
                    arguments = self._arguments(env, name, binding)
                    out.add(self.template.instantiate(arguments))
                sp.incr("graphs", len(out))
                return out
            accumulator = env.get(self.let_var)
            if accumulator is None:
                accumulator = Graph(self.let_var)
            for binding in bindings:
                if context is not None:
                    context.tick()
                arguments = self._arguments(env, name, binding)
                arguments[self.let_var] = accumulator
                accumulator = self.template.instantiate(arguments)
            env[self.let_var] = accumulator
            sp.incr("graphs", 1)
        return accumulator

    def _arguments(
        self,
        env: Dict[str, Any],
        binding_name: str,
        binding: Union[Graph, MatchedGraph],
    ) -> Dict[str, Any]:
        arguments: Dict[str, Any] = {}
        for param in self.template.params:
            if param == binding_name:
                arguments[param] = binding
            elif param in env:
                arguments[param] = env[param]
        arguments.setdefault(binding_name, binding)
        return arguments


class Assignment:
    """``C := <graph literal>;`` — bind a name in the environment."""

    def __init__(self, name: str, graph: Graph) -> None:
        self.name = name
        self.graph = graph

    def evaluate(self, database: DocumentSource, env: Dict[str, Any],
                 grammar=None, context: Optional[ExecutionContext] = None):
        """Bind a fresh copy so repeated runs do not share state."""
        env[self.name] = self.graph.copy(name=self.name)
        return env[self.name]


class Program:
    """A sequence of statements (assignments and FLWR expressions)."""

    def __init__(self, statements: Optional[List[Any]] = None, grammar=None) -> None:
        self.statements = list(statements) if statements else []
        self.grammar = grammar

    def add(self, statement: Any) -> None:
        """Append a statement."""
        self.statements.append(statement)

    def run(
        self,
        database: DocumentSource,
        env: Optional[Dict[str, Any]] = None,
        context: Optional[ExecutionContext] = None,
    ) -> Dict[str, Any]:
        """Run all statements; returns the final environment.

        The value of the last statement is stored under ``"__result__"``.
        A governance interruption (deadline, budget, cancellation) stops
        the program: the interruption is recorded on the context and the
        environment built so far is returned — ``"__result__"`` then
        holds the last *completed* statement's value.
        """
        env = env if env is not None else {}
        result: Any = None
        with trace_span("flwr.program") as sp:
            try:
                for statement in self.statements:
                    if context is not None:
                        context.check()
                    result = statement.evaluate(database, env, self.grammar,
                                                context=context)
                    sp.incr("statements", 1)
            except ExecutionInterrupted as exc:
                if context is None:
                    raise
                context.mark_interrupted(exc)
        env["__result__"] = result
        return env
