"""Attribute tuples: the unit of annotation in the GraphQL data model.

Section 3.1 of the paper: *"we use a tuple, a list of name and value pairs,
to represent the attributes of each node, edge, or graph. A tuple may have
an optional tag that denotes the tuple type."*

Tuples are ordered (insertion order is preserved, as in the concrete
syntax), values are scalars (``int``, ``float``, ``str`` or ``bool``), and
the representations of attributes and structures are kept separate: graph
elements *have* a tuple, they are not themselves tuples.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Optional, Tuple

#: The scalar value types a tuple attribute may take.
ScalarValue = (int, float, str, bool)


def check_scalar(name: str, value: Any) -> Any:
    """Validate that *value* is a legal attribute value and return it."""
    if not isinstance(value, ScalarValue):
        raise TypeError(
            f"attribute {name!r} must be int, float, str or bool, "
            f"got {type(value).__name__}"
        )
    return value


class AttributeTuple:
    """An ordered list of name/value pairs with an optional *tag*.

    The tag denotes the tuple type (e.g. ``<author name="A">`` has tag
    ``author``).  Instances behave like small read-mostly mappings::

        >>> t = AttributeTuple({"name": "A"}, tag="author")
        >>> t["name"]
        'A'
        >>> t.get("year") is None
        True
        >>> t.tag
        'author'
    """

    __slots__ = ("_tag", "_attrs")

    def __init__(
        self,
        attrs: Optional[Mapping[str, Any]] = None,
        tag: Optional[str] = None,
    ) -> None:
        self._tag = tag
        self._attrs: dict[str, Any] = {}
        if attrs:
            for name, value in attrs.items():
                self._attrs[name] = check_scalar(name, value)

    # -- basic mapping protocol -------------------------------------------

    @property
    def tag(self) -> Optional[str]:
        """The optional tuple type tag, or ``None``."""
        return self._tag

    def __getitem__(self, name: str) -> Any:
        return self._attrs[name]

    def get(self, name: str, default: Any = None) -> Any:
        """Return the attribute value, or *default* if absent."""
        return self._attrs.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._attrs

    def __iter__(self) -> Iterator[str]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def names(self) -> Tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(self._attrs)

    def items(self) -> Iterable[Tuple[str, Any]]:
        """Iterate over ``(name, value)`` pairs in declaration order."""
        return self._attrs.items()

    def as_dict(self) -> dict[str, Any]:
        """A fresh plain-dict copy of the attributes."""
        return dict(self._attrs)

    # -- updates -----------------------------------------------------------

    def set(self, name: str, value: Any) -> None:
        """Set (or overwrite) one attribute."""
        self._attrs[name] = check_scalar(name, value)

    def update(self, attrs: Mapping[str, Any]) -> None:
        """Set several attributes at once."""
        for name, value in attrs.items():
            self.set(name, value)

    def merged(self, other: "AttributeTuple") -> "AttributeTuple":
        """A new tuple with *other*'s attributes layered over this one.

        Used when two nodes are unified: the surviving node keeps its own
        attributes and gains any attribute of the absorbed node it did not
        already have.  The surviving tag wins; the absorbed tag is used
        only if the survivor has none.
        """
        merged = AttributeTuple(self._attrs, tag=self._tag or other._tag)
        for name, value in other.items():
            if name not in merged:
                merged.set(name, value)
        return merged

    def matches_constraints(
        self,
        required_tag: Optional[str],
        required_attrs: Optional[Mapping[str, Any]],
    ) -> bool:
        """Check the declarative constraints a pattern tuple imposes.

        A pattern element ``<author name="A">`` requires the data tuple to
        carry tag ``author`` and attribute ``name`` equal to ``"A"``.
        """
        if required_tag is not None and self._tag != required_tag:
            return False
        if required_attrs:
            for name, value in required_attrs.items():
                if self._attrs.get(name) != value:
                    return False
        return True

    # -- copying / equality -------------------------------------------------

    def copy(self) -> "AttributeTuple":
        """An independent copy."""
        return AttributeTuple(self._attrs, tag=self._tag)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeTuple):
            return NotImplemented
        return self._tag == other._tag and self._attrs == other._attrs

    def __hash__(self) -> int:
        return hash((self._tag, tuple(sorted(self._attrs.items()))))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._attrs.items())
        tag = f"{self._tag} " if self._tag else ""
        return f"<{tag}{inner}>"


EMPTY_TUPLE = AttributeTuple()
