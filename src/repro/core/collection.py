"""Collections of graphs: the operand type of the graph algebra.

Section 3.1: *"Each operator takes one or more collections of graphs as
input and generates a collection of graphs as output. A graph database
consists of one or more collections of graphs."*  Unlike relations, graphs
in a collection need not share structure or attributes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

from .graph import Graph


class GraphCollection:
    """An ordered collection of graphs (duplicates allowed).

    Set-style operators (:meth:`union`, :meth:`difference`,
    :meth:`intersection`) compare graphs by exact structural+attribute
    equality (:meth:`Graph.equals`), deduplicating the result as the
    relational set semantics require.
    """

    def __init__(self, graphs: Optional[Iterable[Graph]] = None, name: Optional[str] = None) -> None:
        self.name = name
        self._graphs: List[Graph] = list(graphs) if graphs else []

    # -- container protocol --------------------------------------------------

    def add(self, graph: Graph) -> None:
        """Append a graph to the collection."""
        self._graphs.append(graph)

    def extend(self, graphs: Iterable[Graph]) -> None:
        """Append several graphs."""
        self._graphs.extend(graphs)

    def __iter__(self) -> Iterator[Graph]:
        return iter(self._graphs)

    def __len__(self) -> int:
        return len(self._graphs)

    def __getitem__(self, index: int) -> Graph:
        return self._graphs[index]

    def graphs(self) -> List[Graph]:
        """The underlying list (a shallow copy)."""
        return list(self._graphs)

    def first(self) -> Graph:
        """The first graph (ValueError when empty)."""
        if not self._graphs:
            raise ValueError("collection is empty")
        return self._graphs[0]

    def filter(self, keep: Callable[[Graph], bool]) -> "GraphCollection":
        """A new collection with only the graphs *keep* accepts."""
        return GraphCollection([g for g in self._graphs if keep(g)])

    def map(self, fn: Callable[[Graph], Graph]) -> "GraphCollection":
        """A new collection with *fn* applied to each graph."""
        return GraphCollection([fn(g) for g in self._graphs])

    # -- set operators (Section 3.3, "Other operators") ------------------------

    def _contains_graph(self, graph: Graph) -> bool:
        return any(g.equals(graph) for g in self._graphs)

    def distinct(self) -> "GraphCollection":
        """Deduplicate by exact graph equality, preserving first occurrence."""
        out: List[Graph] = []
        for graph in self._graphs:
            if not any(g.equals(graph) for g in out):
                out.append(graph)
        return GraphCollection(out)

    def union(self, other: "GraphCollection") -> "GraphCollection":
        """Set union (deduplicated)."""
        out = self.distinct()
        for graph in other:
            if not out._contains_graph(graph):
                out.add(graph)
        return out

    def difference(self, other: "GraphCollection") -> "GraphCollection":
        """Set difference (deduplicated)."""
        return GraphCollection(
            [g for g in self.distinct() if not other._contains_graph(g)]
        )

    def intersection(self, other: "GraphCollection") -> "GraphCollection":
        """Set intersection (deduplicated)."""
        return GraphCollection(
            [g for g in self.distinct() if other._contains_graph(g)]
        )

    def __repr__(self) -> str:
        name = self.name or "<anon>"
        return f"GraphCollection({name}, {len(self._graphs)} graphs)"
