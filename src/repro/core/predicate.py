"""Predicate expressions over graph attributes.

A graph pattern is a pair ``(motif, predicate)`` (Definition 4.1).  The
predicate is *"a combination of boolean or arithmetic comparison
expressions"* over attribute references such as ``v1.name`` or
``P.booktitle``.  This module provides:

* the expression AST (:class:`Literal`, :class:`AttrRef`, :class:`BinOp`,
  :class:`Not`);
* evaluation against a :class:`Scope` that resolves dotted paths through
  matched graphs, graphs, nodes and edges;
* the predicate *pushdown* decomposition of Section 4.1: a conjunction is
  split into per-node predicates ``F_u``, per-edge predicates ``F_e`` and a
  residual graph-wide predicate ``F``.

Missing attributes follow semistructured semantics: a comparison involving
an absent attribute is false, so heterogeneous graphs can be queried with
one pattern.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple


class _Missing:
    """Sentinel for an unresolved attribute reference."""

    _instance: Optional["_Missing"] = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"

    def __bool__(self) -> bool:
        return False


MISSING = _Missing()

#: Binary operators in precedence groups (low to high).
BOOLEAN_OPS = ("|", "&")
COMPARISON_OPS = ("==", "!=", ">", ">=", "<", "<=")
ADDITIVE_OPS = ("+", "-")
MULTIPLICATIVE_OPS = ("*", "/")
ALL_OPS = BOOLEAN_OPS + COMPARISON_OPS + ADDITIVE_OPS + MULTIPLICATIVE_OPS


class Expr:
    """Base class of predicate expressions."""

    #: 1-based ``(line, column)`` of the token that started this
    #: expression, set by the language parser; ``None`` for expressions
    #: built programmatically.  Positions are carried for diagnostics
    #: only — they never participate in ``__eq__``/``__hash__``.
    pos: Optional[Tuple[int, int]] = None

    def evaluate(self, scope: "Scope") -> Any:
        """Evaluate against a scope; may return :data:`MISSING`."""
        raise NotImplementedError

    def holds(self, scope: "Scope") -> bool:
        """Evaluate as a boolean predicate (missing => false)."""
        value = self.evaluate(scope)
        if value is MISSING:
            return False
        return bool(value)

    def root_names(self) -> Set[str]:
        """The set of first-path-element names referenced."""
        out: Set[str] = set()
        self._collect_roots(out)
        return out

    def _collect_roots(self, out: Set[str]) -> None:
        raise NotImplementedError

    def conjuncts(self) -> List["Expr"]:
        """Split a top-level ``&`` chain into its conjuncts."""
        return [self]

    def to_graphql(self) -> str:
        """Render back to GraphQL concrete syntax."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_graphql()})"


class Literal(Expr):
    """A constant ``int``, ``float`` or ``str``."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, scope: "Scope") -> Any:
        return self.value

    def _collect_roots(self, out: Set[str]) -> None:
        pass

    def to_graphql(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Literal", self.value))


class AttrRef(Expr):
    """A dotted attribute reference such as ``P.v1.name`` or ``year``."""

    __slots__ = ("path",)

    def __init__(self, path: Sequence[str]) -> None:
        if not path:
            raise ValueError("empty attribute path")
        self.path: Tuple[str, ...] = tuple(path)

    def evaluate(self, scope: "Scope") -> Any:
        return scope.resolve(self.path)

    def _collect_roots(self, out: Set[str]) -> None:
        out.add(self.path[0])

    def to_graphql(self) -> str:
        return ".".join(self.path)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AttrRef) and self.path == other.path

    def __hash__(self) -> int:
        return hash(("AttrRef", self.path))


class BinOp(Expr):
    """A binary operation; see :data:`ALL_OPS` for the operator set."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in ALL_OPS:
            raise ValueError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, scope: "Scope") -> Any:
        op = self.op
        if op == "&":
            return self.left.holds(scope) and self.right.holds(scope)
        if op == "|":
            return self.left.holds(scope) or self.right.holds(scope)
        lhs = self.left.evaluate(scope)
        rhs = self.right.evaluate(scope)
        if op in COMPARISON_OPS:
            return _compare(op, lhs, rhs)
        # arithmetic: missing propagates
        if lhs is MISSING or rhs is MISSING:
            return MISSING
        try:
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                return lhs / rhs
        except (TypeError, ZeroDivisionError):
            return MISSING
        raise AssertionError(f"unhandled operator {op!r}")

    def conjuncts(self) -> List[Expr]:
        if self.op == "&":
            return self.left.conjuncts() + self.right.conjuncts()
        return [self]

    def _collect_roots(self, out: Set[str]) -> None:
        self.left._collect_roots(out)
        self.right._collect_roots(out)

    def to_graphql(self) -> str:
        return f"({self.left.to_graphql()} {self.op} {self.right.to_graphql()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BinOp)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("BinOp", self.op, self.left, self.right))


class Not(Expr):
    """Boolean negation (algebra-level extension; not in the Appendix grammar)."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def evaluate(self, scope: "Scope") -> Any:
        return not self.operand.holds(scope)

    def _collect_roots(self, out: Set[str]) -> None:
        self.operand._collect_roots(out)

    def to_graphql(self) -> str:
        return f"!({self.operand.to_graphql()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash(("Not", self.operand))


def _compare(op: str, lhs: Any, rhs: Any) -> bool:
    """Comparison with semistructured semantics (missing/mismatch => false)."""
    if lhs is MISSING or rhs is MISSING:
        return False
    if op == "==":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    try:
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
    except TypeError:
        return False
    raise AssertionError(f"unhandled comparison {op!r}")


def conjunction(exprs: Iterable[Expr]) -> Optional[Expr]:
    """Combine expressions with ``&``; ``None`` when the input is empty."""
    result: Optional[Expr] = None
    for expr in exprs:
        result = expr if result is None else BinOp("&", result, expr)
    return result


# --------------------------------------------------------------------------
# Scopes
# --------------------------------------------------------------------------


class Scope:
    """Resolves dotted attribute paths during predicate evaluation.

    A scope maps root names to entities (nodes, edges, graphs, matched
    graphs, or scalar values).  Path resolution then walks one step at a
    time: a graph resolves a name to one of its nodes, members or
    attributes; a node or edge resolves a name to one of its attributes.
    An optional *fallback* entity handles node-local predicates, where a
    bare ``name`` means "attribute of the node being tested".
    """

    __slots__ = ("bindings", "fallback", "parent")

    def __init__(
        self,
        bindings: Optional[Dict[str, Any]] = None,
        fallback: Any = None,
        parent: Optional["Scope"] = None,
    ) -> None:
        self.bindings = bindings or {}
        self.fallback = fallback
        self.parent = parent

    def child(self, bindings: Dict[str, Any], fallback: Any = None) -> "Scope":
        """A nested scope that shadows this one."""
        return Scope(bindings, fallback=fallback, parent=self)

    def lookup(self, name: str) -> Any:
        """Find the entity bound to a root name, or :data:`MISSING`."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return MISSING

    def resolve(self, path: Tuple[str, ...]) -> Any:
        """Resolve a full dotted path to a scalar value (or MISSING)."""
        current = self.lookup(path[0])
        rest = path[1:]
        if current is MISSING:
            # fall back to attribute lookup on the implicit entity
            if self.fallback is not None:
                return _resolve_steps(self.fallback, path)
            return MISSING
        return _resolve_steps(current, rest) if rest else _terminalize(current)


def _terminalize(entity: Any) -> Any:
    """A path ending on an entity: scalars pass through, others are opaque."""
    return entity


def _resolve_steps(entity: Any, steps: Tuple[str, ...]) -> Any:
    for step in steps:
        entity = _resolve_one(entity, step)
        if entity is MISSING:
            return MISSING
    return _terminalize(entity)


def _resolve_one(entity: Any, name: str) -> Any:
    # local import to avoid a cycle (bindings imports predicate)
    from .bindings import MatchedGraph
    from .graph import Edge, Graph, Node

    if isinstance(entity, MatchedGraph):
        return entity.resolve(name)
    if isinstance(entity, Graph):
        if entity.has_node(name):
            return entity.node(name)
        if name in entity.members:
            return entity.members[name]
        qualified = _find_qualified_member_node(entity, name)
        if qualified is not None:
            return qualified
        value = entity.tuple.get(name, MISSING)
        return value if value is not MISSING else MISSING
    if isinstance(entity, (Node, Edge)):
        return entity.tuple.get(name, MISSING)
    if isinstance(entity, dict):
        return entity.get(name, MISSING)
    return MISSING


def _find_qualified_member_node(graph: Any, name: str) -> Any:
    """Inside a composed graph, ``X`` may name the alias prefix of nodes."""
    prefix = name + "."
    hits = [nid for nid in graph.node_ids() if nid.startswith(prefix)]
    if not hits:
        return None
    view = {nid[len(prefix):]: graph.node(nid) for nid in hits}
    return view


# --------------------------------------------------------------------------
# Predicate pushdown (Section 4.1)
# --------------------------------------------------------------------------


class DecomposedPredicate:
    """A predicate split into per-element and residual parts.

    ``node_preds[u]`` collects the conjuncts referencing only pattern node
    ``u``; ``edge_preds[e]`` those referencing only edge ``e`` (or only the
    edge and its own end points is *not* pushed — end points are separate
    elements); everything else stays in :attr:`residual`.
    """

    def __init__(
        self,
        node_preds: Dict[str, Expr],
        edge_preds: Dict[str, Expr],
        residual: Optional[Expr],
    ) -> None:
        self.node_preds = node_preds
        self.edge_preds = edge_preds
        self.residual = residual


def decompose(
    predicate: Optional[Expr],
    node_names: Set[str],
    edge_names: Set[str],
) -> DecomposedPredicate:
    """Push conjuncts of *predicate* down to individual nodes and edges.

    A conjunct whose root names all equal one node name is pushed to that
    node; likewise for edges.  Conjuncts such as ``u1.label == u2.label``
    remain in the residual graph-wide predicate (Section 4.1).
    """
    node_parts: Dict[str, List[Expr]] = {}
    edge_parts: Dict[str, List[Expr]] = {}
    residual_parts: List[Expr] = []
    if predicate is not None:
        for conjunct in predicate.conjuncts():
            roots = conjunct.root_names()
            if len(roots) == 1:
                (root,) = tuple(roots)
                if root in node_names:
                    node_parts.setdefault(root, []).append(conjunct)
                    continue
                if root in edge_names:
                    edge_parts.setdefault(root, []).append(conjunct)
                    continue
            residual_parts.append(conjunct)
    node_preds = {k: conjunction(v) for k, v in node_parts.items()}
    edge_preds = {k: conjunction(v) for k, v in edge_parts.items()}
    return DecomposedPredicate(
        {k: v for k, v in node_preds.items() if v is not None},
        {k: v for k, v in edge_preds.items() if v is not None},
        conjunction(residual_parts),
    )
