"""Aggregation and ordering over collections of (matched) graphs.

Section 7 lists *"operators such as ordering (ranking), aggregation (OLAP
processing)"* as research directions on top of the algebra.  This module
provides the natural graphs-at-a-time versions:

* :func:`group_by` — partition a collection by the value of an expression
  over each (matched) graph;
* :func:`aggregate` — per group, evaluate named aggregate functions
  (``count``, ``sum``, ``avg``, ``min``, ``max``, ``count_distinct``)
  over expressions, returning one single-node summary graph per group
  (keeping graphs the unit of information, as the algebra requires);
* :func:`order_by` / :func:`top_k` — rank a collection by expressions.

Expressions are the predicate AST of :mod:`repro.core.predicate` and are
evaluated with the graph (or matched graph) as the scope fallback, so
``P.v1.name`` and graph attributes both work.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .bindings import MatchedGraph
from .collection import GraphCollection
from .graph import Graph
from .predicate import MISSING, Expr, Scope
from .tuples import AttributeTuple

GraphLike = Union[Graph, MatchedGraph]


def _scope_for(graph_like: GraphLike) -> Scope:
    bindings: Dict[str, Any] = {}
    if isinstance(graph_like, MatchedGraph):
        pattern_name = getattr(graph_like.pattern, "name", None)
        if pattern_name:
            bindings[pattern_name] = graph_like
    return Scope(bindings, fallback=graph_like)


def evaluate_over(graph_like: GraphLike, expr: Expr) -> Any:
    """Evaluate an expression against one (matched) graph."""
    return expr.evaluate(_scope_for(graph_like))


def group_by(
    collection: GraphCollection,
    key: Expr,
) -> Dict[Any, GraphCollection]:
    """Partition a collection by the key expression's value.

    Graphs where the key is unresolvable group under ``None``.
    """
    groups: Dict[Any, GraphCollection] = {}
    for graph_like in collection:
        value = evaluate_over(graph_like, key)
        if value is MISSING:
            value = None
        groups.setdefault(value, GraphCollection()).add(graph_like)
    return groups


class AggregateError(ValueError):
    """Raised for unknown aggregate functions."""


def _agg_count(values: List[Any]) -> int:
    return len(values)


def _agg_count_distinct(values: List[Any]) -> int:
    return len(set(values))


def _agg_sum(values: List[Any]):
    return sum(values) if values else 0


def _agg_avg(values: List[Any]):
    return sum(values) / len(values) if values else None


def _agg_min(values: List[Any]):
    return min(values) if values else None


def _agg_max(values: List[Any]):
    return max(values) if values else None


_AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "count": _agg_count,
    "count_distinct": _agg_count_distinct,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
}

#: (output attribute name, aggregate function name, expression or None)
AggregateSpec = Tuple[str, str, Optional[Expr]]


def aggregate(
    collection: GraphCollection,
    specs: Sequence[AggregateSpec],
    key: Optional[Expr] = None,
    key_name: str = "key",
) -> GraphCollection:
    """Aggregate a collection into one summary graph per group.

    Each output graph has a single node carrying the group key (when
    grouping) and one attribute per spec.  ``count`` specs may omit the
    expression.  MISSING values are skipped (SQL NULL semantics), except
    for ``count`` without an expression, which counts group members.
    """
    for _, function, _ in specs:
        if function not in _AGGREGATES:
            raise AggregateError(
                f"unknown aggregate {function!r}; "
                f"choose from {sorted(_AGGREGATES)}"
            )
    if key is None:
        groups: Dict[Any, GraphCollection] = {None: collection}
    else:
        groups = group_by(collection, key)
    out = GraphCollection()
    for group_value, members in sorted(groups.items(), key=lambda kv: repr(kv[0])):
        summary = Graph()
        attrs: Dict[str, Any] = {}
        if key is not None:
            attrs[key_name] = group_value if group_value is not None else ""
        for out_name, function, expr in specs:
            if expr is None:
                values: List[Any] = [None] * len(members)
                if function not in ("count",):
                    raise AggregateError(
                        f"aggregate {function!r} needs an expression"
                    )
            else:
                values = [
                    v
                    for v in (
                        evaluate_over(member, expr) for member in members
                    )
                    if v is not MISSING
                ]
            result = _AGGREGATES[function](values)
            if result is not None:
                attrs[out_name] = result
        node = summary.add_node("r")
        node.tuple = AttributeTuple(attrs)
        # mirror the summary attributes at graph level so ordering and
        # further aggregation can reference them directly (``wedges``
        # rather than ``r.wedges``)
        summary.tuple = AttributeTuple(attrs)
        out.add(summary)
    return out


def order_by(
    collection: GraphCollection,
    keys: Sequence[Tuple[Expr, bool]],
) -> GraphCollection:
    """Sort a collection by ``(expression, descending)`` keys.

    MISSING values sort last regardless of direction; the sort is stable
    (multi-key ordering via right-to-left stable passes).
    """
    graphs = collection.graphs()

    def value_key(graph_like: GraphLike, expr: Expr):
        value = evaluate_over(graph_like, expr)
        if value is MISSING:
            return None
        # totally ordered across mixed scalar types
        return (type(value).__name__, value if not isinstance(value, bool)
                else int(value))

    for expr, descending in reversed(list(keys)):
        graphs.sort(
            key=lambda g, expr=expr: value_key(g, expr) or ("", ""),
            reverse=descending,
        )
        # a stable second pass pins MISSING values to the end
        graphs.sort(key=lambda g, expr=expr: value_key(g, expr) is None)
    return GraphCollection(graphs)


def top_k(
    collection: GraphCollection,
    key: Expr,
    k: int,
    descending: bool = True,
) -> GraphCollection:
    """The k highest- (or lowest-) ranked graphs by the key expression."""
    ranked = order_by(collection, [(key, descending)])
    return GraphCollection(ranked.graphs()[:k])
