"""A formal language for graphs (Section 2 of the paper).

The basic units are *graph motifs*.  A simple motif is a constant graph
structure; complex motifs are composed of other motifs by **concatenation**
(by new edges, or by unification of nodes), **disjunction**, or
**repetition** (a motif defined in terms of itself).  A *graph grammar* is
a finite set of named motifs; the language of the grammar is the set of
graphs derivable from its motifs.

The classes here form the motif AST:

* :class:`MotifNode` / :class:`MotifEdge` — declared elements, carrying the
  declarative constraints of their tuples (tag, exact attribute values) and
  an optional ``where`` predicate;
* :class:`MotifBlock` — a block ``{ ... }`` with nodes, edges, member
  motifs (``graph G1 as X;``), ``unify`` statements and ``export``
  declarations;
* :class:`Disjunction` — alternation between blocks (Fig. 4.5);
* :class:`MotifRef` — a reference to a named motif in a
  :class:`GraphGrammar`, enabling repetition (Fig. 4.6);
* :class:`SimpleMotif` — a *ground* motif (constant structure), the form
  consumed by the pattern matcher.

``expand`` derives the ground motifs of any motif expression up to a
recursion depth, implementing motif derivation.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .graph import Graph
from .predicate import Expr, conjunction
from .tuples import AttributeTuple


class MotifNode:
    """A declared pattern node with its declarative constraints."""

    __slots__ = ("name", "tag", "attrs", "predicate")

    def __init__(
        self,
        name: str,
        tag: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
        predicate: Optional[Expr] = None,
    ) -> None:
        self.name = name
        self.tag = tag
        self.attrs = dict(attrs) if attrs else {}
        self.predicate = predicate

    def renamed(self, name: str) -> "MotifNode":
        """A copy under a new name (constraints shared)."""
        return MotifNode(name, self.tag, self.attrs, self.predicate)

    def merged_with(self, other: "MotifNode", name: Optional[str] = None) -> "MotifNode":
        """Combine constraints of two unified nodes."""
        if self.tag is not None and other.tag is not None and self.tag != other.tag:
            raise MotifError(
                f"cannot unify nodes {self.name!r} and {other.name!r}: "
                f"conflicting tags {self.tag!r} vs {other.tag!r}"
            )
        attrs = dict(self.attrs)
        for key, value in other.attrs.items():
            if key in attrs and attrs[key] != value:
                raise MotifError(
                    f"cannot unify nodes {self.name!r} and {other.name!r}: "
                    f"conflicting attribute {key!r}"
                )
            attrs[key] = value
        preds = [p for p in (self.predicate, other.predicate) if p is not None]
        return MotifNode(name or self.name, self.tag or other.tag, attrs,
                         conjunction(preds))

    def __repr__(self) -> str:
        return f"MotifNode({self.name!r})"


class MotifEdge:
    """A declared pattern edge; end points are (possibly dotted) names."""

    __slots__ = ("name", "source", "target", "tag", "attrs", "predicate")

    def __init__(
        self,
        name: str,
        source: str,
        target: str,
        tag: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
        predicate: Optional[Expr] = None,
    ) -> None:
        self.name = name
        self.source = source
        self.target = target
        self.tag = tag
        self.attrs = dict(attrs) if attrs else {}
        self.predicate = predicate

    def merged_with(self, other: "MotifEdge") -> "MotifEdge":
        """Combine constraints of two automatically-unified edges."""
        if self.tag is not None and other.tag is not None and self.tag != other.tag:
            raise MotifError(
                f"cannot unify edges {self.name!r} and {other.name!r}: "
                f"conflicting tags"
            )
        attrs = dict(self.attrs)
        for key, value in other.attrs.items():
            if key in attrs and attrs[key] != value:
                raise MotifError(
                    f"cannot unify edges {self.name!r} and {other.name!r}: "
                    f"conflicting attribute {key!r}"
                )
            attrs[key] = value
        preds = [p for p in (self.predicate, other.predicate) if p is not None]
        return MotifEdge(self.name, self.source, self.target,
                         self.tag or other.tag, attrs, conjunction(preds))

    def __repr__(self) -> str:
        return f"MotifEdge({self.name!r}, {self.source!r}, {self.target!r})"


class MotifError(ValueError):
    """Raised for ill-formed motifs (bad references, conflicting unify)."""


# --------------------------------------------------------------------------
# Motif expressions
# --------------------------------------------------------------------------


class MotifExpr:
    """Base class of motif expressions (the motif AST)."""

    def expand(
        self,
        grammar: Optional["GraphGrammar"] = None,
        max_depth: int = 8,
    ) -> Iterator["SimpleMotif"]:
        """Derive the ground motifs, bounding recursion at *max_depth*."""
        raise NotImplementedError

    def is_recursive(self) -> bool:
        """Whether expansion may involve a motif reference."""
        raise NotImplementedError


class MotifRef(MotifExpr):
    """A reference to a named motif of the grammar (enables repetition)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def expand(self, grammar=None, max_depth=8):
        if max_depth <= 0:
            return
        if grammar is None or self.name not in grammar:
            raise MotifError(f"unknown motif reference {self.name!r}")
        yield from grammar[self.name].expand(grammar, max_depth - 1)

    def is_recursive(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"MotifRef({self.name!r})"


class Disjunction(MotifExpr):
    """Alternation between motif expressions (Fig. 4.5)."""

    __slots__ = ("alternatives",)

    def __init__(self, alternatives: Sequence[MotifExpr]) -> None:
        self.alternatives = list(alternatives)

    def expand(self, grammar=None, max_depth=8):
        for alternative in self.alternatives:
            yield from alternative.expand(grammar, max_depth)

    def is_recursive(self) -> bool:
        return any(a.is_recursive() for a in self.alternatives)

    def __repr__(self) -> str:
        return f"Disjunction({len(self.alternatives)} alternatives)"


class MotifBlock(MotifExpr):
    """A motif block: nodes, edges, member motifs, unify and export.

    Matches the body of a ``graph`` declaration in the concrete syntax.
    Members are ``(alias, expression)`` pairs (``graph G1 as X;`` yields
    alias ``X``); edges may reference member nodes with dotted paths
    (``X.v1``); ``unify`` merges two nodes; ``export`` re-exposes a nested
    node under a new local name (Fig. 4.6).
    """

    def __init__(self) -> None:
        self.nodes: List[MotifNode] = []
        self.edges: List[MotifEdge] = []
        self.members: List[Tuple[str, MotifExpr]] = []
        self.unifications: List[Tuple[str, str]] = []
        self.exports: List[Tuple[str, str]] = []  # (inner path, exposed name)
        self._auto_edge = 0

    # -- builder API ---------------------------------------------------------

    def add_node(
        self,
        name: str,
        tag: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
        predicate: Optional[Expr] = None,
    ) -> MotifNode:
        """Declare a node."""
        node = MotifNode(name, tag, attrs, predicate)
        self.nodes.append(node)
        return node

    def add_edge(
        self,
        source: str,
        target: str,
        name: Optional[str] = None,
        tag: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
        predicate: Optional[Expr] = None,
    ) -> MotifEdge:
        """Declare an edge between two (possibly dotted) node names."""
        if name is None:
            self._auto_edge += 1
            name = f"_e{self._auto_edge}"
        edge = MotifEdge(name, source, target, tag, attrs, predicate)
        self.edges.append(edge)
        return edge

    def add_member(self, expr: MotifExpr, alias: Optional[str] = None) -> str:
        """Include another motif, returning its alias."""
        if alias is None:
            alias = f"_m{len(self.members) + 1}"
        self.members.append((alias, expr))
        return alias

    def unify(self, path_a: str, path_b: str) -> None:
        """Declare that two nodes are the same node."""
        self.unifications.append((path_a, path_b))

    def export(self, inner_path: str, exposed_name: str) -> None:
        """Expose a nested node under a local name."""
        self.exports.append((inner_path, exposed_name))

    def is_recursive(self) -> bool:
        return any(expr.is_recursive() for _, expr in self.members)

    # -- expansion -------------------------------------------------------------

    def expand(self, grammar=None, max_depth=8):
        member_expansions: List[List[Tuple[str, "SimpleMotif"]]] = []
        for alias, expr in self.members:
            expanded = [(alias, sm) for sm in expr.expand(grammar, max_depth)]
            member_expansions.append(expanded)
        if member_expansions:
            combos: Iterable[Tuple[Tuple[str, "SimpleMotif"], ...]] = itertools.product(
                *member_expansions
            )
        else:
            combos = [()]
        for combo in combos:
            yield self._flatten(dict(combo))

    def _flatten(self, member_motifs: Dict[str, "SimpleMotif"]) -> "SimpleMotif":
        """Combine own elements with expanded members into a ground motif."""
        motif = SimpleMotif()
        # 1. own nodes, member nodes under qualified names
        for node in self.nodes:
            motif._add_node(node.renamed(node.name))
        for alias, member in member_motifs.items():
            for node in member.nodes():
                motif._add_node(node.renamed(f"{alias}.{node.name}"))
            for edge in member.edges():
                motif._add_edge(
                    MotifEdge(
                        f"{alias}.{edge.name}",
                        f"{alias}.{edge.source}",
                        f"{alias}.{edge.target}",
                        edge.tag,
                        edge.attrs,
                        edge.predicate,
                    )
                )
        # exports of members let paths like "X.v2" reach nested nodes
        export_table: Dict[str, str] = {}
        for alias, member in member_motifs.items():
            for exposed, actual in member.exports.items():
                export_table[f"{alias}.{exposed}"] = f"{alias}.{actual}"

        def resolve(path: str) -> str:
            seen: Set[str] = set()
            current = path
            while current not in motif._nodes:
                if current in seen:
                    raise MotifError(f"cyclic export for {path!r}")
                seen.add(current)
                if current in export_table:
                    current = export_table[current]
                    continue
                raise MotifError(f"unknown node reference {path!r}")
            return current

        # 2. own edges (endpoints may be dotted / exported paths)
        for edge in self.edges:
            motif._add_edge(
                MotifEdge(
                    edge.name,
                    resolve(edge.source),
                    resolve(edge.target),
                    edge.tag,
                    edge.attrs,
                    edge.predicate,
                )
            )
        # 3. unifications
        for path_a, path_b in self.unifications:
            motif._unify(resolve(path_a), resolve(path_b))
        # refresh the export resolver after unification renames
        # 4. exports of this block
        for inner_path, exposed in self.exports:
            target = export_table.get(inner_path, inner_path)
            target = motif._canonical(target)
            if target not in motif._nodes:
                raise MotifError(f"cannot export unknown node {inner_path!r}")
            motif.exports[exposed] = target
        motif._dedupe_edges()
        return motif


# --------------------------------------------------------------------------
# Ground motifs
# --------------------------------------------------------------------------


class SimpleMotif(MotifExpr):
    """A ground (constant-structure) motif: what the matcher consumes.

    Node and edge names are strings (possibly dotted after flattening).
    The motif behaves like a small graph: it offers adjacency queries used
    by the access methods of Section 4.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, MotifNode] = {}
        self._edges: Dict[str, MotifEdge] = {}
        self._adj: Dict[str, Dict[str, List[str]]] = {}
        self.exports: Dict[str, str] = {}
        self._union: Dict[str, str] = {}  # unified-away name -> survivor

    # -- building ---------------------------------------------------------------

    def _add_node(self, node: MotifNode) -> None:
        if node.name in self._nodes:
            raise MotifError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._adj[node.name] = {}

    def _add_edge(self, edge: MotifEdge) -> None:
        if edge.name in self._edges:
            raise MotifError(f"duplicate edge name {edge.name!r}")
        if edge.source not in self._nodes or edge.target not in self._nodes:
            raise MotifError(f"edge {edge.name!r} references unknown node")
        self._edges[edge.name] = edge
        self._adj[edge.source].setdefault(edge.target, []).append(edge.name)
        if edge.source != edge.target:
            self._adj[edge.target].setdefault(edge.source, []).append(edge.name)

    def add_node(self, name, tag=None, attrs=None, predicate=None) -> MotifNode:
        """Declare a node directly on a ground motif."""
        node = MotifNode(name, tag, attrs, predicate)
        self._add_node(node)
        return node

    def add_edge(self, source, target, name=None, tag=None, attrs=None,
                 predicate=None) -> MotifEdge:
        """Declare an edge directly on a ground motif."""
        if name is None:
            name = f"_e{len(self._edges) + 1}"
        edge = MotifEdge(name, source, target, tag, attrs, predicate)
        self._add_edge(edge)
        return edge

    def _canonical(self, name: str) -> str:
        while name in self._union:
            name = self._union[name]
        return name

    def _unify(self, name_a: str, name_b: str) -> None:
        name_a = self._canonical(name_a)
        name_b = self._canonical(name_b)
        if name_a == name_b:
            return
        survivor = self._nodes[name_a].merged_with(self._nodes[name_b], name_a)
        self._nodes[name_a] = survivor
        del self._nodes[name_b]
        self._union[name_b] = name_a
        # rewire adjacency of name_b onto name_a
        for neighbor, bucket in list(self._adj[name_b].items()):
            neighbor = self._canonical(neighbor)
            self._adj[name_a].setdefault(neighbor, []).extend(bucket)
            if neighbor != name_b and name_b in self._adj.get(neighbor, {}):
                moved = self._adj[neighbor].pop(name_b)
                self._adj[neighbor].setdefault(name_a, []).extend(
                    e for e in moved if e not in self._adj[neighbor].get(name_a, [])
                )
        del self._adj[name_b]
        # fix self-referencing bucket created when a<->b were adjacent
        if name_b in self._adj[name_a]:
            bucket = self._adj[name_a].pop(name_b)
            self._adj[name_a].setdefault(name_a, []).extend(bucket)
        for edge in self._edges.values():
            if self._canonical(edge.source) != edge.source:
                edge.source = self._canonical(edge.source)
            if self._canonical(edge.target) != edge.target:
                edge.target = self._canonical(edge.target)
        # exports pointing at the absorbed node follow the survivor
        for exposed, actual in list(self.exports.items()):
            if self._canonical(actual) != actual:
                self.exports[exposed] = self._canonical(actual)

    def _dedupe_edges(self) -> None:
        """Unify edges with identical end-point sets (paper: automatic)."""
        by_pair: Dict[Tuple[str, str], str] = {}
        for edge_name in list(self._edges):
            edge = self._edges[edge_name]
            key = tuple(sorted((edge.source, edge.target)))
            if key in by_pair:
                keeper_name = by_pair[key]
                keeper = self._edges[keeper_name]
                self._edges[keeper_name] = keeper.merged_with(edge)
                del self._edges[edge_name]
                for bucket in self._adj[edge.source].values():
                    if edge_name in bucket:
                        bucket.remove(edge_name)
                for bucket in self._adj[edge.target].values():
                    if edge_name in bucket:
                        bucket.remove(edge_name)
            else:
                by_pair[key] = edge_name

    # -- graph-like access (used by the matcher) ------------------------------------

    def nodes(self) -> Iterator[MotifNode]:
        """Iterate declared nodes in order."""
        return iter(self._nodes.values())

    def edges(self) -> Iterator[MotifEdge]:
        """Iterate declared edges in order."""
        return iter(self._edges.values())

    def node(self, name: str) -> MotifNode:
        """Node by (canonical) name."""
        return self._nodes[self._canonical(name)]

    def edge(self, name: str) -> MotifEdge:
        """Edge by name."""
        return self._edges[name]

    def has_node(self, name: str) -> bool:
        """Whether the (canonical) node exists."""
        return self._canonical(name) in self._nodes

    def node_names(self) -> List[str]:
        """All node names in declaration order."""
        return list(self._nodes)

    def edge_names(self) -> List[str]:
        """All edge names in declaration order."""
        return list(self._edges)

    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def neighbors(self, name: str) -> List[str]:
        """Adjacent node names."""
        return [n for n in self._adj[self._canonical(name)] if n != name]

    def degree(self, name: str) -> int:
        """Number of incident edges."""
        return sum(len(b) for b in self._adj[self._canonical(name)].values())

    def edges_between(self, source: str, target: str) -> List[MotifEdge]:
        """All edges joining the two nodes (ignoring order)."""
        source = self._canonical(source)
        target = self._canonical(target)
        names = self._adj.get(source, {}).get(target, [])
        return [self._edges[n] for n in names if n in self._edges]

    def incident_edges(self, name: str) -> List[MotifEdge]:
        """All edges touching the node."""
        name = self._canonical(name)
        seen: Set[str] = set()
        out: List[MotifEdge] = []
        for bucket in self._adj[name].values():
            for edge_name in bucket:
                if edge_name in self._edges and edge_name not in seen:
                    seen.add(edge_name)
                    out.append(self._edges[edge_name])
        return out

    def is_connected(self) -> bool:
        """Whether the motif structure is connected (ignoring direction)."""
        names = self.node_names()
        if not names:
            return True
        seen = {names[0]}
        stack = [names[0]]
        while stack:
            current = stack.pop()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(names)

    # -- expansion (a ground motif expands to itself) ---------------------------------

    def expand(self, grammar=None, max_depth=8):
        yield self

    def is_recursive(self) -> bool:
        return False

    # -- conversions -----------------------------------------------------------------

    def to_graph(self, name: Optional[str] = None) -> Graph:
        """The motif structure as a plain graph (exact attrs become tuples)."""
        graph = Graph(name)
        for node in self.nodes():
            graph.add_node_obj(
                _node_from_motif(node)
            )
        for edge in self.edges():
            new = graph.add_edge(edge.source, edge.target, edge_id=edge.name)
            new.tuple = AttributeTuple(edge.attrs, tag=edge.tag)
        return graph

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        constraint_attrs: Sequence[str] = ("label",),
    ) -> "SimpleMotif":
        """Build a ground motif from an example graph.

        Each node becomes a motif node constrained to equal the example's
        values of *constraint_attrs* (attributes the example lacks impose
        no constraint).  Used to turn extracted subgraphs into queries.
        """
        motif = cls()
        for node in graph.nodes():
            attrs = {
                a: node.get(a) for a in constraint_attrs if node.get(a) is not None
            }
            motif.add_node(node.id, tag=node.tag, attrs=attrs)
        for edge in graph.edges():
            attrs = {
                a: edge.get(a) for a in constraint_attrs if edge.get(a) is not None
            }
            motif.add_edge(edge.source, edge.target, name=edge.id,
                           tag=edge.tag, attrs=attrs)
        return motif

    def __repr__(self) -> str:
        return f"SimpleMotif(nodes={len(self._nodes)}, edges={len(self._edges)})"


def _node_from_motif(node: MotifNode):
    from .graph import Node

    return Node(node.name, AttributeTuple(node.attrs, tag=node.tag))


# --------------------------------------------------------------------------
# Grammars
# --------------------------------------------------------------------------


class GraphGrammar:
    """A finite set of named motifs (Section 2).

    The language of the grammar is the set of graphs derivable from its
    motifs; :meth:`derive` enumerates ground motifs up to a recursion
    depth.
    """

    def __init__(self) -> None:
        self._motifs: Dict[str, MotifExpr] = {}

    def define(self, name: str, motif: MotifExpr) -> None:
        """Register (or replace) a named motif."""
        self._motifs[name] = motif

    def __contains__(self, name: str) -> bool:
        return name in self._motifs

    def __getitem__(self, name: str) -> MotifExpr:
        return self._motifs[name]

    def names(self) -> List[str]:
        """All defined motif names."""
        return list(self._motifs)

    def derive(self, name: str, max_depth: int = 8) -> List[SimpleMotif]:
        """All ground motifs derivable from *name* within the depth bound."""
        if name not in self._motifs:
            raise MotifError(f"unknown motif {name!r}")
        return list(self._motifs[name].expand(self, max_depth))


# --------------------------------------------------------------------------
# Convenience constructors for the paper's running structures
# --------------------------------------------------------------------------


def path_motif(length: int) -> SimpleMotif:
    """A ground path motif with *length* edges (Fig. 4.6a, unrolled)."""
    motif = SimpleMotif()
    for i in range(length + 1):
        motif.add_node(f"v{i + 1}")
    for i in range(length):
        motif.add_edge(f"v{i + 1}", f"v{i + 2}", name=f"e{i + 1}")
    return motif


def cycle_motif(length: int) -> SimpleMotif:
    """A ground cycle motif with *length* nodes (Fig. 4.6a)."""
    if length < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    motif = SimpleMotif()
    for i in range(length):
        motif.add_node(f"v{i + 1}")
    for i in range(length):
        motif.add_edge(f"v{i + 1}", f"v{(i + 1) % length + 1}", name=f"e{i + 1}")
    return motif


def clique_motif(labels: Sequence[Any], attr: str = "label") -> SimpleMotif:
    """A complete graph whose nodes are constrained to the given labels."""
    motif = SimpleMotif()
    for i, label in enumerate(labels):
        motif.add_node(f"u{i + 1}", attrs={attr: label})
    names = motif.node_names()
    edge_index = 0
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            edge_index += 1
            motif.add_edge(names[i], names[j], name=f"e{edge_index}")
    return motif


def recursive_path_grammar() -> GraphGrammar:
    """The ``Path`` grammar of Fig. 4.6(a), built programmatically."""
    grammar = GraphGrammar()
    base = MotifBlock()
    base.add_node("v1")
    base.add_node("v2")
    base.add_edge("v1", "v2", name="e1")
    step = MotifBlock()
    step.add_member(MotifRef("Path"), alias="Path")
    step.add_node("v1")
    step.add_edge("v1", "Path.v1", name="e1")
    step.export("Path.v2", "v2")
    step.export("v1", "v1")
    base.export("v1", "v1")
    base.export("v2", "v2")
    grammar.define("Path", Disjunction([step, base]))
    return grammar
