"""Matched graphs: bindings between a pattern and a graph.

Definition 4.3: given an injective mapping Φ between a pattern P and a
graph G, a *matched graph* is the triple ⟨Φ, P, G⟩.  A matched graph has
all the characteristics of a graph (it *is* G, plus the binding), so a
collection of matched graphs is again a collection of graphs and can be
matched against further patterns or fed to composition.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from .graph import Edge, Graph, Node
from .predicate import MISSING


class Mapping:
    """The injective mapping Φ: pattern elements → graph elements.

    Node and edge assignments are kept separately; both map pattern element
    *names* to graph element *ids*.
    """

    __slots__ = ("nodes", "edges")

    def __init__(
        self,
        nodes: Optional[Dict[str, str]] = None,
        edges: Optional[Dict[str, str]] = None,
    ) -> None:
        self.nodes = dict(nodes) if nodes else {}
        self.edges = dict(edges) if edges else {}

    def __getitem__(self, pattern_node: str) -> str:
        return self.nodes[pattern_node]

    def __contains__(self, pattern_node: str) -> bool:
        return pattern_node in self.nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self.nodes == other.nodes

    def __hash__(self) -> int:
        return hash(frozenset(self.nodes.items()))

    def __len__(self) -> int:
        return len(self.nodes)

    def items(self):
        """Node assignments as ``(pattern_name, graph_id)`` pairs."""
        return self.nodes.items()

    def copy(self) -> "Mapping":
        """An independent copy."""
        return Mapping(self.nodes, self.edges)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}->{v}" for k, v in sorted(self.nodes.items()))
        return f"Mapping({inner})"


class MatchedGraph:
    """The triple ⟨Φ, P, G⟩ of Definition 4.3.

    Attribute-path resolution (used by predicates and templates) sees the
    binding first: ``M.v1`` is the data node matched to pattern node
    ``v1``; failing that, graph attributes and plain node ids of G are
    visible, so a matched graph can be used anywhere a graph can.
    """

    __slots__ = ("mapping", "pattern", "graph")

    def __init__(self, mapping: Mapping, pattern: Any, graph: Graph) -> None:
        self.mapping = mapping
        self.pattern = pattern
        self.graph = graph

    # -- path resolution -------------------------------------------------------

    def resolve(self, name: str) -> Any:
        """Resolve one path step through the binding, then through G."""
        if name in self.mapping.nodes:
            return self.graph.node(self.mapping.nodes[name])
        if name in self.mapping.edges:
            return self.graph.edge(self.mapping.edges[name])
        if self.graph.has_node(name):
            return self.graph.node(name)
        if name in self.graph.members:
            return self.graph.members[name]
        value = self.graph.tuple.get(name, MISSING)
        return value

    def node(self, pattern_name: str) -> Node:
        """The data node matched to a pattern node name."""
        return self.graph.node(self.mapping.nodes[pattern_name])

    def edge(self, pattern_name: str) -> Edge:
        """The data edge matched to a pattern edge name."""
        return self.graph.edge(self.mapping.edges[pattern_name])

    # -- graph characteristics ----------------------------------------------------

    def as_graph(self) -> Graph:
        """The underlying graph G."""
        return self.graph

    def matched_subgraph(self, name: Optional[str] = None) -> Graph:
        """The subgraph of G induced by the matched nodes."""
        return self.graph.induced_subgraph(self.mapping.nodes.values(), name=name)

    def nodes(self) -> Iterator[Node]:
        """Iterate nodes of the underlying graph."""
        return self.graph.nodes()

    def edges(self) -> Iterator[Edge]:
        """Iterate edges of the underlying graph."""
        return self.graph.edges()

    def get(self, attr: str, default: Any = None) -> Any:
        """Graph-level attribute of G."""
        return self.graph.get(attr, default)

    def __repr__(self) -> str:
        return f"MatchedGraph({self.mapping!r} on {self.graph!r})"


def as_graph(graph_like: Any) -> Graph:
    """Coerce a graph or matched graph to a plain :class:`Graph`."""
    if isinstance(graph_like, MatchedGraph):
        return graph_like.graph
    if isinstance(graph_like, Graph):
        return graph_like
    raise TypeError(f"expected Graph or MatchedGraph, got {type(graph_like).__name__}")
