"""Graph patterns: motif + predicate (Definitions 4.1 and 4.2).

A :class:`GraphPattern` pairs a motif expression with an optional
``where`` predicate.  Before matching, the pattern is *grounded*: the
motif is derived into one or more :class:`~repro.core.motif.SimpleMotif`
instances (one per disjunct/recursion unrolling) and the predicate is
pushed down into per-node ``F_u`` and per-edge ``F_e`` parts plus a
residual graph-wide ``F`` (Section 4.1).  A recursive pattern matches a
graph iff one of its derived ground patterns matches (Section 3.2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .bindings import Mapping, MatchedGraph
from .graph import Edge, Graph, Node
from .motif import GraphGrammar, MotifExpr, SimpleMotif
from .predicate import DecomposedPredicate, Expr, Scope, decompose


class GroundPattern:
    """A derived (constant-structure) pattern ready for matching."""

    def __init__(
        self,
        motif: SimpleMotif,
        predicate: Optional[Expr] = None,
        name: Optional[str] = None,
    ) -> None:
        self.motif = motif
        self.name = name
        node_names = set(motif.node_names())
        edge_names = set(motif.edge_names())
        self.decomposed: DecomposedPredicate = decompose(
            predicate, node_names, edge_names
        )
        self.predicate = predicate

    # -- element predicates (F_u, F_e) ------------------------------------------

    def node_matches(self, pattern_node_name: str, data_node: Node) -> bool:
        """Evaluate F_u: declarative tuple constraints plus pushed predicate."""
        motif_node = self.motif.node(pattern_node_name)
        if not data_node.tuple.matches_constraints(motif_node.tag, motif_node.attrs):
            return False
        scope = Scope({pattern_node_name: data_node}, fallback=data_node)
        if motif_node.predicate is not None and not motif_node.predicate.holds(scope):
            return False
        pushed = self.decomposed.node_preds.get(pattern_node_name)
        if pushed is not None and not pushed.holds(scope):
            return False
        return True

    def edge_matches(self, pattern_edge_name: str, data_edge: Edge) -> bool:
        """Evaluate F_e for a candidate data edge."""
        motif_edge = self.motif.edge(pattern_edge_name)
        if not data_edge.tuple.matches_constraints(motif_edge.tag, motif_edge.attrs):
            return False
        scope = Scope({pattern_edge_name: data_edge}, fallback=data_edge)
        if motif_edge.predicate is not None and not motif_edge.predicate.holds(scope):
            return False
        pushed = self.decomposed.edge_preds.get(pattern_edge_name)
        if pushed is not None and not pushed.holds(scope):
            return False
        return True

    def residual_holds(self, mapping: Mapping, graph: Graph) -> bool:
        """Evaluate the graph-wide predicate F over a complete mapping."""
        residual = self.decomposed.residual
        if residual is None:
            return True
        matched = MatchedGraph(mapping, self, graph)
        bindings: Dict[str, Any] = {
            name: graph.node(node_id) for name, node_id in mapping.nodes.items()
        }
        for name, edge_id in mapping.edges.items():
            bindings[name] = graph.edge(edge_id)
        if self.name:
            bindings.setdefault(self.name, matched)
        scope = Scope(bindings, fallback=matched)
        return residual.holds(scope)

    # -- convenience -----------------------------------------------------------------

    def node_names(self) -> List[str]:
        """Pattern node names in declaration order."""
        return self.motif.node_names()

    def num_nodes(self) -> int:
        """Number of pattern nodes."""
        return self.motif.num_nodes()

    def num_edges(self) -> int:
        """Number of pattern edges."""
        return self.motif.num_edges()

    def __repr__(self) -> str:
        return (
            f"GroundPattern({self.name or '<anon>'}, "
            f"nodes={self.motif.num_nodes()}, edges={self.motif.num_edges()})"
        )


class GraphPattern:
    """A graph pattern P = (M, F): a motif and a predicate (Definition 4.1)."""

    def __init__(
        self,
        motif: MotifExpr,
        where: Optional[Expr] = None,
        name: Optional[str] = None,
    ) -> None:
        self.motif = motif
        self.where = where
        self.name = name

    def is_recursive(self) -> bool:
        """Whether the motif involves named-motif references."""
        return self.motif.is_recursive()

    def ground(
        self,
        grammar: Optional[GraphGrammar] = None,
        max_depth: int = 8,
    ) -> List[GroundPattern]:
        """Derive all ground patterns (one per disjunct / unrolling)."""
        return [
            GroundPattern(simple, self.where, name=self.name)
            for simple in self.motif.expand(grammar, max_depth)
        ]

    def single(self, grammar: Optional[GraphGrammar] = None) -> GroundPattern:
        """The unique ground pattern of a nonrecursive, disjunction-free motif."""
        grounds = self.ground(grammar, max_depth=1 if not self.is_recursive() else 8)
        if len(grounds) != 1:
            raise ValueError(
                f"pattern has {len(grounds)} derivations; use ground() instead"
            )
        return grounds[0]

    def __repr__(self) -> str:
        return f"GraphPattern({self.name or '<anon>'})"
