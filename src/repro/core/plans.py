"""Algebraic query plans and rewrite laws (Section 3.3).

*"Algebraic laws are important for query optimization as they provide
equivalent transformations of query plans. Since the graph algebra is
defined along the lines of the relational algebra, laws of relational
algebra carry over."*  This module makes that sentence executable: a
plan tree over the bulk operators, an evaluator, and a rule-based
optimizer implementing the classic laws —

* **selection pushdown through product**: σ_P(C × D) → σ_L(C) × σ_R(D)
  (× residual σ) when conjuncts of P's predicate reference only one side;
* **cascading selections**: σ_A(σ_B(C)) → σ_{A∧B}(C) for value-only
  predicates;
* **selection/union distribution**: σ_P(C ∪ D) → σ_P(C) ∪ σ_P(D);
* **product commutativity metadata** (exposed for cost-based choice).

Plans evaluate against a document source (``doc(name)`` leaves), so a
rewritten plan can be checked for result-equivalence directly — which
the property tests do.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.trace import span as trace_span
from ..runtime import ExecutionContext
from .algebra import cartesian_product, compose, select
from .bindings import as_graph
from .collection import GraphCollection
from .graph import Graph
from .pattern import GroundPattern
from .predicate import BinOp, Expr, Scope, conjunction
from .template import GraphTemplate


class Plan:
    """Base class of plan nodes."""

    def evaluate(self, source, context: Optional[ExecutionContext] = None
                 ) -> GraphCollection:
        """Evaluate against a document source (``doc(name)``).

        *context* (optional) governs the evaluation: operators tick it
        per produced graph and pass it into nested selections, so a
        deadline or budget bounds the whole plan tree.
        """
        raise NotImplementedError

    def children(self) -> Sequence["Plan"]:
        """Child plans."""
        return ()

    def describe(self, indent: int = 0) -> str:
        """A readable plan tree."""
        pad = "  " * indent
        lines = [pad + self._label()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


class Doc(Plan):
    """A leaf: a named document collection."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, source, context: Optional[ExecutionContext] = None
                 ) -> GraphCollection:
        return source.doc(self.name)

    def _label(self) -> str:
        return f"Doc({self.name})"


class Values(Plan):
    """A leaf wrapping an in-memory collection (for tests and literals)."""

    def __init__(self, collection: GraphCollection) -> None:
        self.collection = collection

    def evaluate(self, source, context: Optional[ExecutionContext] = None
                 ) -> GraphCollection:
        return self.collection

    def _label(self) -> str:
        return f"Values({len(self.collection)})"


class Select(Plan):
    """σ_P — pattern-matching selection (or pure value filter)."""

    def __init__(self, child: Plan, pattern: GroundPattern) -> None:
        self.child = child
        self.pattern = pattern

    def children(self):
        return (self.child,)

    def evaluate(self, source, context: Optional[ExecutionContext] = None
                 ) -> GraphCollection:
        with trace_span("plan.select") as sp:
            out = select(self.child.evaluate(source, context), self.pattern,
                         context=context)
            sp.incr("graphs", len(out))
        return out

    def _label(self) -> str:
        return f"Select({self.pattern!r})"


class Filter(Plan):
    """A pure value predicate over whole graphs (no structural part)."""

    def __init__(self, child: Plan, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate

    def children(self):
        return (self.child,)

    def evaluate(self, source, context: Optional[ExecutionContext] = None
                 ) -> GraphCollection:
        out = GraphCollection()
        with trace_span("plan.filter") as sp:
            for graph_like in self.child.evaluate(source, context):
                if context is not None:
                    context.tick()
                scope = _graph_scope(graph_like)
                if self.predicate.holds(scope):
                    out.add(graph_like)
            sp.incr("graphs", len(out))
        return out

    def _label(self) -> str:
        return f"Filter({self.predicate.to_graphql()})"


class Product(Plan):
    """C × D with member aliases."""

    def __init__(self, left: Plan, right: Plan,
                 left_name: str = "G1", right_name: str = "G2") -> None:
        self.left = left
        self.right = right
        self.left_name = left_name
        self.right_name = right_name

    def children(self):
        return (self.left, self.right)

    def evaluate(self, source, context: Optional[ExecutionContext] = None
                 ) -> GraphCollection:
        with trace_span("plan.product") as sp:
            out = cartesian_product(
                self.left.evaluate(source, context),
                self.right.evaluate(source, context),
                self.left_name, self.right_name,
                context=context,
            )
            sp.incr("graphs", len(out))
        return out

    def _label(self) -> str:
        return f"Product({self.left_name}, {self.right_name})"


class Union(Plan):
    """C ∪ D."""

    def __init__(self, left: Plan, right: Plan) -> None:
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def evaluate(self, source, context: Optional[ExecutionContext] = None
                 ) -> GraphCollection:
        with trace_span("plan.union") as sp:
            out = self.left.evaluate(source, context).union(
                self.right.evaluate(source, context)
            )
            sp.incr("graphs", len(out))
        return out


class Difference(Plan):
    """C − D."""

    def __init__(self, left: Plan, right: Plan) -> None:
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def evaluate(self, source, context: Optional[ExecutionContext] = None
                 ) -> GraphCollection:
        with trace_span("plan.difference") as sp:
            out = self.left.evaluate(source, context).difference(
                self.right.evaluate(source, context)
            )
            sp.incr("graphs", len(out))
        return out


class Compose(Plan):
    """ω_T — composition over one child collection."""

    def __init__(self, child: Plan, template: GraphTemplate,
                 param: Optional[str] = None) -> None:
        self.child = child
        self.template = template
        self.param = param or (template.params[0] if template.params else "P")

    def children(self):
        return (self.child,)

    def evaluate(self, source, context: Optional[ExecutionContext] = None
                 ) -> GraphCollection:
        with trace_span("plan.compose") as sp:
            out = compose(self.template, self.child.evaluate(source, context),
                          param_names=[self.param])
            sp.incr("graphs", len(out))
        return out

    def _label(self) -> str:
        return f"Compose({self.param})"


def _graph_scope(graph_like) -> Scope:
    bindings: Dict[str, Any] = {}
    graph = as_graph(graph_like) if not isinstance(graph_like, Graph) else graph_like
    for alias, member in graph.members.items():
        bindings[alias] = member
    return Scope(bindings, fallback=graph_like)


# --------------------------------------------------------------------------
# Rewrite laws
# --------------------------------------------------------------------------


def optimize(plan: Plan) -> Plan:
    """Apply the rewrite laws bottom-up until a fixpoint."""
    changed = True
    while changed:
        plan, changed = _rewrite(plan)
    return plan


def _rewrite(plan: Plan) -> Tuple[Plan, bool]:
    # rewrite children first
    changed = False
    if isinstance(plan, (Select,)):
        child, child_changed = _rewrite(plan.child)
        plan = Select(child, plan.pattern)
        changed |= child_changed
    elif isinstance(plan, Filter):
        child, child_changed = _rewrite(plan.child)
        plan = Filter(child, plan.predicate)
        changed |= child_changed
    elif isinstance(plan, Compose):
        child, child_changed = _rewrite(plan.child)
        plan = Compose(child, plan.template, plan.param)
        changed |= child_changed
    elif isinstance(plan, Product):
        left, left_changed = _rewrite(plan.left)
        right, right_changed = _rewrite(plan.right)
        plan = Product(left, right, plan.left_name, plan.right_name)
        changed |= left_changed or right_changed
    elif isinstance(plan, (Union, Difference)):
        left, left_changed = _rewrite(plan.left)
        right, right_changed = _rewrite(plan.right)
        plan = type(plan)(left, right)
        changed |= left_changed or right_changed

    # law: cascade filters — Filter(a, Filter(b, C)) => Filter(a & b, C)
    if isinstance(plan, Filter) and isinstance(plan.child, Filter):
        merged = conjunction([plan.child.predicate, plan.predicate])
        assert merged is not None
        return Filter(plan.child.child, merged), True

    # law: push filter through union
    if isinstance(plan, Filter) and isinstance(plan.child, Union):
        union = plan.child
        return (
            Union(Filter(union.left, plan.predicate),
                  Filter(union.right, plan.predicate)),
            True,
        )

    # law: push filter through difference (applies to the left side; the
    # right side only removes, so filtering it too is sound but wasted)
    if isinstance(plan, Filter) and isinstance(plan.child, Difference):
        difference = plan.child
        return (
            Difference(Filter(difference.left, plan.predicate),
                       difference.right),
            True,
        )

    # law: push single-side filter conjuncts through product
    if isinstance(plan, Filter) and isinstance(plan.child, Product):
        product = plan.child
        left_parts: List[Expr] = []
        right_parts: List[Expr] = []
        residual: List[Expr] = []
        for conjunct in plan.predicate.conjuncts():
            roots = conjunct.root_names()
            if roots and roots <= {product.left_name}:
                left_parts.append(_strip_alias(conjunct, product.left_name))
            elif roots and roots <= {product.right_name}:
                right_parts.append(_strip_alias(conjunct, product.right_name))
            else:
                residual.append(conjunct)
        if left_parts or right_parts:
            left_plan: Plan = product.left
            right_plan: Plan = product.right
            left_pred = conjunction(left_parts)
            right_pred = conjunction(right_parts)
            if left_pred is not None:
                left_plan = Filter(left_plan, left_pred)
            if right_pred is not None:
                right_plan = Filter(right_plan, right_pred)
            new_plan: Plan = Product(left_plan, right_plan,
                                     product.left_name, product.right_name)
            residual_pred = conjunction(residual)
            if residual_pred is not None:
                new_plan = Filter(new_plan, residual_pred)
            return new_plan, True

    return plan, changed


def _strip_alias(expr: Expr, alias: str) -> Expr:
    """Rewrite ``G1.attr`` to ``attr`` when pushing below the product."""
    from .predicate import AttrRef, Not

    if isinstance(expr, AttrRef):
        if expr.path[0] == alias:
            remainder = expr.path[1:]
            if remainder:
                return AttrRef(remainder)
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _strip_alias(expr.left, alias),
                     _strip_alias(expr.right, alias))
    if isinstance(expr, Not):
        return Not(_strip_alias(expr.operand, alias))
    return expr
