"""Graph templates and instantiation (Definition 4.4).

A graph template has formal parameters (graph patterns) and a body that
refers to them.  Given actual parameters (matched graphs), instantiation
produces a real graph — like invoking a function.  Templates drive the
composition operator ω and therefore all graph rewriting in GraphQL
(projection and renaming are expressed through composition as well).

Body elements:

* ``graph C;`` — include a whole graph bound to ``C`` (the accumulator in
  FLWR ``let`` clauses, or another template parameter);
* ``node v1 <label=P.v1.name>;`` — a new node whose attributes are
  expressions over the parameters;
* ``node P.v1;`` — a copy of the data node matched to ``P.v1``;
* ``edge e1 (v1, P.v2);`` — an edge between template elements;
* ``unify a, b [where pred];`` — merge two nodes, optionally conditional;
  when one side names a node *variable* over an included graph (e.g.
  ``C.v1`` where ``C`` has no node literally called ``v1``), the first
  node of ``C`` satisfying the predicate is unified (this is how the
  co-authorship query of Fig. 4.12 deduplicates authors).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .bindings import MatchedGraph, as_graph
from .graph import Graph, Node
from .predicate import MISSING, Expr, Scope
from .tuples import AttributeTuple


class TemplateNode:
    """A node declaration in a template body."""

    __slots__ = ("name", "tag", "attr_exprs", "source_path")

    def __init__(
        self,
        name: str,
        tag: Optional[str] = None,
        attr_exprs: Optional[Dict[str, Expr]] = None,
        source_path: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.name = name
        self.tag = tag
        self.attr_exprs = dict(attr_exprs) if attr_exprs else {}
        self.source_path = source_path


class TemplateEdge:
    """An edge declaration in a template body (end points are paths)."""

    __slots__ = ("name", "source", "target", "tag", "attr_exprs")

    def __init__(
        self,
        name: str,
        source: str,
        target: str,
        tag: Optional[str] = None,
        attr_exprs: Optional[Dict[str, Expr]] = None,
    ) -> None:
        self.name = name
        self.source = source
        self.target = target
        self.tag = tag
        self.attr_exprs = dict(attr_exprs) if attr_exprs else {}


class TemplateUnify:
    """A ``unify a, b [where pred]`` statement."""

    __slots__ = ("paths", "where")

    def __init__(self, paths: Sequence[str], where: Optional[Expr] = None) -> None:
        if len(paths) < 2:
            raise ValueError("unify needs at least two paths")
        self.paths = list(paths)
        self.where = where


class TemplateError(ValueError):
    """Raised when a template body cannot be instantiated."""


class GraphTemplate:
    """A graph template T with formal parameters (Definition 4.4)."""

    def __init__(
        self,
        params: Sequence[str],
        name: Optional[str] = None,
        tag: Optional[str] = None,
        attr_exprs: Optional[Dict[str, Expr]] = None,
    ) -> None:
        self.params = list(params)
        self.name = name
        self.tag = tag
        self.attr_exprs = dict(attr_exprs) if attr_exprs else {}
        self.includes: List[str] = []
        self.nodes: List[TemplateNode] = []
        self.edges: List[TemplateEdge] = []
        self.unifies: List[TemplateUnify] = []
        self._auto_edge = 0

    # -- builder API ------------------------------------------------------------

    def include_graph(self, param: str) -> None:
        """``graph C;`` — copy a whole bound graph into the result."""
        self.includes.append(param)

    def add_node(
        self,
        name: str,
        tag: Optional[str] = None,
        attr_exprs: Optional[Dict[str, Expr]] = None,
    ) -> TemplateNode:
        """Declare a fresh node with expression-valued attributes."""
        node = TemplateNode(name, tag, attr_exprs)
        self.nodes.append(node)
        return node

    def add_copied_node(self, path: str) -> TemplateNode:
        """``node P.v1;`` — copy the node matched to a parameter path."""
        node = TemplateNode(path, source_path=tuple(path.split(".")))
        self.nodes.append(node)
        return node

    def add_edge(
        self,
        source: str,
        target: str,
        name: Optional[str] = None,
        tag: Optional[str] = None,
        attr_exprs: Optional[Dict[str, Expr]] = None,
    ) -> TemplateEdge:
        """Declare an edge between two template element paths."""
        if name is None:
            self._auto_edge += 1
            name = f"_te{self._auto_edge}"
        edge = TemplateEdge(name, source, target, tag, attr_exprs)
        self.edges.append(edge)
        return edge

    def unify(self, *paths: str, where: Optional[Expr] = None) -> TemplateUnify:
        """Declare a (possibly conditional) unification."""
        statement = TemplateUnify(paths, where)
        self.unifies.append(statement)
        return statement

    # -- instantiation -------------------------------------------------------------

    def instantiate(
        self,
        arguments: Dict[str, Union[Graph, MatchedGraph]],
        name: Optional[str] = None,
    ) -> Graph:
        """Instantiate the template with actual parameters.

        *arguments* maps parameter names to graphs or matched graphs.  The
        result is a brand-new graph; arguments are never mutated.
        """
        missing = [p for p in self.params if p not in arguments]
        if missing:
            raise TemplateError(f"missing template arguments: {missing}")
        scope = Scope(dict(arguments))
        out = Graph(name if name is not None else self.name)
        if self.tag or self.attr_exprs:
            attrs = {
                key: _required_value(expr.evaluate(scope), key)
                for key, expr in self.attr_exprs.items()
            }
            out.tuple = AttributeTuple(attrs, tag=self.tag)

        # registry: template path -> output node id
        registry: Dict[str, str] = {}
        # member alias -> {original node id -> output node id}
        member_nodes: Dict[str, Dict[str, str]] = {}

        for param in self.includes:
            bound = arguments.get(param)
            if bound is None:
                raise TemplateError(f"included graph {param!r} is not bound")
            graph = as_graph(bound)
            id_map: Dict[str, str] = {}
            for node in graph.nodes():
                copied = out.add_node_obj(
                    Node(_fresh_id(out, node.id), node.tuple.copy())
                )
                id_map[node.id] = copied.id
            for edge in graph.edges():
                new_edge = out.add_edge(
                    id_map[edge.source], id_map[edge.target]
                )
                new_edge.tuple = edge.tuple.copy()
            member_nodes[param] = id_map

        for template_node in self.nodes:
            if template_node.source_path is not None:
                entity = scope.resolve(template_node.source_path)
                if not isinstance(entity, Node):
                    raise TemplateError(
                        f"path {'.'.join(template_node.source_path)!r} does "
                        f"not resolve to a node"
                    )
                created = out.add_node_obj(
                    Node(_fresh_id(out, entity.id), entity.tuple.copy())
                )
            else:
                attrs = {
                    key: _required_value(expr.evaluate(scope), key)
                    for key, expr in template_node.attr_exprs.items()
                }
                created = out.add_node_obj(
                    Node(
                        _fresh_id(out, template_node.name),
                        AttributeTuple(attrs, tag=template_node.tag),
                    )
                )
            registry[template_node.name] = created.id

        def resolve_endpoint(path: str) -> str:
            node_id = _resolve_exact(path, registry, member_nodes, out)
            if node_id is None:
                raise TemplateError(f"unknown edge end point {path!r}")
            return node_id

        for template_edge in self.edges:
            attrs = {
                key: _required_value(expr.evaluate(scope), key)
                for key, expr in template_edge.attr_exprs.items()
            }
            new_edge = out.add_edge(
                resolve_endpoint(template_edge.source),
                resolve_endpoint(template_edge.target),
            )
            new_edge.tuple = AttributeTuple(attrs, tag=template_edge.tag)

        for statement in self.unifies:
            self._apply_unify(statement, scope, out, registry, member_nodes)

        _dedupe_parallel_edges(out)
        return out

    def _apply_unify(
        self,
        statement: TemplateUnify,
        scope: Scope,
        out: Graph,
        registry: Dict[str, str],
        member_nodes: Dict[str, Dict[str, str]],
    ) -> None:
        # resolve every path to candidate lists
        candidate_lists: List[List[Tuple[str, Optional[Tuple[str, str]]]]] = []
        for path in statement.paths:
            parts = path.split(".")
            alias, var = parts[0], parts[-1]
            # With a where clause, a path into an included graph is a
            # *variable* ranging over that graph's nodes (Fig. 4.12: the
            # author may sit anywhere in the accumulated graph C).
            if (
                statement.where is not None
                and len(parts) >= 2
                and alias in member_nodes
                and path not in registry
            ):
                candidate_lists.append(
                    [(nid, (alias, var)) for nid in member_nodes[alias].values()]
                )
                continue
            exact = _resolve_exact(path, registry, member_nodes, out)
            if exact is not None:
                candidate_lists.append([(exact, None)])
                continue
            if len(parts) >= 2 and alias in member_nodes:
                candidate_lists.append(
                    [(nid, (alias, var)) for nid in member_nodes[alias].values()]
                )
            else:
                raise TemplateError(f"cannot resolve unify path {path!r}")

        chosen = _choose_unify(candidate_lists, statement.where, scope, out)
        if chosen is None:
            return  # conditional unification with no satisfying pair
        survivor, *others = chosen
        for other in others:
            if other != survivor:
                _merge_nodes(out, survivor, other, registry, member_nodes)

    def __repr__(self) -> str:
        return f"GraphTemplate(params={self.params}, nodes={len(self.nodes)})"


# -- instantiation helpers ------------------------------------------------------


def _fresh_id(graph: Graph, preferred: str) -> str:
    """Use the preferred id when free; otherwise derive a fresh one."""
    base = preferred.replace(".", "_")
    if not graph.has_node(base):
        return base
    suffix = 1
    while graph.has_node(f"{base}_{suffix}"):
        suffix += 1
    return f"{base}_{suffix}"


def _required_value(value: Any, key: str) -> Any:
    if value is MISSING:
        raise TemplateError(f"template attribute {key!r} evaluated to MISSING")
    return value


def _resolve_exact(
    path: str,
    registry: Dict[str, str],
    member_nodes: Dict[str, Dict[str, str]],
    out: Graph,
) -> Optional[str]:
    if path in registry:
        return registry[path]
    parts = path.split(".")
    if len(parts) >= 2 and parts[0] in member_nodes:
        original = ".".join(parts[1:])
        mapped = member_nodes[parts[0]].get(original)
        if mapped is not None:
            return mapped
    if out.has_node(path):
        return path
    return None


def _choose_unify(
    candidate_lists: List[List[Tuple[str, Optional[Tuple[str, str]]]]],
    where: Optional[Expr],
    scope: Scope,
    out: Graph,
) -> Optional[List[str]]:
    """Pick the first candidate combination satisfying the predicate."""

    def combos(index: int, picked: List[Tuple[str, Optional[Tuple[str, str]]]]):
        if index == len(candidate_lists):
            yield list(picked)
            return
        for candidate in candidate_lists[index]:
            picked.append(candidate)
            yield from combos(index + 1, picked)
            picked.pop()

    for combo in combos(0, []):
        if where is None:
            return [node_id for node_id, _ in combo]
        bindings: Dict[str, Any] = {}
        for node_id, variable in combo:
            if variable is not None:
                alias, var = variable
                bindings.setdefault(alias, {})[var] = out.node(node_id)
        pair_scope = scope.child(bindings)
        if where.holds(pair_scope):
            return [node_id for node_id, _ in combo]
    return None


def _merge_nodes(
    out: Graph,
    survivor: str,
    absorbed: str,
    registry: Dict[str, str],
    member_nodes: Dict[str, Dict[str, str]],
) -> None:
    """Merge *absorbed* into *survivor*: attributes, edges, registries."""
    survivor_node = out.node(survivor)
    absorbed_node = out.node(absorbed)
    survivor_node.tuple = survivor_node.tuple.merged(absorbed_node.tuple)
    # move edges
    moved: List[Tuple[str, str, AttributeTuple]] = []
    for edge_id in list(out.incident_edges(absorbed)):
        edge = out.edge(edge_id)
        source = survivor if edge.source == absorbed else edge.source
        target = survivor if edge.target == absorbed else edge.target
        moved.append((source, target, edge.tuple.copy()))
        out.remove_edge(edge_id)
    out.remove_node(absorbed)
    for source, target, attrs in moved:
        new_edge = out.add_edge(source, target)
        new_edge.tuple = attrs
    # registries follow the survivor
    for key, value in list(registry.items()):
        if value == absorbed:
            registry[key] = survivor
    for id_map in member_nodes.values():
        for key, value in list(id_map.items()):
            if value == absorbed:
                id_map[key] = survivor


def _dedupe_parallel_edges(graph: Graph) -> None:
    """Edges are unified automatically when their end nodes are unified."""
    seen: Dict[Tuple[str, str], str] = {}
    for edge_id in list(graph.edge_ids()):
        edge = graph.edge(edge_id)
        key = (edge.source, edge.target)
        if not graph.directed:
            key = tuple(sorted(key))  # type: ignore[assignment]
        if key in seen:
            keeper = graph.edge(seen[key])
            keeper.tuple = keeper.tuple.merged(edge.tuple)
            graph.remove_edge(edge_id)
        else:
            seen[key] = edge_id
