"""Zipf-distributed sampling over a finite label universe.

Section 5.2: *"The distribution of the labels follows Zipf's law, i.e.,
probability of the x-th label p(x) is proportional to x^-1."*
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence


class ZipfSampler:
    """Samples indices 1..n with p(x) ∝ x^(-s) (s=1 is the paper's law)."""

    def __init__(self, n: int, s: float = 1.0) -> None:
        if n < 1:
            raise ValueError("need at least one item")
        weights = [1.0 / (x ** s) for x in range(1, n + 1)]
        total = sum(weights)
        self.n = n
        self.s = s
        self._cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0  # guard against float drift

    def sample(self, rng: random.Random) -> int:
        """Draw one index in [0, n)."""
        return bisect.bisect_left(self._cumulative, rng.random())

    def probability(self, index: int) -> float:
        """The probability of index (0-based)."""
        prev = self._cumulative[index - 1] if index > 0 else 0.0
        return self._cumulative[index] - prev

    def sample_label(self, rng: random.Random, labels: Sequence[str]) -> str:
        """Draw one label from a sequence of length >= n."""
        return labels[self.sample(rng)]
