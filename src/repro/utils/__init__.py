"""Small shared utilities (deterministic randomness, Zipf sampling)."""

from .zipf import ZipfSampler

__all__ = ["ZipfSampler"]
