"""Command-line interface: run GraphQL queries and pattern matches.

Usage examples::

    repro-gql info data.gql
    repro-gql match data.gql --pattern query.gql [--baseline] [--explain]
    repro-gql run program.gql --doc DBLP=papers.gql --out result.gql

Files use the GraphQL concrete syntax (see ``repro.storage.serializer``);
a data file holds one or more ``graph`` declarations.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core import Graph, GraphCollection
from .lang import compile_pattern_text
from .matching import baseline_options, optimized_options
from .storage import GraphDatabase, graph_to_text, load_collection


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--directed", action="store_true",
                        help="treat data graphs as directed")


def build_parser() -> argparse.ArgumentParser:
    """Build the repro-gql argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-gql",
        description="GraphQL (He & Singh, SIGMOD 2008) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="summarize a data file")
    info.add_argument("data", help="GraphQL data file")
    _add_common(info)

    match = sub.add_parser("match", help="match a pattern against a data file")
    match.add_argument("data", help="GraphQL data file")
    match.add_argument("--pattern", required=True,
                       help="file containing one graph pattern")
    match.add_argument("--baseline", action="store_true",
                       help="disable the optimized access methods")
    match.add_argument("--limit", type=int, default=1000,
                       help="answer cap (default 1000, as in the paper)")
    match.add_argument("--show-mappings", type=int, default=5,
                       help="how many mappings to print per graph")
    match.add_argument("--explain", action="store_true",
                       help="print the access plan instead of matching")
    _add_common(match)

    run = sub.add_parser("run", help="run a GraphQL program")
    run.add_argument("program", help="GraphQL program file")
    run.add_argument("--doc", action="append", default=[],
                     metavar="NAME=PATH",
                     help="bind doc(NAME) to a data file (repeatable)")
    run.add_argument("--out", help="write the result graph/collection here")
    _add_common(run)

    return parser


def cmd_info(args: argparse.Namespace) -> int:
    """``repro-gql info``: summarize a data file."""
    collection = load_collection(args.data, directed=args.directed)
    print(f"{args.data}: {len(collection)} graph(s)")
    for graph in collection:
        labels = {node.label for node in graph.nodes() if node.label}
        print(f"  {graph.name or '<anon>'}: {graph.num_nodes()} nodes, "
              f"{graph.num_edges()} edges, {len(labels)} labels")
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    """``repro-gql match``: match (or explain) a pattern over a data file."""
    collection = load_collection(args.data, directed=args.directed)
    pattern_text = Path(args.pattern).read_text(encoding="utf-8")
    pattern = compile_pattern_text(pattern_text)
    database = GraphDatabase()
    database.register("data", collection)
    options = (baseline_options(limit=args.limit) if args.baseline
               else optimized_options(limit=args.limit))
    if args.explain:
        for position, graph in enumerate(collection):
            matcher = database.matcher_for(graph)
            for ground in (pattern.ground()
                           if hasattr(pattern, "ground") else [pattern]):
                print(matcher.explain(ground, options))
        return 0
    reports = database.match("data", pattern, options)
    total = 0
    for name, report in reports.items():
        count = len(report.mappings)
        total += count
        print(f"{name}: {count} mapping(s) in {report.total_time * 1000:.1f} ms "
              f"(space {report.baseline_space} -> {report.refined_space})")
        for mapping in report.mappings[:args.show_mappings]:
            print(f"  {mapping}")
        if count > args.show_mappings:
            print(f"  ... and {count - args.show_mappings} more")
    print(f"total: {total} mapping(s)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``repro-gql run``: execute a GraphQL program against bound docs."""
    database = GraphDatabase()
    for binding in args.doc:
        if "=" not in binding:
            print(f"error: --doc expects NAME=PATH, got {binding!r}",
                  file=sys.stderr)
            return 2
        name, path = binding.split("=", 1)
        database.load(name, path, directed=args.directed)
    program_text = Path(args.program).read_text(encoding="utf-8")
    env = database.query(program_text)
    result = env.get("__result__")
    rendered = _render_result(result)
    if args.out:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote result to {args.out}")
    else:
        print(rendered)
    return 0


def _render_result(result) -> str:
    if isinstance(result, Graph):
        return graph_to_text(result)
    if isinstance(result, GraphCollection):
        parts = []
        for item in result:
            graph = item.as_graph() if hasattr(item, "as_graph") else item
            parts.append(graph_to_text(graph))
        return f"# {len(result)} graph(s)\n" + "\n\n".join(parts)
    if result is None:
        return "# no result"
    return repr(result)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"info": cmd_info, "match": cmd_match, "run": cmd_run}
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # surface compile/parse errors cleanly
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
