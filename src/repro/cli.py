"""Command-line interface: run GraphQL queries and pattern matches.

Usage examples::

    repro-gql info data.gql
    repro-gql match data.gql --pattern query.gql [--baseline] [--explain]
    repro-gql match data.gql --pattern query.gql --timeout 1 --max-steps 100000
    repro-gql run program.gql --doc DBLP=papers.gql --out result.gql
    repro-gql stress --seed 7 --queries 20 --timeout 5

Files use the GraphQL concrete syntax (see ``repro.storage.serializer``);
a data file holds one or more ``graph`` declarations.

Exit codes reflect the governance outcome: ``COMPLETE`` and ``TRUNCATED``
runs exit 0 (partial results under a cap are valid answers, like the
paper's 1000-answer termination rule), ``TIMED_OUT`` exits 3 and
``CANCELLED`` exits 4.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path
from typing import List, Optional

from .core import Graph, GraphCollection
from .lang import compile_pattern_text
from .matching import GraphMatcher, baseline_options, optimized_options
from .runtime import ExecutionContext, Outcome
from .storage import GraphDatabase, graph_to_text, load_collection

#: Outcome -> process exit code (partial-but-valid results still exit 0).
EXIT_BY_OUTCOME = {
    Outcome.COMPLETE: 0,
    Outcome.TRUNCATED: 0,
    Outcome.TIMED_OUT: 3,
    Outcome.CANCELLED: 4,
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--directed", action="store_true",
                        help="treat data graphs as directed")


def _add_governance(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="wall-clock deadline; partial results are "
                             "returned when it expires")
    parser.add_argument("--max-steps", type=int, default=None, metavar="N",
                        help="budget on search steps (candidate extensions, "
                             "derived facts)")
    parser.add_argument("--max-memory", type=int, default=None, metavar="BYTES",
                        help="approximate cap on retained result memory")


def build_parser() -> argparse.ArgumentParser:
    """Build the repro-gql argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-gql",
        description="GraphQL (He & Singh, SIGMOD 2008) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="summarize a data file")
    info.add_argument("data", help="GraphQL data file")
    _add_common(info)

    match = sub.add_parser("match", help="match a pattern against a data file")
    match.add_argument("data", help="GraphQL data file")
    match.add_argument("--pattern", required=True,
                       help="file containing one graph pattern")
    match.add_argument("--baseline", action="store_true",
                       help="disable the optimized access methods")
    match.add_argument("--limit", type=int, default=1000,
                       help="answer cap (default 1000, as in the paper); "
                            "enforced inside the search, so hitting it "
                            "terminates early with a TRUNCATED outcome")
    match.add_argument("--show-mappings", type=int, default=5,
                       help="how many mappings to print per graph")
    match.add_argument("--explain", action="store_true",
                       help="print the access plan instead of matching")
    _add_governance(match)
    _add_common(match)

    run = sub.add_parser("run", help="run a GraphQL program")
    run.add_argument("program", help="GraphQL program file")
    run.add_argument("--doc", action="append", default=[],
                     metavar="NAME=PATH",
                     help="bind doc(NAME) to a data file (repeatable)")
    run.add_argument("--out", help="write the result graph/collection here")
    _add_governance(run)
    _add_common(run)

    stress = sub.add_parser(
        "stress",
        help="random queries on a synthetic graph under a global deadline",
    )
    stress.add_argument("--seed", type=int, default=0,
                        help="RNG seed controlling graph and queries")
    stress.add_argument("--nodes", type=int, default=300,
                        help="synthetic graph size")
    stress.add_argument("--edges", type=int, default=None,
                        help="edge count (default 3x nodes)")
    stress.add_argument("--labels", type=int, default=20,
                        help="distinct node labels")
    stress.add_argument("--queries", type=int, default=20,
                        help="how many random queries to run")
    stress.add_argument("--size", type=int, default=6,
                        help="pattern size (nodes per query)")
    stress.add_argument("--timeout", type=float, default=5.0,
                        metavar="SECONDS",
                        help="global wall-clock deadline for the whole run")
    stress.add_argument("--max-steps", type=int, default=None, metavar="N",
                        help="per-query step budget")
    stress.add_argument("--limit", type=int, default=1000,
                        help="per-query answer cap")
    stress.add_argument("--baseline", action="store_true",
                        help="disable the optimized access methods")

    return parser


def cmd_info(args: argparse.Namespace) -> int:
    """``repro-gql info``: summarize a data file."""
    collection = load_collection(args.data, directed=args.directed)
    print(f"{args.data}: {len(collection)} graph(s)")
    for graph in collection:
        labels = {node.label for node in graph.nodes() if node.label}
        print(f"  {graph.name or '<anon>'}: {graph.num_nodes()} nodes, "
              f"{graph.num_edges()} edges, {len(labels)} labels")
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    """``repro-gql match``: match (or explain) a pattern over a data file."""
    collection = load_collection(args.data, directed=args.directed)
    pattern_text = Path(args.pattern).read_text(encoding="utf-8")
    pattern = compile_pattern_text(pattern_text)
    database = GraphDatabase()
    database.register("data", collection)
    options = (baseline_options(limit=args.limit) if args.baseline
               else optimized_options(limit=args.limit))
    if args.explain:
        for position, graph in enumerate(collection):
            matcher = database.matcher_for(graph)
            for ground in (pattern.ground()
                           if hasattr(pattern, "ground") else [pattern]):
                print(matcher.explain(ground, options))
        return 0
    # the answer cap is part of the context so the cap terminates the
    # search from the inside (TRUNCATED) instead of slicing afterwards
    context = ExecutionContext(
        timeout=args.timeout,
        max_steps=args.max_steps,
        max_results=args.limit,
        max_memory=args.max_memory,
    )
    reports = database.match("data", pattern, options, context=context)
    total = 0
    for name, report in reports.items():
        count = len(report.mappings)
        total += count
        print(f"{name}: {count} mapping(s) in {report.total_time * 1000:.1f} ms "
              f"(space {report.baseline_space} -> {report.refined_space})")
        for note in report.degradation:
            print(f"  degraded: {note}")
        if report.outcome.interrupted:
            print(f"  outcome: {report.outcome}")
        for mapping in report.mappings[:args.show_mappings]:
            print(f"  {mapping}")
        if count > args.show_mappings:
            print(f"  ... and {count - args.show_mappings} more")
    overall = context.outcome()
    print(f"total: {total} mapping(s) [{overall}]")
    return EXIT_BY_OUTCOME[overall.status]


def cmd_run(args: argparse.Namespace) -> int:
    """``repro-gql run``: execute a GraphQL program against bound docs."""
    database = GraphDatabase()
    for binding in args.doc:
        if "=" not in binding:
            print(f"error: --doc expects NAME=PATH, got {binding!r}",
                  file=sys.stderr)
            return 2
        name, path = binding.split("=", 1)
        database.load(name, path, directed=args.directed)
    program_text = Path(args.program).read_text(encoding="utf-8")
    governed = any(
        value is not None
        for value in (args.timeout, args.max_steps, args.max_memory)
    )
    context = (
        ExecutionContext(timeout=args.timeout, max_steps=args.max_steps,
                         max_memory=args.max_memory)
        if governed else None
    )
    env = database.query(program_text, context=context)
    result = env.get("__result__")
    rendered = _render_result(result)
    if args.out:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote result to {args.out}")
    else:
        print(rendered)
    if context is not None:
        outcome = context.outcome()
        if outcome.interrupted:
            print(f"outcome: {outcome}")
        return EXIT_BY_OUTCOME[outcome.status]
    return 0


def cmd_stress(args: argparse.Namespace) -> int:
    """``repro-gql stress``: random queries under a global deadline.

    Generates a seeded synthetic graph, then alternates between random
    clique queries (labels drawn from the graph) and connected-subgraph
    extractions (guaranteed at least one hit).  Every query runs under
    the remaining share of the global deadline; the run ends with an
    outcome histogram.
    """
    from .datasets.queries import clique_query, extract_connected_query
    from .datasets.random_graphs import erdos_renyi_graph

    rng = random.Random(args.seed)
    edges = args.edges if args.edges is not None else 3 * args.nodes
    graph = erdos_renyi_graph(args.nodes, edges, num_labels=args.labels,
                              seed=args.seed, name="stress")
    label_pool = sorted({node.label for node in graph.nodes() if node.label})
    print(f"graph: {graph.num_nodes()} nodes, {graph.num_edges()} edges, "
          f"{len(label_pool)} labels (seed {args.seed})")
    matcher = GraphMatcher(graph)
    options = (baseline_options(limit=args.limit) if args.baseline
               else optimized_options(limit=args.limit))
    deadline_end = time.monotonic() + args.timeout
    histogram = {status: 0 for status in Outcome}
    not_run = 0
    for index in range(args.queries):
        remaining = deadline_end - time.monotonic()
        if remaining <= 0:
            not_run = args.queries - index
            break
        if index % 2 == 0:
            kind = "clique"
            query = clique_query(args.size, label_pool, rng)
        else:
            kind = "extract"
            query = extract_connected_query(graph, args.size, rng)
        context = ExecutionContext(timeout=remaining,
                                   max_steps=args.max_steps,
                                   max_results=args.limit)
        report = matcher.match(query, options, context=context)
        outcome = report.outcome
        histogram[outcome.status] += 1
        print(f"q{index:02d} {kind:7s} size={args.size}: "
              f"{len(report.mappings)} mapping(s) [{outcome}]")
    print("histogram: " + "  ".join(
        f"{status.value}={count}" for status, count in histogram.items()
        if count or status is not Outcome.CANCELLED
    ))
    if not_run:
        print(f"not run (global deadline expired): {not_run}")
    return 0


def _render_result(result) -> str:
    if isinstance(result, Graph):
        return graph_to_text(result)
    if isinstance(result, GraphCollection):
        parts = []
        for item in result:
            graph = item.as_graph() if hasattr(item, "as_graph") else item
            parts.append(graph_to_text(graph))
        return f"# {len(result)} graph(s)\n" + "\n\n".join(parts)
    if result is None:
        return "# no result"
    return repr(result)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"info": cmd_info, "match": cmd_match, "run": cmd_run,
                "stress": cmd_stress}
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # surface compile/parse errors cleanly
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
