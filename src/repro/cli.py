"""Command-line interface: run GraphQL queries and pattern matches.

Usage examples::

    repro-gql info data.gql
    repro-gql match data.gql --pattern query.gql [--baseline] [--explain]
    repro-gql match data.gql --pattern query.gql --timeout 1 --max-steps 100000
    repro-gql match data.gql --pattern query.gql --json --trace-out spans.jsonl
    repro-gql explain data.gql --pattern query.gql [--analyze] [--json]
    repro-gql run program.gql --doc DBLP=papers.gql --out result.gql
    repro-gql stress --seed 7 --queries 20 --timeout 5 --workers 4
    repro-gql serve data.gql --port 7687 --workers 4
    repro-gql serve --synthetic 1000 --port 0 --metrics-port 9090
    repro-gql serve data.gql --store state.db --fsync commit
    repro-gql serve --store state.db --port 0      # resume from the store
    repro-gql stats --port 7687 --format prometheus
    repro-gql recover state.db --json
    repro-gql checkpoint state.db
    repro-gql cluster serve --shards 3
    repro-gql cluster route --endpoints 127.0.0.1:7687,127.0.0.1:7688 \
        --pattern query.gql --json
    repro-gql cluster smoke --shards 3 --queries 40

Files use the GraphQL concrete syntax (see ``repro.storage.serializer``);
a data file holds one or more ``graph`` declarations.

Exit codes reflect the governance outcome: ``COMPLETE`` and ``TRUNCATED``
runs exit 0 (partial results under a cap are valid answers, like the
paper's 1000-answer termination rule), ``TIMED_OUT`` exits 3 and
``CANCELLED`` exits 4.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import random
import signal
import sys
import threading
from pathlib import Path
from typing import Iterator, List, Optional

from .core import Graph, GraphCollection
from .lang import compile_pattern_text
from .matching import baseline_options, optimized_options
from .runtime import ExecutionContext, Outcome
from .storage import GraphDatabase, graph_to_text, load_collection

#: Outcome -> process exit code (partial-but-valid results still exit 0).
EXIT_BY_OUTCOME = {
    Outcome.COMPLETE: 0,
    Outcome.TRUNCATED: 0,
    Outcome.TIMED_OUT: 3,
    Outcome.CANCELLED: 4,
    Outcome.REJECTED: 5,
    Outcome.SHED: 5,  # like REJECTED: the service turned the work away
    Outcome.PARTIAL: 6,  # some shards never answered: rows are incomplete
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--directed", action="store_true",
                        help="treat data graphs as directed")


def _add_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="enable tracing and append one JSON line per "
                             "finished span to PATH (see "
                             "docs/observability.md)")


@contextlib.contextmanager
def _tracing_to(path: Optional[str]) -> Iterator[None]:
    """Tracing enabled with a JSONL sink at *path* for the block.

    With ``path=None`` this is a no-op (tracing stays disabled and the
    matcher instrumentation stays on its zero-cost path).
    """
    if not path:
        yield
        return
    from .obs.trace import JsonlSink, tracer

    sink = JsonlSink(path)
    try:
        with tracer().session(sink):
            yield
    finally:
        sink.close()


def _add_governance(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="wall-clock deadline; partial results are "
                             "returned when it expires")
    parser.add_argument("--max-steps", type=int, default=None, metavar="N",
                        help="budget on search steps (candidate extensions, "
                             "derived facts)")
    parser.add_argument("--max-memory", type=int, default=None, metavar="BYTES",
                        help="approximate cap on retained result memory")


def build_parser() -> argparse.ArgumentParser:
    """Build the repro-gql argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-gql",
        description="GraphQL (He & Singh, SIGMOD 2008) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="summarize a data file")
    info.add_argument("data", help="GraphQL data file")
    _add_common(info)

    match = sub.add_parser("match", help="match a pattern against a data file")
    match.add_argument("data", help="GraphQL data file")
    match.add_argument("--pattern", required=True,
                       help="file containing one graph pattern")
    match.add_argument("--baseline", action="store_true",
                       help="disable the optimized access methods")
    match.add_argument("--limit", type=int, default=1000,
                       help="answer cap (default 1000, as in the paper); "
                            "enforced inside the search, so hitting it "
                            "terminates early with a TRUNCATED outcome")
    match.add_argument("--show-mappings", type=int, default=5,
                       help="how many mappings to print per graph")
    match.add_argument("--explain", action="store_true",
                       help="print the access plan instead of matching")
    match.add_argument("--json", action="store_true",
                       help="emit one JSON document (mappings + outcome + "
                            "per-stage counts and timings, the "
                            "wire-protocol serialization)")
    _add_governance(match)
    _add_common(match)
    _add_trace(match)

    explain = sub.add_parser(
        "explain",
        help="show the access plan for a pattern (EXPLAIN [ANALYZE])",
    )
    explain.add_argument("data", help="GraphQL data file")
    explain.add_argument("--pattern", required=True,
                         help="file containing one graph pattern")
    explain.add_argument("--baseline", action="store_true",
                         help="explain the unoptimized access path")
    explain.add_argument("--analyze", action="store_true",
                         help="also run the query and report actual "
                              "counts, per-phase timings and the outcome")
    explain.add_argument("--json", action="store_true",
                         help="emit the explain document as JSON (the "
                              "same shape the service 'explain' op "
                              "returns)")
    explain.add_argument("--limit", type=int, default=1000,
                         help="answer cap for --analyze (default 1000)")
    _add_governance(explain)
    _add_common(explain)

    check = sub.add_parser(
        "check",
        help="statically analyze queries without running them",
    )
    check.add_argument("files", nargs="+", metavar="FILE",
                       help="GraphQL program or pattern files")
    check.add_argument("--strict", action="store_true",
                       help="treat warnings as errors (hints never fail)")
    check.add_argument("--json", action="store_true",
                       help="emit diagnostics as one JSON document")
    check.add_argument("--schema-from", default=None, metavar="DATA",
                       help="infer an observed schema from this data file "
                            "and enable schema-aware checks (unknown "
                            "attributes, tags, type confusion)")
    _add_common(check)

    run = sub.add_parser("run", help="run a GraphQL program")
    run.add_argument("program", help="GraphQL program file")
    run.add_argument("--doc", action="append", default=[],
                     metavar="NAME=PATH",
                     help="bind doc(NAME) to a data file (repeatable)")
    run.add_argument("--out", help="write the result graph/collection here")
    run.add_argument("--json", action="store_true",
                     help="emit one JSON document (result text + outcome)")
    _add_governance(run)
    _add_common(run)
    _add_trace(run)

    stress = sub.add_parser(
        "stress",
        help="random queries on a synthetic graph under a global deadline",
    )
    stress.add_argument("--seed", type=int, default=0,
                        help="RNG seed controlling graph and queries")
    stress.add_argument("--nodes", type=int, default=300,
                        help="synthetic graph size")
    stress.add_argument("--edges", type=int, default=None,
                        help="edge count (default 3x nodes)")
    stress.add_argument("--labels", type=int, default=20,
                        help="distinct node labels")
    stress.add_argument("--queries", type=int, default=20,
                        help="how many random queries to run")
    stress.add_argument("--size", type=int, default=6,
                        help="pattern size (nodes per query)")
    stress.add_argument("--timeout", type=float, default=5.0,
                        metavar="SECONDS",
                        help="global wall-clock deadline for the whole run")
    stress.add_argument("--max-steps", type=int, default=None, metavar="N",
                        help="per-query step budget")
    stress.add_argument("--limit", type=int, default=1000,
                        help="per-query answer cap")
    stress.add_argument("--baseline", action="store_true",
                        help="disable the optimized access methods "
                             "(runs under the same per-query timeout as "
                             "the optimized path)")
    stress.add_argument("--workers", type=int, default=4,
                        help="query-service worker threads")
    stress.add_argument("--queue-depth", type=int, default=None,
                        help="admission queue depth (default: accept the "
                             "whole batch; lower it to exercise load "
                             "shedding)")
    stress.add_argument("--per-query-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-query deadline (default: the global "
                             "deadline; both the optimized and --baseline "
                             "paths honor it)")

    serve = sub.add_parser(
        "serve",
        help="serve queries over TCP (newline-delimited JSON protocol)",
    )
    serve.add_argument("data", nargs="?", default=None,
                       help="GraphQL data file to serve as document 'data'")
    serve.add_argument("--synthetic", type=int, default=None, metavar="N",
                       help="serve a seeded synthetic graph of N nodes "
                            "instead of a data file")
    serve.add_argument("--seed", type=int, default=0,
                       help="RNG seed for --synthetic")
    serve.add_argument("--labels", type=int, default=20,
                       help="distinct labels for --synthetic")
    serve.add_argument("--edges", type=int, default=None,
                       help="edge count for --synthetic (default 3x nodes)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7687,
                       help="TCP port (0 picks a free one; the bound "
                            "address is printed on startup)")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker pool size")
    serve.add_argument("--processes", action="store_true",
                       help="use a process pool (CPU parallelism; "
                            "per-request cancel cannot reach workers)")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="admitted requests that may wait beyond the "
                            "running ones; more are REJECTED")
    serve.add_argument("--per-client", type=int, default=8,
                       help="per-client in-flight quota")
    serve.add_argument("--timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="default per-query deadline (requests may "
                            "tighten, never exceed it)")
    serve.add_argument("--max-steps", type=int, default=None, metavar="N",
                       help="default per-query step budget")
    serve.add_argument("--limit", type=int, default=1000,
                       help="default per-query answer cap")
    serve.add_argument("--plan-cache", type=int, default=256,
                       help="plan cache entries (0 disables)")
    serve.add_argument("--result-cache", type=int, default=256,
                       help="result cache entries (0 disables)")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="how long shutdown waits for in-flight "
                            "queries before cancelling them")
    serve.add_argument("--store", default=None, metavar="PATH",
                       help="WAL-backed store file: recovery runs on "
                            "startup, registrations are write-through "
                            "durable, shutdown checkpoints; with no data "
                            "file the stored documents are served as-is")
    serve.add_argument("--fsync", default="commit",
                       choices=("always", "commit", "never"),
                       help="WAL fsync policy for --store "
                            "(default: commit)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="expose Prometheus metrics over plain HTTP "
                            "on this port (0 picks a free one; GET "
                            "/metrics for the text exposition, /stats "
                            "for JSON)")
    serve.add_argument("--slow-log-size", type=int, default=32,
                       help="keep the N slowest over-threshold requests "
                            "(0 disables the slow-query log)")
    serve.add_argument("--slow-log-threshold", type=float, default=0.0,
                       metavar="SECONDS",
                       help="only record requests slower than this in "
                            "the slow-query log")
    serve.add_argument("--no-shed", action="store_true",
                       help="disable deadline-aware load shedding "
                            "(requests whose deadline cannot be met "
                            "get queued instead of SHED)")
    serve.add_argument("--breaker-threshold", type=int, default=8,
                       metavar="N",
                       help="consecutive failures/timeouts that open a "
                            "client's circuit breaker (0 disables)")
    serve.add_argument("--breaker-cooldown", type=float, default=5.0,
                       metavar="SECONDS",
                       help="how long an open breaker sheds before the "
                            "half-open probe")
    serve.add_argument("--watchdog-multiple", type=float, default=4.0,
                       metavar="X",
                       help="recycle a worker stuck past X times the "
                            "request's effective timeout (0 disables "
                            "the pool watchdog)")
    serve.add_argument("--watchdog-interval", type=float, default=0.25,
                       metavar="SECONDS",
                       help="how often the pool watchdog scans for "
                            "stuck workers")
    serve.add_argument("--dup-table-size", type=int, default=512,
                       metavar="N",
                       help="completed responses remembered for "
                            "idempotent client retries (0 disables)")
    _add_common(serve)
    _add_trace(serve)

    stats = sub.add_parser(
        "stats",
        help="fetch a running server's metrics over the wire protocol",
    )
    stats.add_argument("--host", default="127.0.0.1",
                       help="server address (default 127.0.0.1)")
    stats.add_argument("--port", type=int, default=7687,
                       help="server port (default 7687)")
    stats.add_argument("--format", default="json",
                       choices=("json", "prometheus"),
                       help="json snapshot (default) or the Prometheus "
                            "text exposition")

    recover_cmd = sub.add_parser(
        "recover",
        help="run WAL recovery on a store file (idempotent) and report",
    )
    recover_cmd.add_argument("store", help="store file (its WAL is "
                                           "PATH + '.wal')")
    recover_cmd.add_argument("--json", action="store_true",
                             help="emit the recovery report as JSON")

    checkpoint_cmd = sub.add_parser(
        "checkpoint",
        help="recover a store, sync its pages, and truncate the WAL",
    )
    checkpoint_cmd.add_argument("store", help="store file")
    checkpoint_cmd.add_argument("--json", action="store_true",
                                help="emit the checkpoint report as JSON")

    cluster = sub.add_parser(
        "cluster",
        help="sharded serving: boot local shards, route scatter-gather "
             "queries, run the partial-failure smoke",
    )
    csub = cluster.add_subparsers(dest="cluster_command", required=True)

    cserve = csub.add_parser(
        "serve",
        help="split a seeded collection over N local shard servers "
             "(ephemeral ports) and keep them up until SIGINT/SIGTERM",
    )
    cserve.add_argument("--shards", type=int, default=3,
                        help="shard servers to launch (default 3)")
    cserve.add_argument("--molecules", type=int, default=48,
                        help="graphs in the synthetic collection")
    cserve.add_argument("--seed", type=int, default=97,
                        help="collection generator seed")
    cserve.add_argument("--workers", type=int, default=2,
                        help="worker threads per shard")
    cserve.add_argument("--timeout", type=float, default=10.0,
                        metavar="SECONDS",
                        help="per-shard default query deadline")
    cserve.add_argument("--replication", type=int, default=1,
                        metavar="R",
                        help="replicas per slice (R >= 2 enables "
                             "failover serving; default 1)")
    cserve.add_argument("--supervise", action="store_true",
                        help="restart dead shards from their stores "
                             "(exponential backoff, restart budget)")
    cserve.add_argument("--state", default=None, metavar="PATH",
                        help="write a JSON cluster-state file here "
                             "(read by 'cluster status'), refreshed "
                             "while serving")

    croute = csub.add_parser(
        "route",
        help="fan one pattern query out to shard endpoints and merge",
    )
    croute.add_argument("--endpoints", required=True,
                        help="comma-separated shard endpoints "
                             "(host:port,host:port,...)")
    group = croute.add_mutually_exclusive_group(required=True)
    group.add_argument("--pattern", metavar="PATH",
                       help="file holding the pattern query")
    group.add_argument("--query", metavar="TEXT",
                       help="the pattern query inline")
    croute.add_argument("--document", default="data",
                        help="document name on the shards (default data)")
    croute.add_argument("--limit", type=int, default=1000,
                        help="global answer cap across all shards")
    croute.add_argument("--timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="overall fan-out deadline")
    croute.add_argument("--hedge-after", type=float, default=None,
                        metavar="SECONDS",
                        help="race a second request to a shard that "
                             "has not answered after this long")
    croute.add_argument("--json", action="store_true",
                        help="emit rows + outcome + per-shard "
                             "accounting as JSON")
    _add_trace(croute)

    csmoke = csub.add_parser(
        "smoke",
        help="boot a cluster, soak it, SIGKILL one shard mid-run, and "
             "audit the PARTIAL accounting (exit 0 only when sound)",
    )
    csmoke.add_argument("--shards", type=int, default=3,
                        help="shard servers to launch (default 3)")
    csmoke.add_argument("--queries", type=int, default=40,
                        help="fan-outs to run across the soak")
    csmoke.add_argument("--molecules", type=int, default=48,
                        help="graphs in the synthetic collection")
    csmoke.add_argument("--seed", type=int, default=97,
                        help="collection generator seed")
    csmoke.add_argument("--no-kill", action="store_true",
                        help="skip the mid-soak SIGKILL (healthy-path "
                             "check only)")
    csmoke.add_argument("--hedge-after", type=float, default=None,
                        metavar="SECONDS",
                        help="enable hedging during the soak")
    csmoke.add_argument("--timeout", type=float, default=8.0,
                        metavar="SECONDS",
                        help="per-fan-out deadline")
    csmoke.add_argument("--replication", type=int, default=1,
                        metavar="R",
                        help="replicas per slice; R >= 2 runs the "
                             "zero-PARTIAL drill (supervised failover "
                             "instead of PARTIAL replies)")
    csmoke.add_argument("--report", default=None, metavar="PATH",
                        help="also write the JSON report here (written "
                             "on failure too, for CI artifacts)")

    cstatus = csub.add_parser(
        "status",
        help="one line per shard: endpoint, alive/ready, breaker "
             "states, restart count, map version",
    )
    cstatus.add_argument("--state", required=True, metavar="PATH",
                         help="cluster-state file written by "
                              "'cluster serve --state'")
    cstatus.add_argument("--probe-timeout", type=float, default=2.0,
                         metavar="SECONDS",
                         help="per-shard wire probe deadline")
    cstatus.add_argument("--json", action="store_true",
                         help="emit the full merged status as JSON")

    return parser


def cmd_info(args: argparse.Namespace) -> int:
    """``repro-gql info``: summarize a data file."""
    collection = load_collection(args.data, directed=args.directed)
    print(f"{args.data}: {len(collection)} graph(s)")
    for graph in collection:
        labels = {node.label for node in graph.nodes() if node.label}
        print(f"  {graph.name or '<anon>'}: {graph.num_nodes()} nodes, "
              f"{graph.num_edges()} edges, {len(labels)} labels")
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    """``repro-gql match``: match (or explain) a pattern over a data file."""
    collection = load_collection(args.data, directed=args.directed)
    pattern_text = Path(args.pattern).read_text(encoding="utf-8")
    pattern = compile_pattern_text(pattern_text)
    database = GraphDatabase()
    database.register("data", collection)
    options = (baseline_options(limit=args.limit) if args.baseline
               else optimized_options(limit=args.limit))
    if args.explain:
        for position, graph in enumerate(collection):
            matcher = database.matcher_for(graph)
            for ground in (pattern.ground()
                           if hasattr(pattern, "ground") else [pattern]):
                print(matcher.explain(ground, options))
        return 0
    # the answer cap is part of the context so the cap terminates the
    # search from the inside (TRUNCATED) instead of slicing afterwards
    context = ExecutionContext(
        timeout=args.timeout,
        max_steps=args.max_steps,
        max_results=args.limit,
        max_memory=args.max_memory,
    )
    with _tracing_to(args.trace_out):
        reports = database.match("data", pattern, options, context=context)
    if args.json:
        overall = context.outcome()
        document = {
            "graphs": {
                name: {
                    "mappings": [
                        {"nodes": dict(m.nodes), "edges": dict(m.edges)}
                        for m in report.mappings
                    ],
                    "outcome": report.outcome.to_dict(),
                    "degradation": list(report.degradation),
                    "stages": report.stats_dict(),
                }
                for name, report in reports.items()
            },
            "total": sum(len(r.mappings) for r in reports.values()),
            "outcome": overall.to_dict(),
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return EXIT_BY_OUTCOME[overall.status]
    total = 0
    for name, report in reports.items():
        count = len(report.mappings)
        total += count
        print(f"{name}: {count} mapping(s) in {report.total_time * 1000:.1f} ms "
              f"(space {report.baseline_space} -> {report.refined_space})")
        for note in report.degradation:
            print(f"  degraded: {note}")
        if report.outcome.interrupted:
            print(f"  outcome: {report.outcome}")
        for mapping in report.mappings[:args.show_mappings]:
            print(f"  {mapping}")
        if count > args.show_mappings:
            print(f"  ... and {count - args.show_mappings} more")
    overall = context.outcome()
    print(f"total: {total} mapping(s) [{overall}]")
    return EXIT_BY_OUTCOME[overall.status]


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro-gql explain``: the access plan, EXPLAIN [ANALYZE] style.

    Prints, per graph and pattern node, the retrieval method the planner
    chose (attribute index / label index / scan), the statistics-based
    candidate estimate next to the actual feasible-mate, pruned and
    refined counts, and the selected search order with its cost-model
    estimates.  ``--analyze`` additionally runs the query and attaches
    per-phase timings, search counters and the governance outcome.
    """
    from .obs.explain import explain_document, render_text

    collection = load_collection(args.data, directed=args.directed)
    pattern_text = Path(args.pattern).read_text(encoding="utf-8")
    pattern = compile_pattern_text(pattern_text)
    database = GraphDatabase()
    database.register("data", collection)
    options = (baseline_options(limit=args.limit) if args.baseline
               else optimized_options(limit=args.limit))
    context = None
    if args.analyze:
        context = ExecutionContext(
            timeout=args.timeout,
            max_steps=args.max_steps,
            max_results=args.limit,
            max_memory=args.max_memory,
        )
    document = explain_document(database, "data", pattern, options,
                                analyze=args.analyze, context=context)
    from .analysis import analyze_pattern_text, infer_schema, to_wire

    document["diagnostics"] = to_wire(
        analyze_pattern_text(pattern_text, infer_schema(collection)))
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_text(document))
    if context is not None:
        return EXIT_BY_OUTCOME[context.outcome().status]
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """``repro-gql check``: static analysis, no execution.

    Exit codes: 0 — no errors (warnings and hints may exist); 1 — at
    least one error-severity finding (with ``--strict``, warnings count);
    2 — a file could not be read.
    """
    from .analysis import (
        analyze_pattern_text,
        analyze_text,
        has_errors,
        infer_schema,
        promote_warnings,
    )
    from .lang.errors import GraphQLSyntaxError
    from .lang.parser import parse_program

    schema = None
    if args.schema_from:
        schema = infer_schema(
            load_collection(args.schema_from, directed=args.directed))

    failed = False
    report = {}
    for name in args.files:
        text = Path(name).read_text(encoding="utf-8")
        # a file holding one bare pattern (the match/explain input
        # format) need not be `;`-terminated like a program statement:
        # analyze it as a program when it parses as one, as a single
        # pattern otherwise
        try:
            parse_program(text)
            diagnostics = analyze_text(text, schema)
        except GraphQLSyntaxError:
            diagnostics = analyze_pattern_text(text, schema)
        if args.strict:
            diagnostics = promote_warnings(diagnostics)
        report[name] = diagnostics
        failed = failed or has_errors(diagnostics)

    if args.json:
        print(json.dumps(
            {
                "ok": not failed,
                "files": {
                    name: [d.to_dict() for d in diagnostics]
                    for name, diagnostics in report.items()
                },
            },
            indent=2, sort_keys=True))
    else:
        total = 0
        for name, diagnostics in report.items():
            for diagnostic in diagnostics:
                total += 1
                print(diagnostic.render(name))
        checked = len(report)
        print(f"# {checked} file(s) checked, {total} finding(s)"
              + (", errors present" if failed else ""))
    return 1 if failed else 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro-gql stats``: fetch a running server's metrics."""
    from .service import ServiceClient

    with ServiceClient(args.host, args.port,
                       client_name="stats-cli") as client:
        payload = client.stats(format=args.format)
    if args.format == "prometheus":
        sys.stdout.write(payload if payload.endswith("\n")
                         else payload + "\n")
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``repro-gql run``: execute a GraphQL program against bound docs."""
    database = GraphDatabase()
    for binding in args.doc:
        if "=" not in binding:
            print(f"error: --doc expects NAME=PATH, got {binding!r}",
                  file=sys.stderr)
            return 2
        name, path = binding.split("=", 1)
        database.load(name, path, directed=args.directed)
    program_text = Path(args.program).read_text(encoding="utf-8")
    governed = any(
        value is not None
        for value in (args.timeout, args.max_steps, args.max_memory)
    )
    context = (
        ExecutionContext(timeout=args.timeout, max_steps=args.max_steps,
                         max_memory=args.max_memory)
        if governed else None
    )
    with _tracing_to(args.trace_out):
        env = database.query(program_text, context=context)
    result = env.get("__result__")
    rendered = _render_result(result)
    outcome = context.outcome() if context is not None else None
    if args.json:
        document = {
            "result": rendered,
            "outcome": outcome.to_dict() if outcome is not None else None,
        }
        if args.out:
            Path(args.out).write_text(rendered + "\n", encoding="utf-8")
            document["out"] = args.out
        print(json.dumps(document, indent=2, sort_keys=True))
        return EXIT_BY_OUTCOME[outcome.status] if outcome is not None else 0
    if args.out:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote result to {args.out}")
    else:
        print(rendered)
    if outcome is not None:
        if outcome.interrupted:
            print(f"outcome: {outcome}")
        return EXIT_BY_OUTCOME[outcome.status]
    return 0


def cmd_stress(args: argparse.Namespace) -> int:
    """``repro-gql stress``: a service soak test under a global deadline.

    Generates a seeded synthetic graph, then alternates between random
    clique queries (labels drawn from the graph) and connected-subgraph
    extractions (guaranteed at least one hit).  The whole batch is
    submitted through a :class:`~repro.service.QueryService` — the same
    admission-control/worker-pool path ``repro-gql serve`` uses — so
    ``stress`` doubles as a server soak test.  Every query (``--baseline``
    included) runs under the same per-query timeout; a watchdog cancels
    whatever is still in flight when the global deadline expires.
    """
    from .datasets.queries import clique_query, extract_connected_query
    from .datasets.random_graphs import erdos_renyi_graph
    from .service import QueryRequest, QueryService, ServiceConfig

    rng = random.Random(args.seed)
    edges = args.edges if args.edges is not None else 3 * args.nodes
    graph = erdos_renyi_graph(args.nodes, edges, num_labels=args.labels,
                              seed=args.seed, name="stress")
    label_pool = sorted({node.label for node in graph.nodes() if node.label})
    print(f"graph: {graph.num_nodes()} nodes, {graph.num_edges()} edges, "
          f"{len(label_pool)} labels (seed {args.seed})")
    per_query_timeout = (args.per_query_timeout
                         if args.per_query_timeout is not None
                         else args.timeout)
    queue_depth = (args.queue_depth if args.queue_depth is not None
                   else max(0, args.queries - args.workers))
    config = ServiceConfig(
        workers=args.workers,
        queue_depth=queue_depth,
        per_client=max(1, args.queries),
        default_timeout=per_query_timeout,
        default_max_steps=args.max_steps,
        default_max_results=args.limit,
    )
    service = QueryService(config)
    service.register("stress", graph)
    submissions = []
    for index in range(args.queries):
        if index % 2 == 0:
            kind = "clique"
            query = clique_query(args.size, label_pool, rng)
        else:
            kind = "extract"
            query = extract_connected_query(graph, args.size, rng)
        request = QueryRequest(query=query, document="stress",
                               client="stress", baseline=args.baseline)
        submissions.append((index, kind, service.submit(request)))
    watchdog = threading.Timer(
        args.timeout,
        lambda: service.cancel_all("global stress deadline expired"))
    watchdog.daemon = True
    watchdog.start()
    histogram = {status: 0 for status in Outcome}
    try:
        for index, kind, future in submissions:
            response = future.result()
            histogram[response.outcome.status] += 1
            print(f"q{index:02d} {kind:7s} size={args.size}: "
                  f"{len(response.results)} mapping(s) [{response.outcome}]")
    finally:
        watchdog.cancel()
        service.shutdown(timeout=0)
    print("histogram: " + "  ".join(
        f"{status.value}={count}" for status, count in histogram.items()
        if count or status is not Outcome.CANCELLED
    ))
    snapshot = service.metrics.snapshot()
    print(f"service: admitted={snapshot['admitted']} "
          f"rejected={snapshot['rejected']} "
          f"p95={snapshot['latency']['p95'] * 1000:.1f}ms")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro-gql serve``: the TCP query service.

    Serves the given data file (or a seeded synthetic graph) as document
    ``data`` over the newline-delimited JSON protocol (see
    ``docs/service.md``).  SIGTERM/SIGINT trigger a graceful drain: the
    listening socket closes immediately, in-flight queries finish or are
    cancelled at the drain deadline, and final metrics are printed.
    """
    if args.data is not None and args.synthetic is not None:
        print("error: serve takes a data file or --synthetic N, not both",
              file=sys.stderr)
        return 2
    if args.data is None and args.synthetic is None and args.store is None:
        print("error: serve needs a data file, --synthetic N, or --store",
              file=sys.stderr)
        return 2
    # the trace session covers the whole lifecycle — recovery and
    # registration (WAL spans) included, not just the serve loop
    with _tracing_to(args.trace_out):
        return _serve(args)


def _serve(args: argparse.Namespace) -> int:
    from .service import QueryServer, QueryService, ServiceConfig

    config = ServiceConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        per_client=args.per_client,
        use_processes=args.processes,
        default_timeout=args.timeout,
        default_max_steps=args.max_steps,
        default_max_results=args.limit,
        plan_cache_size=args.plan_cache,
        result_cache_size=args.result_cache,
        drain_timeout=args.drain_timeout,
        store_path=args.store,
        fsync=args.fsync,
        slow_log_size=args.slow_log_size,
        slow_log_threshold=args.slow_log_threshold,
        shed_enabled=not args.no_shed,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        watchdog_multiple=args.watchdog_multiple,
        watchdog_interval=args.watchdog_interval,
        dup_table_size=args.dup_table_size,
    )
    service = QueryService(config)
    if service.recovery is not None:
        r = service.recovery
        print(f"store {args.store}: "
              f"{'clean open' if r.clean else 'recovered'} "
              f"({r.replayed_transactions} txn(s) replayed, "
              f"{r.discarded_records} record(s) discarded"
              f"{', torn tail cut' if r.torn_tail else ''}); "
              f"{len(service.database.names())} document(s) loaded",
              flush=True)
    if args.data is not None:
        service.load("data", args.data, directed=args.directed)
    elif args.synthetic is not None:
        from .datasets.random_graphs import erdos_renyi_graph

        edges = args.edges if args.edges is not None else 3 * args.synthetic
        service.register("data", erdos_renyi_graph(
            args.synthetic, edges, num_labels=args.labels,
            seed=args.seed, name="data"))
    if not service.database.names():
        print("error: --store holds no documents yet; give a data file "
              "or --synthetic for the first run", file=sys.stderr)
        service.shutdown(timeout=0)
        return 2
    primary = (service.database.names()[0]
               if "data" not in service.database.names() else "data")
    graphs = service.database.doc(primary)
    server = QueryServer(service, (args.host, args.port))
    host, port = server.address
    exporter = None
    if args.metrics_port is not None:
        from .obs.httpexport import MetricsHTTPExporter

        def ready_probe():
            ready, reason = service.ready()
            if ready and server.draining:
                return False, "draining"
            return ready, reason

        exporter = MetricsHTTPExporter(
            service.metrics_text, json_fn=service.stats,
            host=args.host, port=args.metrics_port,
            health_fn=service.health, ready_fn=ready_probe)
        exporter.start()
        metrics_host, metrics_port = exporter.address
        print(f"metrics on {metrics_host}:{metrics_port} "
              f"(/metrics /stats /health /ready)", flush=True)
    print(f"serving {len(graphs)} graph(s) on {host}:{port} "
          f"({config.workers} {'process' if args.processes else 'thread'} "
          f"worker(s), queue {config.queue_depth}, "
          f"timeout {config.default_timeout:g}s)", flush=True)
    # machine-readable startup line: with ``--port 0`` the OS picks the
    # port, and supervisors (repro.cluster bootstrap, smoke harnesses)
    # need the *actual* bound address without scraping the prose banner
    ready_payload = {"ready": True, "host": host, "port": port,
                     "documents": sorted(service.database.names())}
    if exporter is not None:
        ready_payload["metrics_port"] = metrics_port
    print("ready " + json.dumps(ready_payload, sort_keys=True), flush=True)

    def on_signal(signum, frame):
        print(f"signal {signum}: draining ...", flush=True)
        threading.Thread(target=server.shutdown_gracefully,
                         daemon=True).start()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    try:
        server.serve_until_shutdown()
    finally:
        if exporter is not None:
            exporter.close()
    print(f"shutdown: {service.metrics.summary()}", flush=True)
    for line in service.slow_log.render_lines():
        print(f"slow query: {line}", flush=True)
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """``repro-gql recover``: offline WAL recovery of a store file.

    Replays committed transactions into the page file, discards
    uncommitted records and any torn tail, then truncates the log.
    Running it on a clean store is a no-op (recovery is idempotent); the
    service performs the same repair automatically on startup.
    """
    from .storage.wal import recover

    result = recover(args.store)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    if result.clean:
        print(f"{args.store}: clean (no WAL records to replay)")
    else:
        print(f"{args.store}: replayed {result.replayed_transactions} "
              f"transaction(s) ({result.replayed_pages} page(s)), "
              f"discarded {result.discarded_records} record(s)"
              f"{', cut a torn tail' if result.torn_tail else ''}; "
              f"WAL truncated from {result.wal_bytes} bytes")
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """``repro-gql checkpoint``: recover, sync pages, truncate the WAL."""
    from .storage import GraphStore

    store = GraphStore(args.store, durable=True)
    recovery = store.recovery.to_dict()
    freed = store.checkpoint()
    wal_bytes = store.wal.size
    store.close(checkpoint=False)
    if args.json:
        print(json.dumps({"store": args.store, "recovery": recovery,
                          "freed_bytes": freed, "wal_bytes": wal_bytes},
                         indent=2, sort_keys=True))
        return 0
    print(f"{args.store}: checkpointed ({freed} WAL byte(s) freed, "
          f"{wal_bytes} remaining)")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """``repro-gql cluster``: sharded serving and scatter-gather routing."""
    if args.cluster_command == "serve":
        return _cluster_serve(args)
    if args.cluster_command == "route":
        return _cluster_route(args)
    if args.cluster_command == "status":
        return _cluster_status(args)
    return _cluster_smoke(args)


def _cluster_serve(args: argparse.Namespace) -> int:
    from .cluster import launch_cluster
    from .datasets.molecules import molecule_collection

    cluster = launch_cluster(
        molecule_collection(num_molecules=args.molecules, seed=args.seed),
        num_shards=args.shards, workers=args.workers,
        query_timeout=args.timeout,
        replication_factor=args.replication,
        supervise=args.supervise)
    state_path = Path(args.state) if args.state else None
    try:
        for shard_id, shard in cluster.shards.items():
            print(f"{shard_id}: {shard.host}:{shard.port} "
                  f"({len(shard.graph_ids)} graph(s), "
                  f"pid {shard.process.pid})", flush=True)
        # same contract as serve's ready line: supervisors parse this,
        # not the per-shard prose above
        print("cluster ready " + json.dumps({
            "shards": {sid: {"host": sp.host, "port": sp.port,
                             "pid": sp.process.pid}
                       for sid, sp in cluster.shards.items()},
            "map": cluster.shard_map.to_dict(),
        }, sort_keys=True), flush=True)
        stop = threading.Event()
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        signal.signal(signal.SIGINT, lambda *_: stop.set())
        if state_path is None:
            stop.wait()
        else:
            # refresh the state file while serving so 'cluster status'
            # sees supervisor restarts and fresh ports, not boot state
            while not stop.wait(1.0):
                cluster.write_state(state_path)
            cluster.write_state(state_path)
        print("draining cluster ...", flush=True)
    finally:
        if state_path is not None:
            try:
                cluster.write_state(state_path)
            except OSError:
                pass
        cluster.shutdown()
    return 0


def _cluster_status(args: argparse.Namespace) -> int:
    """``repro-gql cluster status``: probe the shards of a state file."""
    from .service.client import ServiceClient

    state = json.loads(Path(args.state).read_text(encoding="utf-8"))
    map_info = state.get("map", {})
    supervisor = state.get("supervisor") or {}
    abandoned = supervisor.get("abandoned", {})
    rows = []
    all_ok = True
    for shard_id in sorted(state.get("shards", {})):
        entry = state["shards"][shard_id]
        host, port = entry["host"], int(entry["port"])
        probe = {"alive": False, "ready": False,
                 "reason": "unreachable", "breakers": {}}
        try:
            with ServiceClient(host, port, timeout=args.probe_timeout,
                               client_name="cluster-status") as client:
                ready, reason = client.ready()
                health = client.health()
            probe.update(alive=True, ready=ready, reason=reason,
                         breakers=health.get("breakers", {}))
        except Exception as exc:
            probe["reason"] = f"{type(exc).__name__}: {exc}"
        if not probe["ready"]:
            all_ok = False
        rows.append({
            "shard": shard_id, "host": host, "port": port,
            "restarts": int(entry.get("restarts", 0)),
            "abandoned": abandoned.get(shard_id),
            **probe,
        })
    merged = {
        "map_version": map_info.get("version"),
        "replication_factor": map_info.get("replication_factor", 1),
        "supervisor": supervisor,
        "shards": rows,
        "ok": all_ok,
    }
    if args.json:
        print(json.dumps(merged, indent=2, sort_keys=True))
        return 0 if all_ok else 1
    print(f"map v{merged['map_version']} "
          f"R={merged['replication_factor']} "
          f"({len(rows)} shard(s), "
          f"{supervisor.get('restarts', 0)} supervised restart(s))")
    for row in rows:
        if row["abandoned"]:
            status = f"ABANDONED ({row['abandoned']})"
        elif not row["alive"]:
            status = f"DEAD ({row['reason']})"
        elif not row["ready"]:
            status = f"NOT READY ({row['reason']})"
        else:
            status = "ready"
        breakers = ",".join(f"{k}={v}" for k, v in
                            sorted(row["breakers"].items()) if v)
        print(f"  {row['shard']}  {row['host']}:{row['port']}  "
              f"{status}  breakers[{breakers or 'none'}]  "
              f"restarts={row['restarts']}")
    return 0 if all_ok else 1


def _cluster_route(args: argparse.Namespace) -> int:
    from .cluster import ClusterCoordinator, ShardMap

    query_text = (Path(args.pattern).read_text(encoding="utf-8")
                  if args.pattern else args.query)
    endpoints = {}
    for index, spec in enumerate(args.endpoints.split(",")):
        host, _, port = spec.strip().rpartition(":")
        if not host or not port.isdigit():
            print(f"error: bad endpoint {spec!r} (want host:port)",
                  file=sys.stderr)
            return 2
        endpoints[f"shard{index}"] = (host, int(port))
    coordinator = ClusterCoordinator(
        ShardMap(list(endpoints)), endpoints,
        timeout=args.timeout, hedge_after=args.hedge_after)
    with _tracing_to(args.trace_out):
        reply = coordinator.query(query_text, document=args.document,
                                  limit=args.limit)
    if args.json:
        print(json.dumps(reply.to_dict(), indent=2, sort_keys=True))
    else:
        outcome = reply.outcome
        print(f"{len(reply.results)} row(s) from {reply.merged}/"
              f"{reply.submitted} shard(s): {outcome}")
        for answer in reply.answers:
            state = ("merged" if answer.ok
                     else f"FAILED ({answer.error})")
            print(f"  {answer.shard}: {answer.rows} row(s), {state}")
        if reply.error:
            print(f"error: {reply.error}", file=sys.stderr)
    return EXIT_BY_OUTCOME[reply.outcome.status]


def _cluster_smoke(args: argparse.Namespace) -> int:
    from .cluster.smoke import run_smoke

    try:
        report = run_smoke(shards=args.shards, molecules=args.molecules,
                           queries=args.queries, seed=args.seed,
                           kill=not args.no_kill,
                           query_timeout=args.timeout,
                           hedge_after=args.hedge_after,
                           replication=args.replication)
    except Exception as exc:
        # the drill crashing IS a failure: still leave a report behind
        # for the CI artifact upload
        report = {"ok": False,
                  "problems": [f"smoke crashed: "
                               f"{type(exc).__name__}: {exc}"]}
        if args.report:
            Path(args.report).write_text(
                json.dumps(report, indent=2, sort_keys=True),
                encoding="utf-8")
        raise
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        Path(args.report).write_text(rendered + "\n", encoding="utf-8")
    print(rendered)
    return 0 if report["ok"] else 1


def _render_result(result) -> str:
    if isinstance(result, Graph):
        return graph_to_text(result)
    if isinstance(result, GraphCollection):
        parts = []
        for item in result:
            graph = item.as_graph() if hasattr(item, "as_graph") else item
            parts.append(graph_to_text(graph))
        return f"# {len(result)} graph(s)\n" + "\n\n".join(parts)
    if result is None:
        return "# no result"
    return repr(result)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"info": cmd_info, "match": cmd_match, "run": cmd_run,
                "check": cmd_check,
                "explain": cmd_explain, "stats": cmd_stats,
                "stress": cmd_stress, "serve": cmd_serve,
                "recover": cmd_recover, "checkpoint": cmd_checkpoint,
                "cluster": cmd_cluster}
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # surface compile/parse errors cleanly
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
