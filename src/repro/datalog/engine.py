"""Bottom-up Datalog evaluation: stratified semi-naive fixpoint.

The GraphQL ⊆ Datalog direction (Theorem 4.6) is demonstrated by running
translated programs through this engine and comparing against the native
matcher.  The engine supports:

* semi-naive iteration (each round joins at least one *delta* fact, so
  recursive programs such as reachability run in polynomial time);
* stratified negation (negated atoms may only refer to lower strata);
* comparison builtins over bound variables.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..obs.trace import span as trace_span
from ..runtime import ExecutionContext, ExecutionInterrupted
from .ast import Atom, BodyLiteral, Builtin, Const, Program, Rule, Var

FactStore = Dict[str, Set[Tuple[Any, ...]]]


class StratificationError(ValueError):
    """Raised when negation cycles make the program non-stratifiable."""


def stratify(program: Program) -> List[List[Rule]]:
    """Split the rules into strata respecting negative dependencies.

    Uses the classic iterative stratum-numbering algorithm: a predicate's
    stratum must be >= that of positively-referenced IDB predicates and
    > that of negatively-referenced ones; failure to converge means a
    negation cycle.
    """
    idb = program.idb_predicates()
    stratum: Dict[str, int] = {p: 0 for p in idb}
    changed = True
    limit = len(idb) + 1
    iterations = 0
    while changed:
        changed = False
        iterations += 1
        if iterations > limit * max(1, len(program.rules)):
            raise StratificationError("program is not stratifiable")
        for rule in program.rules:
            head = rule.head.predicate
            for element in rule.body:
                if not isinstance(element, BodyLiteral):
                    continue
                body_pred = element.atom.predicate
                if body_pred not in idb:
                    continue
                if element.negated:
                    required = stratum[body_pred] + 1
                else:
                    required = stratum[body_pred]
                if stratum[head] < required:
                    if required > len(idb):
                        raise StratificationError("program is not stratifiable")
                    stratum[head] = required
                    changed = True
    buckets: Dict[int, List[Rule]] = {}
    for rule in program.rules:
        buckets.setdefault(stratum[rule.head.predicate], []).append(rule)
    return [buckets[level] for level in sorted(buckets)]


def evaluate(
    program: Program,
    context: Optional[ExecutionContext] = None,
) -> FactStore:
    """Compute the full model (EDB + derived IDB facts).

    With a *context*, the fixpoint loop is governed: it ticks once per
    derived fact and checks the deadline/budgets/cancellation between
    rounds.  On interruption the partial model computed so far is
    returned and the interruption is recorded on the context — partial
    models are sound (every fact in them is genuinely derivable) but not
    complete.
    """
    facts: FactStore = {p: set(rows) for p, rows in program.facts.items()}
    with trace_span("datalog.evaluate") as sp:
        try:
            for stratum, rules in enumerate(stratify(program)):
                with trace_span("datalog.fixpoint", stratum=stratum):
                    _fixpoint(rules, facts, context)
        except ExecutionInterrupted as exc:
            if context is None:
                raise
            context.mark_interrupted(exc)
        sp.incr("facts", sum(len(rows) for rows in facts.values()))
    return facts


def _fixpoint(
    rules: Sequence[Rule],
    facts: FactStore,
    context: Optional[ExecutionContext] = None,
) -> None:
    """Semi-naive evaluation of one stratum, in place."""
    idb = {rule.head.predicate for rule in rules}
    delta: FactStore = {p: set() for p in idb}
    # initial round: plain evaluation (materialized: _derive iterates the
    # very fact sets we are inserting into)
    for rule in rules:
        for derived in list(_derive(rule, facts, delta=None, idb=idb)):
            if context is not None:
                context.tick()
            if derived not in facts.setdefault(rule.head.predicate, set()):
                facts[rule.head.predicate].add(derived)
                delta[rule.head.predicate].add(derived)
    while any(delta.values()):
        if context is not None:
            context.check()
        new_delta: FactStore = {p: set() for p in idb}
        for rule in rules:
            recursive_positions = [
                i
                for i, element in enumerate(rule.body)
                if isinstance(element, BodyLiteral)
                and not element.negated
                and element.atom.predicate in idb
            ]
            for position in recursive_positions:
                for derived in list(_derive(rule, facts, delta=delta, idb=idb,
                                            delta_position=position)):
                    if context is not None:
                        context.tick()
                    if derived not in facts.setdefault(rule.head.predicate, set()):
                        facts[rule.head.predicate].add(derived)
                        new_delta[rule.head.predicate].add(derived)
        delta = new_delta


def _derive(
    rule: Rule,
    facts: FactStore,
    delta: Optional[FactStore],
    idb: Set[str],
    delta_position: Optional[int] = None,
):
    """Yield head tuples derivable from one rule.

    When *delta_position* is set, that body literal ranges over the delta
    facts only (the semi-naive restriction).
    """
    head_terms = rule.head.terms

    def substitute_head(env: Dict[Var, Any]) -> Tuple[Any, ...]:
        out = []
        for t in head_terms:
            out.append(env[t] if isinstance(t, Var) else t.value)
        return tuple(out)

    def match_atom(atom: Atom, row: Tuple[Any, ...], env: Dict[Var, Any]):
        """Try unifying an atom with a fact row; returns extended env or None."""
        new_env = env
        copied = False
        for t, value in zip(atom.terms, row):
            if isinstance(t, Const):
                if t.value != value:
                    return None
            else:
                bound = new_env.get(t, _UNSET)
                if bound is _UNSET:
                    if not copied:
                        new_env = dict(new_env)
                        copied = True
                    new_env[t] = value
                elif bound != value:
                    return None
        return new_env

    def rows_for(element: BodyLiteral, index: int) -> Set[Tuple[Any, ...]]:
        predicate = element.atom.predicate
        if delta is not None and index == delta_position:
            return delta.get(predicate, set())
        return facts.get(predicate, set())

    def walk(index: int, env: Dict[Var, Any]):
        if index == len(rule.body):
            yield substitute_head(env)
            return
        element = rule.body[index]
        if isinstance(element, Builtin):
            left = env[element.left] if isinstance(element.left, Var) else element.left.value
            right = env[element.right] if isinstance(element.right, Var) else element.right.value
            if element.evaluate(left, right):
                yield from walk(index + 1, env)
            return
        if element.negated:
            grounded = []
            for t in element.atom.terms:
                grounded.append(env[t] if isinstance(t, Var) else t.value)
            if tuple(grounded) not in facts.get(element.atom.predicate, set()):
                yield from walk(index + 1, env)
            return
        for row in rows_for(element, index):
            if len(row) != element.atom.arity:
                continue
            new_env = match_atom(element.atom, row, env)
            if new_env is not None:
                yield from walk(index + 1, new_env)

    yield from walk(0, {})


_UNSET = object()


def query(
    program: Program,
    goal: Atom,
    facts: Optional[FactStore] = None,
) -> List[Tuple[Any, ...]]:
    """Evaluate the program and return rows matching the goal atom.

    Variables in the goal select columns; constants filter.  The result
    rows contain the goal's terms in order, with variables substituted.
    """
    model = facts if facts is not None else evaluate(program)
    out: List[Tuple[Any, ...]] = []
    for row in sorted(model.get(goal.predicate, set()), key=repr):
        env: Dict[Var, Any] = {}
        ok = True
        for t, value in zip(goal.terms, row):
            if isinstance(t, Const):
                if t.value != value:
                    ok = False
                    break
            else:
                if t in env and env[t] != value:
                    ok = False
                    break
                env[t] = value
        if ok and len(row) == goal.arity:
            out.append(row)
    return out
