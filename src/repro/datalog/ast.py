"""Datalog abstract syntax (used by the Section 3.5 expressiveness results).

Terms are variables or constants; atoms apply a predicate to terms; rules
have one head atom and a body of (possibly negated) atoms plus comparison
builtins.  A program is a set of rules and base facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union


@dataclass(frozen=True)
class Var:
    """A Datalog variable (by convention capitalized)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant term wrapping a Python scalar."""

    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


Term = Union[Var, Const]


def term(value: Any) -> Term:
    """Coerce a Python value to a term (strings starting uppercase or
    prefixed ``?`` become variables when created via :func:`var` only —
    this helper always builds constants, keeping data unambiguous)."""
    if isinstance(value, (Var, Const)):
        return value
    return Const(value)


def var(name: str) -> Var:
    """Build a variable term."""
    return Var(name)


@dataclass(frozen=True)
class Atom:
    """``predicate(t1, .., tn)``."""

    predicate: str
    terms: Tuple[Term, ...]

    def __init__(self, predicate: str, terms: Iterable[Any]) -> None:
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "terms", tuple(term(t) for t in terms))

    @property
    def arity(self) -> int:
        """Number of terms."""
        return len(self.terms)

    def variables(self) -> Set[Var]:
        """The variables occurring in the atom."""
        return {t for t in self.terms if isinstance(t, Var)}

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class BodyLiteral:
    """An atom or its negation in a rule body."""

    atom: Atom
    negated: bool = False

    def variables(self) -> Set[Var]:
        """Variables of the underlying atom."""
        return self.atom.variables()

    def __repr__(self) -> str:
        return ("not " if self.negated else "") + repr(self.atom)


_COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Builtin:
    """A comparison builtin ``left OP right``; both sides must bind."""

    op: str
    left: Term
    right: Term

    def __init__(self, op: str, left: Any, right: Any) -> None:
        if op not in _COMPARISONS:
            raise ValueError(f"unknown builtin operator {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", term(left))
        object.__setattr__(self, "right", term(right))

    def variables(self) -> Set[Var]:
        """Variables on either side."""
        return {t for t in (self.left, self.right) if isinstance(t, Var)}

    def evaluate(self, left: Any, right: Any) -> bool:
        """Apply the comparison to bound values."""
        try:
            if self.op == "==":
                return left == right
            if self.op == "!=":
                return left != right
            if self.op == "<":
                return left < right
            if self.op == "<=":
                return left <= right
            if self.op == ">":
                return left > right
            if self.op == ">=":
                return left >= right
        except TypeError:
            return False
        raise AssertionError

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


BodyElement = Union[BodyLiteral, Builtin]


@dataclass
class Rule:
    """``head :- body.``  A rule must be *safe*: every head variable and
    every variable in a negated atom or builtin also occurs in a positive
    body atom."""

    head: Atom
    body: List[BodyElement] = field(default_factory=list)

    def positive_variables(self) -> Set[Var]:
        """Variables bound by positive body atoms."""
        out: Set[Var] = set()
        for element in self.body:
            if isinstance(element, BodyLiteral) and not element.negated:
                out |= element.variables()
        return out

    def check_safety(self) -> None:
        """Raise ValueError when the rule is unsafe."""
        bound = self.positive_variables()
        unsafe = self.head.variables() - bound
        if unsafe:
            raise ValueError(f"unsafe head variables {unsafe} in {self}")
        for element in self.body:
            if isinstance(element, Builtin) or (
                isinstance(element, BodyLiteral) and element.negated
            ):
                loose = element.variables() - bound
                if loose:
                    raise ValueError(f"unsafe variables {loose} in {self}")

    def __repr__(self) -> str:
        body = ", ".join(repr(e) for e in self.body)
        return f"{self.head!r} :- {body}."


class Program:
    """A Datalog program: base facts plus rules."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        facts: Optional[Sequence[Atom]] = None,
    ) -> None:
        self.rules: List[Rule] = list(rules) if rules else []
        self.facts: Dict[str, Set[Tuple[Any, ...]]] = {}
        if facts:
            for fact in facts:
                self.add_fact(fact)

    def add_rule(self, rule: Rule) -> None:
        """Add a rule (safety-checked)."""
        rule.check_safety()
        self.rules.append(rule)

    def add_fact(self, atom: Atom) -> None:
        """Add one ground fact."""
        values = []
        for t in atom.terms:
            if isinstance(t, Var):
                raise ValueError(f"facts must be ground: {atom!r}")
            values.append(t.value)
        self.facts.setdefault(atom.predicate, set()).add(tuple(values))

    def fact(self, predicate: str, *values: Any) -> None:
        """Convenience: add ``predicate(values...)`` as a fact."""
        self.add_fact(Atom(predicate, [Const(v) for v in values]))

    def idb_predicates(self) -> Set[str]:
        """Predicates defined by rules (intensional database)."""
        return {rule.head.predicate for rule in self.rules}

    def __repr__(self) -> str:
        return (
            f"Program(rules={len(self.rules)}, "
            f"facts={sum(len(v) for v in self.facts.values())})"
        )
