"""GraphQL → Datalog translation (Theorem 4.6).

Graphs become facts (Fig. 4.14)::

    graph('G').
    node('G', 'G.v1').
    edge('G', 'G.e1', 'G.v1', 'G.v2').   % written twice for undirected
    attribute('G', 'attr1', value1).      % graph-, node- and edge-level

Graph patterns become rules (Fig. 4.15) whose body is the conjunction of
the pattern's constituent elements, with the predicate written as
attribute atoms and comparison builtins.  A pattern matches a graph iff
the corresponding rule derives a matching head fact.

Note: Definition 4.2 requires an *injective* node mapping; the rule adds
pairwise ``!=`` builtins over node variables to enforce it (the paper's
sketch omits this detail).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.bindings import Mapping
from ..core.graph import Graph
from ..core.pattern import GroundPattern
from ..core.predicate import AttrRef, BinOp, Expr, Literal as PredLiteral
from .ast import Atom, BodyLiteral, Builtin, Const, Program, Rule, Var
from .engine import query


class DatalogTranslationError(ValueError):
    """Raised when a pattern uses features outside the translation."""


def graph_to_facts(graph: Graph, program: Optional[Program] = None) -> Program:
    """Translate a graph into facts (Fig. 4.14), qualified by graph name."""
    program = program if program is not None else Program()
    graph_id = graph.name or "G"
    program.fact("graph", graph_id)
    for name, value in graph.tuple.items():
        program.fact("attribute", graph_id, name, value)
    if graph.tuple.tag is not None:
        program.fact("tag", graph_id, graph.tuple.tag)
    for node in graph.nodes():
        node_id = f"{graph_id}.{node.id}"
        program.fact("node", graph_id, node_id)
        for name, value in node.tuple.items():
            program.fact("attribute", node_id, name, value)
        if node.tuple.tag is not None:
            program.fact("tag", node_id, node.tuple.tag)
    for edge in graph.edges():
        edge_id = f"{graph_id}.{edge.id}"
        source = f"{graph_id}.{edge.source}"
        target = f"{graph_id}.{edge.target}"
        program.fact("edge", graph_id, edge_id, source, target)
        if not graph.directed:
            program.fact("edge", graph_id, edge_id, target, source)
        for name, value in edge.tuple.items():
            program.fact("attribute", edge_id, name, value)
        if edge.tuple.tag is not None:
            program.fact("tag", edge_id, edge.tuple.tag)
    return program


def pattern_to_rule(
    pattern: GroundPattern,
    head_predicate: str = "Pattern",
) -> Rule:
    """Translate a ground pattern into a rule (Fig. 4.15).

    The head is ``Pattern(P, V_u1, .., V_uk)``; the body contains
    ``graph``/``node``/``edge`` atoms, attribute atoms for declarative
    constraints, builtins for pushed-down comparisons, and pairwise
    inequalities for injectivity.
    """
    motif = pattern.motif
    graph_var = Var("P")
    node_vars: Dict[str, Var] = {
        name: Var(f"V_{_sanitize(name)}") for name in motif.node_names()
    }
    body: List[Any] = [BodyLiteral(Atom("graph", [graph_var]))]
    fresh_counter = [0]

    for name in motif.node_names():
        body.append(BodyLiteral(Atom("node", [graph_var, node_vars[name]])))
    for i, edge in enumerate(motif.edges()):
        edge_var = Var(f"E_{i + 1}")
        body.append(
            BodyLiteral(
                Atom(
                    "edge",
                    [graph_var, edge_var, node_vars[edge.source],
                     node_vars[edge.target]],
                )
            )
        )
        _append_constraints(body, edge_var, edge.tag, edge.attrs, fresh_counter)
        if edge.predicate is not None:
            _append_predicate(body, edge.predicate, edge_var, fresh_counter,
                              own_name=edge.name)
    for name in motif.node_names():
        motif_node = motif.node(name)
        _append_constraints(
            body, node_vars[name], motif_node.tag, motif_node.attrs, fresh_counter
        )
        if motif_node.predicate is not None:
            _append_predicate(body, motif_node.predicate, node_vars[name],
                              fresh_counter, own_name=name)
        pushed = pattern.decomposed.node_preds.get(name)
        if pushed is not None:
            _append_predicate(body, pushed, node_vars[name], fresh_counter,
                              own_name=name)
    if pattern.decomposed.residual is not None:
        _append_residual(
            body, pattern.decomposed.residual, node_vars, fresh_counter
        )
    # injectivity (Definition 4.2)
    names = motif.node_names()
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            body.append(Builtin("!=", node_vars[names[i]], node_vars[names[j]]))

    head = Atom(head_predicate, [graph_var] + [node_vars[n] for n in names])
    rule = Rule(head, body)
    rule.check_safety()
    return rule


def _sanitize(name: str) -> str:
    return name.replace(".", "_")


def _fresh_var(counter: List[int]) -> Var:
    counter[0] += 1
    return Var(f"T{counter[0]}")


def _append_constraints(
    body: List[Any],
    owner: Var,
    tag: Optional[str],
    attrs: Dict[str, Any],
    counter: List[int],
) -> None:
    if tag is not None:
        body.append(BodyLiteral(Atom("tag", [owner, Const(tag)])))
    for name, value in attrs.items():
        body.append(BodyLiteral(Atom("attribute", [owner, Const(name), Const(value)])))


def _append_predicate(
    body: List[Any],
    predicate: Expr,
    owner: Var,
    counter: List[int],
    own_name: Optional[str] = None,
) -> None:
    """Translate a single-element predicate into attribute atoms + builtins.

    Both reference styles resolve to the element itself: bare ``attr`` and
    qualified ``<own_name>.attr``.
    """
    owners = {own_name: owner} if own_name else {}
    for conjunct in predicate.conjuncts():
        translated = _translate_comparison(conjunct, owners, owner,
                                           counter, body)
        if not translated:
            raise DatalogTranslationError(
                f"predicate {conjunct.to_graphql()} is outside the "
                f"Datalog-translatable fragment"
            )


def _append_residual(
    body: List[Any],
    residual: Expr,
    node_vars: Dict[str, Var],
    counter: List[int],
) -> None:
    owners = {name: v for name, v in node_vars.items()}
    for conjunct in residual.conjuncts():
        translated = _translate_comparison(conjunct, owners, None, counter, body)
        if not translated:
            raise DatalogTranslationError(
                f"residual predicate {conjunct.to_graphql()} is outside the "
                f"Datalog-translatable fragment"
            )


def _translate_comparison(
    expr: Expr,
    owners: Dict[str, Var],
    default_owner: Optional[Var],
    counter: List[int],
    body: List[Any],
) -> bool:
    """Translate ``ref OP ref-or-literal`` conjuncts; returns success."""
    if not isinstance(expr, BinOp) or expr.op not in ("==", "!=", "<", "<=", ">", ">="):
        return False

    def operand_term(operand: Expr) -> Optional[Any]:
        if isinstance(operand, PredLiteral):
            return Const(operand.value)
        if isinstance(operand, AttrRef):
            path = operand.path
            if len(path) == 1:
                if default_owner is None:
                    return None
                owner, attr = default_owner, path[0]
            elif len(path) == 2 and path[0] in owners:
                owner, attr = owners[path[0]], path[1]
            elif len(path) == 2 and default_owner is not None:
                return None
            else:
                return None
            value_var = _fresh_var(counter)
            body.append(BodyLiteral(Atom("attribute", [owner, Const(attr), value_var])))
            return value_var
        return None

    left = operand_term(expr.left)
    right = operand_term(expr.right)
    if left is None or right is None:
        return False
    op = "==" if expr.op == "==" else expr.op
    body.append(Builtin(op, left, right))
    return True


def match_with_datalog(
    pattern: GroundPattern,
    graph: Graph,
) -> List[Mapping]:
    """End-to-end: translate pattern and graph, evaluate, return mappings.

    Node ids in the returned mappings are unqualified (the ``'G.'`` prefix
    of the fact encoding is stripped), so results compare directly with
    the native matcher's output.
    """
    program = graph_to_facts(graph)
    rule = pattern_to_rule(pattern)
    program.add_rule(rule)
    graph_id = graph.name or "G"
    prefix = f"{graph_id}."
    names = pattern.motif.node_names()
    goal = Atom(rule.head.predicate, list(rule.head.terms))
    rows = query(program, goal)
    mappings = []
    for row in rows:
        if row[0] != graph_id:
            continue
        assignment = {}
        for name, qualified in zip(names, row[1:]):
            node_id = qualified[len(prefix):] if qualified.startswith(prefix) else qualified
            assignment[name] = node_id
        mappings.append(Mapping(assignment))
    return mappings
