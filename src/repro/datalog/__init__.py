"""Datalog substrate: engine and GraphQL translation (Section 3.5)."""

from .ast import Atom, BodyLiteral, Builtin, Const, Program, Rule, Var, term, var
from .engine import StratificationError, evaluate, query, stratify
from .translate import (
    DatalogTranslationError,
    graph_to_facts,
    match_with_datalog,
    pattern_to_rule,
)

__all__ = [
    "Atom",
    "BodyLiteral",
    "Builtin",
    "Const",
    "Program",
    "Rule",
    "Var",
    "term",
    "var",
    "StratificationError",
    "evaluate",
    "query",
    "stratify",
    "DatalogTranslationError",
    "graph_to_facts",
    "match_with_datalog",
    "pattern_to_rule",
]
