"""Static analysis for GraphQL queries and Datalog programs.

The analyzer inspects the *syntactic* AST (before compilation) and
reports structured :class:`Diagnostic` findings — scope errors, schema
mismatches, degenerate predicates, plan hazards — so bad queries are
rejected before they reach a worker.  See ``docs/language.md`` for the
full diagnostic catalog.
"""

from .analyzer import (
    CODES,
    analyze_pattern,
    analyze_pattern_text,
    analyze_program,
    analyze_text,
)
from .datalog import analyze_datalog, analyze_rule
from .diagnostics import (
    Diagnostic,
    Severity,
    Span,
    errors_only,
    has_errors,
    promote_warnings,
    sort_diagnostics,
    to_wire,
)
from .schema import (
    CollectionSchema,
    infer_schema,
    schema_for_document,
    type_bucket,
)

__all__ = [
    "CODES",
    "CollectionSchema",
    "Diagnostic",
    "Severity",
    "Span",
    "analyze_datalog",
    "analyze_pattern",
    "analyze_pattern_text",
    "analyze_program",
    "analyze_rule",
    "analyze_text",
    "errors_only",
    "has_errors",
    "infer_schema",
    "promote_warnings",
    "schema_for_document",
    "sort_diagnostics",
    "to_wire",
    "type_bucket",
]
