"""Structured diagnostics: what the static analyzer reports.

A :class:`Diagnostic` is one finding — a stable ``code`` (``GQL001`` …,
``DLG001`` …), a :class:`Severity`, a human message and an optional
source :class:`Span`.  Diagnostics are plain values: the analyzer
produces them, and every consumer (compiler, ``repro-gql check``, the
service's admission validation, EXPLAIN) decides independently which
severities it acts on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional, Tuple


class Severity(Enum):
    """How actionable a finding is.

    ``ERROR`` — the query is wrong: it cannot produce the intended
    result (unbound variable, unsafe Datalog rule).  The compiler
    refuses these by default and the service rejects them at admission.

    ``WARNING`` — the query is legal under semistructured semantics but
    almost surely a bug (unknown attribute, always-false predicate,
    cartesian product).  ``repro-gql check --strict`` promotes these.

    ``HINT`` — a missed opportunity, not a defect (unused binding, a
    predicate that could ride the attribute index).
    """

    ERROR = "error"
    WARNING = "warning"
    HINT = "hint"

    @property
    def rank(self) -> int:
        """ERROR > WARNING > HINT, for sorting and thresholds."""
        return {"error": 3, "warning": 2, "hint": 1}[self.value]


@dataclass(frozen=True)
class Span:
    """A 1-based source position; ``(0, 0)`` means "no position"."""

    line: int = 0
    column: int = 0

    @property
    def known(self) -> bool:
        return self.line > 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}" if self.known else "-"


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None

    def to_dict(self) -> Dict[str, Any]:
        """The JSON/wire form (used in outcome ``detail`` payloads)."""
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.span is not None and self.span.known:
            payload["line"] = self.span.line
            payload["column"] = self.span.column
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Diagnostic":
        """Rebuild a diagnostic from :meth:`to_dict` output."""
        line = int(data.get("line", 0))
        column = int(data.get("column", 0))
        return cls(
            code=str(data.get("code", "")),
            severity=Severity(data.get("severity", "error")),
            message=str(data.get("message", "")),
            span=Span(line, column) if line else None,
        )

    def render(self, source: str = "<query>") -> str:
        """One ``file:line:col: severity CODE message`` line."""
        where = (f"{source}:{self.span.line}:{self.span.column}"
                 if self.span is not None and self.span.known else source)
        return f"{where}: {self.severity.value} {self.code} {self.message}"


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """Whether any finding is error-severity."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def errors_only(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """The error-severity findings, in order."""
    return [d for d in diagnostics if d.severity is Severity.ERROR]


def promote_warnings(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """``--strict`` mode: every WARNING becomes an ERROR (hints stay)."""
    return [
        Diagnostic(d.code, Severity.ERROR, d.message, d.span)
        if d.severity is Severity.WARNING else d
        for d in diagnostics
    ]


def sort_diagnostics(
    diagnostics: Iterable[Diagnostic],
) -> List[Diagnostic]:
    """Source order (unknown spans last), severity as tiebreaker."""
    def key(d: Diagnostic) -> Tuple[int, int, int, str]:
        span = d.span or Span()
        line = span.line if span.known else 10 ** 9
        return (line, span.column, -d.severity.rank, d.code)

    return sorted(diagnostics, key=key)


def to_wire(diagnostics: Iterable[Diagnostic]) -> List[Dict[str, Any]]:
    """The list form attached to outcomes and JSON documents."""
    return [d.to_dict() for d in diagnostics]
