"""The query semantic analyzer: static checks over the GraphQL AST.

Because FLWR expressions over graph patterns compile to an algebra, a
whole class of failures is decidable before any worker runs the query.
This module walks the syntactic AST (:mod:`repro.lang.ast`) and reports
:class:`~repro.analysis.diagnostics.Diagnostic` findings:

Scope checks
    ``GQL001`` (error) — a dotted reference whose root is not bound by
    any pattern element, member alias, export, FLWR binding or earlier
    statement; also template parameters no environment name satisfies
    (a guaranteed runtime failure) and anonymous for-clause patterns.
    ``GQL002`` (warning) — a binding shadowing an earlier one that was
    already used.  ``GQL003`` (hint) — a binding shadowed before it was
    ever used (dead).

Schema-aware checks (optional :class:`CollectionSchema`)
    ``GQL004`` (warning) — an attribute name no graph in the collection
    carries.  ``GQL005`` (warning) — a tuple tag or ``label`` value the
    collection never uses.  ``GQL006`` (warning) — a comparison whose
    two sides cannot have the same type (string vs number).

Predicate analysis
    ``GQL007`` (warning) — a constant conjunct that folds to false (the
    whole conjunction can never hold).  ``GQL008`` (hint) — a constant
    conjunct that folds to true (redundant).  ``GQL011`` (warning) — a
    set of range conjuncts over one attribute with an empty solution
    (``x > 5 & x < 3``).

Plan lints
    ``GQL009`` (warning) — a pattern whose elements form two or more
    disconnected components with no cross predicate: the match is a
    cartesian product.  ``GQL010`` (hint) — a node-level disjunctive
    filter the index condition extractor cannot read, forcing a scan
    where pattern disjunction blocks would ride the attribute index.

Severity semantics follow the data model: missing attributes make
comparisons *false*, not errors, so "unknown attribute" is a warning
(legal, surely a bug) while "unbound variable" — a name that can never
resolve through any scope — is an error.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..core.predicate import (
    COMPARISON_OPS,
    MISSING,
    AttrRef,
    BinOp,
    Expr,
    Literal,
    Not,
    Scope,
)
from ..lang.ast import (
    AssignAst,
    BlockAst,
    EdgeDeclAst,
    ExportAst,
    FLWRAst,
    GraphDeclAst,
    GraphMemberAst,
    NestedBlocksAst,
    NodeDeclAst,
    ProgramAst,
    TupleAst,
    UnifyAst,
)
from ..lang.errors import GraphQLSyntaxError
from ..lang.parser import parse_graph_decl, parse_program
from .diagnostics import Diagnostic, Severity, Span, sort_diagnostics
from .schema import CollectionSchema, type_bucket

#: Every code the analyzer can emit, with its fixed severity and a
#: short title (the docs catalog and the golden tests read this).
CODES: Dict[str, Tuple[Severity, str]] = {
    "GQL000": (Severity.ERROR, "syntax error"),
    "GQL001": (Severity.ERROR, "unbound variable reference"),
    "GQL002": (Severity.WARNING, "binding shadows an earlier one"),
    "GQL003": (Severity.HINT, "dead binding (shadowed before use)"),
    "GQL004": (Severity.WARNING, "unknown attribute for this collection"),
    "GQL005": (Severity.WARNING, "unknown tag or label for this collection"),
    "GQL006": (Severity.WARNING, "type-confused comparison"),
    "GQL007": (Severity.WARNING, "conjunct is always false"),
    "GQL008": (Severity.HINT, "conjunct is always true"),
    "GQL009": (Severity.WARNING, "disconnected pattern (cartesian product)"),
    "GQL010": (Severity.HINT, "disjunctive filter defeats the attribute index"),
    "GQL011": (Severity.WARNING, "empty value range"),
    "DLG001": (Severity.ERROR, "unsafe head variable"),
    "DLG002": (Severity.ERROR, "unsafe negated/builtin variable"),
    "DLG003": (Severity.ERROR, "program is not stratifiable"),
}


def _span_of(node: Any) -> Optional[Span]:
    """The span of an AST node or expression, if it carries one."""
    if node is None:
        return None
    pos = getattr(node, "pos", None)
    if pos:
        return Span(pos[0], pos[1])
    line = getattr(node, "line", 0)
    if line:
        return Span(line, getattr(node, "column", 0))
    return None


def _walk_exprs(expr: Optional[Expr]) -> Iterator[Expr]:
    """Every sub-expression of *expr*, pre-order."""
    if expr is None:
        return
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, BinOp):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, Not):
            stack.append(node.operand)


def _attr_refs(expr: Optional[Expr]) -> Iterator[AttrRef]:
    for node in _walk_exprs(expr):
        if isinstance(node, AttrRef):
            yield node


def _is_constant(expr: Expr) -> bool:
    """Whether *expr* references no attributes (foldable)."""
    return not any(True for _ in _attr_refs(expr))


_EMPTY_SCOPE = Scope()


def _fold(expr: Expr) -> Any:
    """Evaluate a constant expression; MISSING on any failure."""
    try:
        return expr.evaluate(_EMPTY_SCOPE)
    except Exception:  # pragma: no cover - defensive, folding never raises
        return MISSING


class _DeclNames:
    """Every name one graph declaration binds, across all its blocks."""

    def __init__(self) -> None:
        self.nodes: Set[str] = set()
        self.edges: Set[str] = set()
        self.members: Set[str] = set()
        self.exports: Set[str] = set()

    @property
    def all(self) -> Set[str]:
        return self.nodes | self.edges | self.members | self.exports


def _iter_blocks(decl: GraphDeclAst) -> Iterator[BlockAst]:
    """Every block of a declaration, nested disjunctions included."""
    stack: List[BlockAst] = list(decl.blocks)
    while stack:
        block = stack.pop()
        yield block
        for member in block.members:
            if isinstance(member, NestedBlocksAst):
                stack.extend(member.blocks)


def _decl_names(decl: GraphDeclAst) -> _DeclNames:
    names = _DeclNames()
    for block in _iter_blocks(decl):
        for member in block.members:
            if isinstance(member, list) and member:
                if isinstance(member[0], NodeDeclAst):
                    for node in member:
                        if node.name:
                            names.nodes.add(node.name)
                            names.nodes.add(node.name.split(".")[0])
                elif isinstance(member[0], EdgeDeclAst):
                    for edge in member:
                        if edge.name:
                            names.edges.add(edge.name)
                        # undeclared simple end points become implicit
                        # free nodes in the motif namespace
                        for end in (edge.source, edge.target):
                            if end and "." not in end:
                                names.nodes.add(end)
            elif isinstance(member, GraphMemberAst):
                for ref, alias in member.refs:
                    names.members.add(alias or ref)
            elif isinstance(member, ExportAst):
                names.exports.add(member.alias)
    return names


class Analyzer:
    """Accumulates diagnostics over one program or pattern."""

    def __init__(self, schema: Optional[CollectionSchema] = None) -> None:
        self.schema = schema if schema is not None and schema.graphs else None
        self.diagnostics: List[Diagnostic] = []

    # -- emission -------------------------------------------------------------

    def emit(self, code: str, message: str, node: Any = None) -> None:
        severity, _title = CODES[code]
        self.diagnostics.append(
            Diagnostic(code, severity, message, _span_of(node)))

    # -- programs -------------------------------------------------------------

    def program(self, ast: ProgramAst) -> List[Diagnostic]:
        """Analyze a whole source file."""
        # pass 1: collect pattern names — motif references may point
        # forward, the grammar is only consulted at ground time
        pattern_names: Set[str] = {
            statement.name
            for statement in ast.statements
            if isinstance(statement, GraphDeclAst) and statement.name
        }
        #: name -> (kind, definition node, used?)
        defs: Dict[str, List[Any]] = {}

        def define(name: str, kind: str, node: Any) -> None:
            previous = defs.get(name)
            if previous is not None:
                if previous[2]:
                    self.emit(
                        "GQL002",
                        f"{kind} {name!r} shadows the {previous[0]} "
                        f"defined earlier",
                        node,
                    )
                else:
                    self.emit(
                        "GQL003",
                        f"{previous[0]} {name!r} is never used before "
                        f"being shadowed",
                        previous[1],
                    )
            defs[name] = [kind, node, False]

        def use(name: str) -> None:
            if name in defs:
                defs[name][2] = True

        pattern_decls: Dict[str, GraphDeclAst] = {
            statement.name: statement
            for statement in ast.statements
            if isinstance(statement, GraphDeclAst) and statement.name
        }
        env: Set[str] = set()
        for statement in ast.statements:
            if isinstance(statement, GraphDeclAst):
                self.pattern(statement, env=env | pattern_names,
                             on_use=use)
                if statement.name:
                    define(statement.name, "pattern", statement)
                    env.add(statement.name)
            elif isinstance(statement, AssignAst):
                define(statement.name, "assignment", statement)
                env.add(statement.name)
            elif isinstance(statement, FLWRAst):
                self._flwr(statement, env, pattern_names, pattern_decls, use)
                if statement.let_var:
                    define(statement.let_var, "let variable", statement)
                    env.add(statement.let_var)
        return self.result()

    def _flwr(self, ast: FLWRAst, env: Set[str], pattern_names: Set[str],
              pattern_decls: Dict[str, GraphDeclAst],
              use: Callable[[str], None]) -> None:
        binding: Optional[str] = None
        pattern_decl: Optional[GraphDeclAst] = None
        pattern_mode = False
        if ast.pattern is not None:
            pattern_decl = ast.pattern
            pattern_mode = True
            if not ast.pattern.name:
                self.emit("GQL001",
                          "for-clause patterns must be named (the name is "
                          "the binding downstream clauses reference)",
                          ast)
            else:
                binding = ast.pattern.name
            self.pattern(ast.pattern, env=env | pattern_names, on_use=use)
        else:
            binding = ast.binding_name
            if binding in env or binding in pattern_names:
                pattern_mode = True
                pattern_decl = pattern_decls.get(binding or "")
                use(binding)

        bound = set(env) | ({binding} if binding else set())
        element_names: Set[str] = set()
        if pattern_mode and pattern_decl is not None:
            element_names = _decl_names(pattern_decl).all
        # in pattern mode the where clause resolves through the matched
        # graph: pattern elements are visible.  In plain-variable mode
        # the binding is a whole data graph — roots are data node ids
        # the analyzer cannot know, so scope checking is skipped.
        if ast.where is not None and pattern_mode:
            self._expr_scope(ast.where, bound | element_names, use)
            self._predicates(ast.where, context="flwr")
        # the template's free roots are its parameters; each must be
        # satisfiable by the environment or the for-binding, otherwise
        # instantiation fails at run time
        self._template(ast.template, bound | element_names, use)

    def _template(self, decl: GraphDeclAst, avail: Set[str],
                  use: Callable[[str], None]) -> None:
        if len(decl.blocks) != 1:
            return  # the compiler rejects disjunction templates
        block = decl.blocks[0]
        local_names: Set[str] = set()
        free: List[Tuple[str, Any]] = []  # (root, node to blame)

        def note_expr(expr: Optional[Expr]) -> None:
            for ref in _attr_refs(expr):
                free.append((ref.path[0], ref))

        if decl.tuple is not None:
            for _name, expr in decl.tuple.entries:
                note_expr(expr)
        for member in block.members:
            if isinstance(member, GraphMemberAst):
                for ref, _alias in member.refs:
                    free.append((ref, member))
            elif isinstance(member, list) and member \
                    and isinstance(member[0], NodeDeclAst):
                for node in member:
                    if node.name and "." in node.name and node.tuple is None:
                        free.append((node.name.split(".")[0], node))
                        local_names.add(node.name)
                    elif node.name:
                        for _n, expr in (node.tuple.entries
                                         if node.tuple else []):
                            note_expr(expr)
                        local_names.add(node.name)
            elif isinstance(member, list) and member \
                    and isinstance(member[0], EdgeDeclAst):
                for edge in member:
                    for _n, expr in (edge.tuple.entries
                                     if edge.tuple else []):
                        note_expr(expr)
            elif isinstance(member, UnifyAst):
                note_expr(member.where)
                for path in member.paths:
                    root = path.split(".")[0]
                    if path not in local_names and root not in local_names:
                        free.append((root, member))
        for root, node in free:
            if root in local_names:
                continue
            if root in avail:
                use(root)
                continue
            self.emit("GQL001",
                      f"template parameter {root!r} is not bound by the "
                      f"for clause or any earlier statement",
                      node)

    # -- patterns -------------------------------------------------------------

    def pattern(self, decl: GraphDeclAst,
                env: Iterable[str] = (),
                on_use: Optional[Callable[[str], None]] = None,
                standalone: bool = False) -> List[Diagnostic]:
        """Analyze one graph pattern declaration.

        *env* holds externally bound names (earlier statements, the
        grammar); *standalone* means the pattern is compiled on its own
        (the service path), where member references cannot resolve
        against anything but the pattern itself.
        """
        use = on_use if on_use is not None else (lambda name: None)
        env_names = set(env)
        names = _decl_names(decl)
        bound = names.all | env_names
        if decl.name:
            bound.add(decl.name)

        # member references must name a known pattern (or, standalone,
        # the pattern itself for recursion)
        for block in _iter_blocks(decl):
            for member in block.members:
                if isinstance(member, GraphMemberAst):
                    for ref, _alias in member.refs:
                        if ref == decl.name or ref in env_names:
                            use(ref)
                        elif standalone:
                            # program-mode refs may be supplied by a
                            # grammar at ground time; a standalone
                            # pattern (the service path) never gets one
                            self.emit(
                                "GQL001",
                                f"graph member {ref!r} references no "
                                f"known pattern or binding",
                                member)
                elif isinstance(member, UnifyAst):
                    for path in member.paths:
                        root = path.split(".")[0]
                        if root not in bound:
                            self.emit(
                                "GQL001",
                                f"unify path {path!r} starts at unbound "
                                f"name {root!r}",
                                member)
                elif isinstance(member, ExportAst):
                    root = member.path.split(".")[0]
                    if root not in bound:
                        self.emit(
                            "GQL001",
                            f"export path {member.path!r} starts at "
                            f"unbound name {root!r}",
                            member)

        # graph-level where: resolved against the matched graph —
        # pattern elements, members, exports and the pattern name
        if decl.where is not None:
            self._expr_scope(decl.where, bound, use)
            self._predicates(decl.where, context="graph")
            self._schema_predicates(decl.where, names, context="graph")

        # node/edge-level checks
        for block in _iter_blocks(decl):
            for member in block.members:
                if isinstance(member, list) and member \
                        and isinstance(member[0], NodeDeclAst):
                    for node in member:
                        self._element(node, names, kind="node")
                elif isinstance(member, list) and member \
                        and isinstance(member[0], EdgeDeclAst):
                    for edge in member:
                        self._element(edge, names, kind="edge")

        self._connectivity(decl, names)
        return self.result()

    def _element(self, decl: Any, names: _DeclNames, kind: str) -> None:
        """Checks local to one node/edge declarator."""
        self._tuple_schema(decl.tuple, kind)
        if decl.where is None:
            return
        own = {decl.name, (decl.name or "").split(".")[0]} - {None, ""}
        # element-level predicates resolve bare names against the
        # element's own tuple; a dotted root naming anything else can
        # never resolve (the scope holds only the element itself)
        for ref in _attr_refs(decl.where):
            if len(ref.path) > 1 and ref.path[0] not in own:
                self.emit(
                    "GQL001",
                    f"{kind}-level predicate references {ref.path[0]!r}, "
                    f"but only the {kind}'s own attributes are in scope "
                    f"here (move the conjunct to the graph-level where)",
                    ref)
        self._predicates(decl.where, context=kind)
        self._schema_element_where(decl.where, kind)
        if kind == "node":
            self._index_hint(decl)

    # -- scope ----------------------------------------------------------------

    def _expr_scope(self, expr: Expr, bound: Set[str],
                    use: Callable[[str], None]) -> None:
        """GQL001 for dotted roots that no binding can resolve.

        Bare single-segment roots fall back to graph/element attribute
        lookups at run time, so only dotted paths are errors.
        """
        for ref in _attr_refs(expr):
            root = ref.path[0]
            if root in bound:
                use(root)
            elif len(ref.path) > 1:
                self.emit(
                    "GQL001",
                    f"unbound variable {root!r} in {'.'.join(ref.path)!r}",
                    ref)

    # -- predicates -----------------------------------------------------------

    def _predicates(self, where: Expr, context: str) -> None:
        """Constant folding (GQL007/GQL008) and range analysis (GQL011)."""
        conjuncts = where.conjuncts()
        for conjunct in conjuncts:
            if _is_constant(conjunct):
                value = _fold(conjunct)
                truth = bool(value) and value is not MISSING
                if truth:
                    self.emit(
                        "GQL008",
                        f"constant conjunct {conjunct.to_graphql()} is "
                        f"always true (redundant)",
                        conjunct)
                else:
                    self.emit(
                        "GQL007",
                        f"constant conjunct {conjunct.to_graphql()} is "
                        f"always false — the {context} predicate can "
                        f"never hold",
                        conjunct)
        self._ranges(conjuncts, where)

    def _ranges(self, conjuncts: List[Expr], where: Expr) -> None:
        """GQL011: per-attribute interval analysis over one conjunction."""
        bounds: Dict[Tuple[str, ...], Dict[str, Any]] = {}
        for conjunct in conjuncts:
            shaped = _attr_vs_literal(conjunct)
            if shaped is None:
                continue
            path, op, value = shaped
            state = bounds.setdefault(
                path, {"lo": None, "hi": None, "eq": set(), "expr": conjunct})
            if op == "==":
                state["eq"].add(value)
            elif isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                if op in (">", ">="):
                    current = state["lo"]
                    candidate = (value, op == ">=")
                    if current is None or candidate[0] > current[0] or (
                            candidate[0] == current[0] and not candidate[1]):
                        state["lo"] = candidate
                elif op in ("<", "<="):
                    current = state["hi"]
                    candidate = (value, op == "<=")
                    if current is None or candidate[0] < current[0] or (
                            candidate[0] == current[0] and not candidate[1]):
                        state["hi"] = candidate
        for path, state in bounds.items():
            name = ".".join(path)
            empty = None
            if len(state["eq"]) > 1:
                empty = (f"{name} is pinned to "
                         f"{len(state['eq'])} different constants")
            lo, hi = state["lo"], state["hi"]
            if empty is None and lo is not None and hi is not None:
                lo_v, lo_inc = lo
                hi_v, hi_inc = hi
                if lo_v > hi_v or (lo_v == hi_v and not (lo_inc and hi_inc)):
                    empty = (f"{name} is bounded to the empty range "
                             f"({'>=' if lo_inc else '>'}{lo_v!r} and "
                             f"{'<=' if hi_inc else '<'}{hi_v!r})")
            if empty is None and len(state["eq"]) == 1 and (
                    lo is not None or hi is not None):
                (pin,) = state["eq"]
                if isinstance(pin, (int, float)) \
                        and not isinstance(pin, bool):
                    if lo is not None and (
                            pin < lo[0] or (pin == lo[0] and not lo[1])):
                        empty = (f"{name} == {pin!r} contradicts its "
                                 f"lower bound")
                    if hi is not None and (
                            pin > hi[0] or (pin == hi[0] and not hi[1])):
                        empty = (f"{name} == {pin!r} contradicts its "
                                 f"upper bound")
            if empty is not None:
                self.emit("GQL011",
                          f"empty value range: {empty} — no graph can "
                          f"satisfy this conjunction",
                          state["expr"])

    # -- schema checks --------------------------------------------------------

    def _tuple_schema(self, tuple_ast: Optional[TupleAst], kind: str) -> None:
        if tuple_ast is None or self.schema is None:
            return
        tags = (self.schema.node_tags if kind == "node"
                else self.schema.edge_tags)
        attrs = (self.schema.node_attrs if kind == "node"
                 else self.schema.edge_attrs)
        if tuple_ast.tag is not None and tags and tuple_ast.tag not in tags:
            self.emit("GQL005",
                      f"no {kind} in the collection has tag "
                      f"{tuple_ast.tag!r} (known: {_sample(tags)})",
                      tuple_ast)
        for name, expr in tuple_ast.entries:
            if attrs and name not in attrs:
                self.emit("GQL004",
                          f"no {kind} in the collection has attribute "
                          f"{name!r} (known: {_sample(attrs)})",
                          expr if expr.pos else tuple_ast)
            elif name == "label" and isinstance(expr, Literal) \
                    and isinstance(expr.value, str) and self.schema.labels \
                    and expr.value not in self.schema.labels:
                self.emit("GQL005",
                          f"label {expr.value!r} never occurs in the "
                          f"collection",
                          expr)

    def _schema_element_where(self, where: Expr, kind: str) -> None:
        """GQL004/005/006 for element-local predicates."""
        if self.schema is None:
            return
        attrs = (self.schema.node_attrs if kind == "node"
                 else self.schema.edge_attrs)
        for conjunct in where.conjuncts():
            shaped = _attr_vs_literal(conjunct)
            if shaped is None:
                continue
            path, op, value = shaped
            attr = path[-1]
            if len(path) > 1 and path[0] not in attrs and attr == path[0]:
                continue  # foreign root, already a GQL001
            self._check_attr(attr, op, value, attrs, conjunct)

    def _schema_predicates(self, where: Expr, names: _DeclNames,
                           context: str) -> None:
        """GQL004/005/006 for graph-level predicates with resolvable
        element roots (``v1.year > 2000`` => ``year`` on nodes)."""
        if self.schema is None:
            return
        for conjunct in where.conjuncts():
            shaped = _attr_vs_literal(conjunct)
            if shaped is None:
                continue
            path, op, value = shaped
            attr = path[-1]
            if len(path) < 2:
                continue  # bare graph-attribute fallback: unknowable
            root = path[0]
            if root in names.nodes or (len(path) > 2
                                       and path[-2] in names.nodes):
                self._check_attr(attr, op, value,
                                 self.schema.node_attrs, conjunct)
            elif root in names.edges:
                self._check_attr(attr, op, value,
                                 self.schema.edge_attrs, conjunct)
            elif len(path) > 2:
                # P.v1.name / X.v.name — the middle segment is a node
                # of a referenced pattern; node attributes apply
                self._check_attr(attr, op, value,
                                 self.schema.node_attrs, conjunct)

    def _check_attr(self, attr: str, op: str, value: Any,
                    attrs: Dict[str, Set[str]], conjunct: Expr) -> None:
        assert self.schema is not None
        if attrs and attr not in attrs:
            self.emit("GQL004",
                      f"no element in the collection has attribute "
                      f"{attr!r} (known: {_sample(attrs)}) — the "
                      f"comparison is always false",
                      conjunct)
            return
        if attr == "label" and op == "==" and isinstance(value, str) \
                and self.schema.labels and value not in self.schema.labels:
            self.emit("GQL005",
                      f"label {value!r} never occurs in the collection",
                      conjunct)
            return
        buckets = attrs.get(attr, set())
        if buckets and type_bucket(value) not in buckets \
                and type_bucket(value) != "other":
            self.emit("GQL006",
                      f"attribute {attr!r} holds "
                      f"{_render_buckets(buckets)} values but is compared "
                      f"{op} {value!r} ({type_bucket(value)}) — the "
                      f"comparison is always false",
                      conjunct)

    # -- plan lints -----------------------------------------------------------

    def _connectivity(self, decl: GraphDeclAst, names: _DeclNames) -> None:
        """GQL009: union-find over pattern elements.

        Components are joined by edges, unifications and graph-level
        conjuncts referencing elements of two components (join
        predicates).  Two or more surviving components mean the match
        enumerates their cross product.
        """
        parents: Dict[str, str] = {}

        def find(name: str) -> str:
            parents.setdefault(name, name)
            while parents[name] != name:
                parents[name] = parents[parents[name]]
                name = parents[name]
            return name

        def union(a: str, b: str) -> None:
            parents[find(a)] = find(b)

        elements = set(names.nodes) | set(names.members)
        if len(elements) < 2:
            return
        for name in elements:
            find(name)

        def root_of(path: str) -> str:
            return path.split(".")[0]

        for block in _iter_blocks(decl):
            for member in block.members:
                if isinstance(member, list) and member \
                        and isinstance(member[0], EdgeDeclAst):
                    for edge in member:
                        src, dst = root_of(edge.source), root_of(edge.target)
                        if src in elements and dst in elements:
                            union(src, dst)
                        if edge.name:
                            # the edge itself joins its end points'
                            # component for predicate purposes
                            parents.setdefault(edge.name, find(src)
                                               if src in elements
                                               else edge.name)
                elif isinstance(member, UnifyAst):
                    anchors = [root_of(p) for p in member.paths
                               if root_of(p) in elements]
                    for other in anchors[1:]:
                        union(anchors[0], other)
        if decl.where is not None:
            for conjunct in decl.where.conjuncts():
                touched = {root for root in conjunct.root_names()
                           if root in elements}
                touched |= {p[1] for p in
                            (ref.path for ref in _attr_refs(conjunct))
                            if len(p) > 1 and p[0] == decl.name
                            and p[1] in elements}
                touched = list(touched)
                for other in touched[1:]:
                    union(touched[0], other)
        components: Dict[str, List[str]] = {}
        for name in sorted(elements):
            components.setdefault(find(name), []).append(name)
        if len(components) > 1:
            rendered = "; ".join(
                "{" + ", ".join(group) + "}"
                for group in sorted(components.values()))
            self.emit("GQL009",
                      f"pattern falls into {len(components)} disconnected "
                      f"component(s) {rendered} — matching enumerates "
                      f"their cartesian product; connect them with an "
                      f"edge, a unify, or a cross predicate",
                      decl)

    def _index_hint(self, node: NodeDeclAst) -> None:
        """GQL010: a disjunctive filter the attribute index cannot serve.

        The planner pushes conjunctive ``attr OP literal`` predicates
        into the attribute index, but an ``|`` chain is opaque to the
        condition extractor, so the node falls back to a full scan.
        When every alternative is itself indexable, rewriting the
        alternation as pattern disjunction blocks (Figs. 4.5/4.6) lets
        each branch ride the index.
        """
        if node.where is None:
            return
        for conjunct in node.where.conjuncts():
            alternatives = _disjuncts(conjunct)
            if len(alternatives) < 2:
                continue
            if all(_attr_vs_literal(alt) is not None
                   for alt in alternatives):
                attrs = sorted({
                    ".".join(_attr_vs_literal(alt)[0])  # type: ignore[index]
                    for alt in alternatives})
                self.emit(
                    "GQL010",
                    f"disjunctive filter over {', '.join(attrs)} forces a "
                    f"scan (the index extractor only reads conjunctive "
                    f"conditions); rewriting the alternatives as pattern "
                    f"disjunction blocks lets each branch use the "
                    f"attribute index",
                    conjunct)

    # -- results --------------------------------------------------------------

    def result(self) -> List[Diagnostic]:
        """The accumulated findings, sorted and de-duplicated."""
        seen: Set[Tuple[str, str, Optional[Span]]] = set()
        unique: List[Diagnostic] = []
        for diag in self.diagnostics:
            key = (diag.code, diag.message, diag.span)
            if key not in seen:
                seen.add(key)
                unique.append(diag)
        return sort_diagnostics(unique)


def _disjuncts(expr: Expr) -> List[Expr]:
    """Split a top-level ``|`` chain (the dual of ``conjuncts``)."""
    if isinstance(expr, BinOp) and expr.op == "|":
        return _disjuncts(expr.left) + _disjuncts(expr.right)
    return [expr]


def _attr_vs_literal(
    conjunct: Expr,
) -> Optional[Tuple[Tuple[str, ...], str, Any]]:
    """Decompose ``attr OP literal`` (either side); None otherwise."""
    if not isinstance(conjunct, BinOp) or conjunct.op not in COMPARISON_OPS:
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, AttrRef) and isinstance(right, Literal):
        return left.path, conjunct.op, right.value
    if isinstance(left, Literal) and isinstance(right, AttrRef):
        flipped = {">": "<", "<": ">", ">=": "<=", "<=": ">="}
        return (right.path,
                flipped.get(conjunct.op, conjunct.op),
                left.value)
    return None


def _sample(names: Iterable[str], cap: int = 6) -> str:
    ordered = sorted(names)
    listed = ", ".join(ordered[:cap])
    return listed + (", ..." if len(ordered) > cap else "")


def _render_buckets(buckets: Set[str]) -> str:
    return "/".join(sorted(buckets))


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def analyze_program(
    ast: ProgramAst,
    schema: Optional[CollectionSchema] = None,
) -> List[Diagnostic]:
    """Analyze a parsed program."""
    return Analyzer(schema).program(ast)


def analyze_pattern(
    decl: GraphDeclAst,
    schema: Optional[CollectionSchema] = None,
    env: Iterable[str] = (),
    standalone: bool = True,
) -> List[Diagnostic]:
    """Analyze a single parsed pattern declaration."""
    return Analyzer(schema).pattern(decl, env=env, standalone=standalone)


def analyze_text(
    text: str,
    schema: Optional[CollectionSchema] = None,
) -> List[Diagnostic]:
    """Analyze program source text (syntax errors become GQL000)."""
    try:
        ast = parse_program(text)
    except GraphQLSyntaxError as exc:
        return [_syntax_diagnostic(exc)]
    return analyze_program(ast, schema)


def analyze_pattern_text(
    text: str,
    schema: Optional[CollectionSchema] = None,
) -> List[Diagnostic]:
    """Analyze one pattern declaration's source text (the service's
    admission-time validation: mirrors ``compile_pattern_text``)."""
    try:
        decl = parse_graph_decl(text)
    except GraphQLSyntaxError as exc:
        return [_syntax_diagnostic(exc)]
    return analyze_pattern(decl, schema, standalone=True)


def _syntax_diagnostic(exc: GraphQLSyntaxError) -> Diagnostic:
    span = Span(exc.line, exc.column) if exc.line else None
    return Diagnostic("GQL000", Severity.ERROR, str(exc), span)
