"""Static checks for Datalog programs (DLG001–DLG003).

``Rule.check_safety`` raises on the first unsafe rule and
``stratify`` raises on the first negation cycle; both lose everything
after the first failure.  This module reports *all* findings as
:class:`~repro.analysis.diagnostics.Diagnostic` values instead:

``DLG001`` (error)
    A head variable bound by no positive body atom — the rule would
    derive infinitely many facts.

``DLG002`` (error)
    A variable inside a negated atom or comparison builtin bound by no
    positive body atom — negation-as-failure and builtins only test
    already-bound values.

``DLG003`` (error)
    The program has recursion through negation (no stratification
    exists), so its semantics are undefined under the stratified model
    the engine implements.

Datalog programs are built programmatically (there is no text parser),
so these diagnostics carry no source span.
"""

from __future__ import annotations

from typing import Iterable, List

from ..datalog.ast import BodyLiteral, Builtin, Program, Rule, Var
from ..datalog.engine import StratificationError, stratify
from .diagnostics import Diagnostic, Severity


def _vars(names: Iterable[Var]) -> str:
    return ", ".join(sorted(v.name for v in names))


def analyze_rule(rule: Rule) -> List[Diagnostic]:
    """Safety diagnostics for one rule (DLG001/DLG002)."""
    out: List[Diagnostic] = []
    bound = rule.positive_variables()
    unsafe_head = rule.head.variables() - bound
    if unsafe_head:
        out.append(Diagnostic(
            "DLG001", Severity.ERROR,
            f"head variable(s) {_vars(unsafe_head)} of {rule!r} are not "
            f"bound by any positive body atom — the rule is unsafe",
        ))
    for element in rule.body:
        negated = isinstance(element, BodyLiteral) and element.negated
        if not (negated or isinstance(element, Builtin)):
            continue
        loose = element.variables() - bound
        if loose:
            kind = "negated atom" if negated else "builtin"
            out.append(Diagnostic(
                "DLG002", Severity.ERROR,
                f"variable(s) {_vars(loose)} occur only in the {kind} "
                f"{element!r} of {rule!r} — {kind}s cannot bind variables",
            ))
    return out


def analyze_datalog(program: Program) -> List[Diagnostic]:
    """All safety and stratification diagnostics for *program*."""
    out: List[Diagnostic] = []
    for rule in program.rules:
        out.extend(analyze_rule(rule))
    if not out:
        # stratification is only meaningful once every rule is safe
        try:
            stratify(program)
        except StratificationError as exc:
            out.append(Diagnostic("DLG003", Severity.ERROR, str(exc)))
    return out
