"""Collection schemas inferred from loaded data (schema-aware checks).

GraphQL data is semistructured — graphs in one collection need not share
attributes — so there is no declared schema to check against.  What the
analyzer uses instead is an *observed* schema: the union of attribute
names (with the value types seen for each), tuple tags and node labels
actually present in a collection.  A predicate over an attribute no
graph carries is legal (it evaluates to false via the MISSING sentinel)
but almost surely a typo, which is exactly the kind of finding a
WARNING exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Set

#: Type buckets for confusion checks: int/float/bool order and compare
#: with each other, strings only with strings.
_NUMERIC = ("int", "float", "bool")


def type_bucket(value: object) -> str:
    """``"number"`` / ``"str"`` / ``"other"`` for a scalar value."""
    name = type(value).__name__
    if name in _NUMERIC:
        return "number"
    if name == "str":
        return "str"
    return "other"


@dataclass
class CollectionSchema:
    """The observed shape of one graph collection.

    ``node_attrs`` / ``edge_attrs`` / ``graph_attrs`` map attribute
    names to the set of type buckets seen for them; ``node_tags`` /
    ``edge_tags`` collect tuple tags and ``labels`` the distinct values
    of the ``label`` attribute (the planner's label index key).
    """

    node_attrs: Dict[str, Set[str]] = field(default_factory=dict)
    edge_attrs: Dict[str, Set[str]] = field(default_factory=dict)
    graph_attrs: Dict[str, Set[str]] = field(default_factory=dict)
    node_tags: Set[str] = field(default_factory=set)
    edge_tags: Set[str] = field(default_factory=set)
    labels: Set[str] = field(default_factory=set)
    #: how many graphs the inference saw (0 == empty/unknown schema)
    graphs: int = 0

    def known_attr(self, name: str) -> bool:
        """Whether *name* appears as an attribute anywhere."""
        return (name in self.node_attrs or name in self.edge_attrs
                or name in self.graph_attrs)

    def attr_buckets(self, name: str) -> Set[str]:
        """Every type bucket observed for *name*, across element kinds."""
        out: Set[str] = set()
        for attrs in (self.node_attrs, self.edge_attrs, self.graph_attrs):
            out |= attrs.get(name, set())
        return out


def _note(attrs: Dict[str, Set[str]], tuple_like: Iterable[str],
          getter: Callable[[str], object]) -> None:
    for name in tuple_like:
        attrs.setdefault(name, set()).add(type_bucket(getter(name)))


def infer_schema(collection: Iterable) -> CollectionSchema:
    """Scan a collection (or a single graph) into a
    :class:`CollectionSchema`.

    Accepts anything iterable over graphs — a
    :class:`~repro.core.collection.GraphCollection` — or a single
    :class:`~repro.core.graph.Graph` (wrapped transparently).
    """
    graphs = [collection] if hasattr(collection, "nodes") else list(collection)
    schema = CollectionSchema()
    for graph in graphs:
        schema.graphs += 1
        _note(schema.graph_attrs, graph.tuple, graph.tuple.get)
        for node in graph.nodes():
            _note(schema.node_attrs, node.tuple, node.tuple.get)
            if node.tag:
                schema.node_tags.add(node.tag)
            label = node.tuple.get("label")
            if isinstance(label, str):
                schema.labels.add(label)
        for edge in graph.edges():
            _note(schema.edge_attrs, edge.tuple, edge.tuple.get)
            if edge.tag:
                schema.edge_tags.add(edge.tag)
    return schema


def schema_for_document(database: Any, document: str) -> Optional[CollectionSchema]:
    """Infer the schema of a registered document; ``None`` when absent."""
    try:
        collection = database.doc(document)
    except KeyError:
        return None
    return infer_schema(collection)
