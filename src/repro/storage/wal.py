"""Write-ahead logging and crash recovery for the page storage layer.

PR 1 gave the storage layer corruption *detection* (per-page CRC32,
open-time validation); this module turns detection into *repair*.  The
design is the classic redo-only WAL with a **no-steal** buffer policy:

* during a transaction, page writes stay in memory
  (:attr:`~repro.storage.pager.PageFile` pending buffer) — the page file
  on disk is never touched by an uncommitted transaction;
* at commit, the transaction's page images are framed into the log
  (``BEGIN``, one ``PAGE`` record per touched page, ``COMMIT``), the log
  is fsynced (policy permitting), and only then are the pages written to
  the page file;
* on open, :func:`recover` replays the page images of every transaction
  whose ``COMMIT`` record survived, and discards uncommitted records and
  the torn tail (a record whose CRC fails or whose frame is cut short);
* a **checkpoint** fsyncs the page file and truncates the log to empty —
  everything the log protected is now safely in the pages.

Log records are CRC-framed and LSN-stamped::

    [u32 crc][u32 payload_len][u64 lsn][u8 kind][u64 txn] payload
    kind=PAGE payload: [u32 page_no][page image]
    kind=BEGIN/COMMIT payload: empty

The CRC covers everything after itself (frame fields + payload), so a
partial append — the crash mode this module exists for — is recognized
and cut off instead of being replayed as garbage.

Fsync policy (``always`` / ``commit`` / ``never``) controls when the log
forces data to disk: every append, only on commit records, or never
(fast, for tests and simulated-crash harnesses where the "disk" is the
file content itself).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.trace import span as trace_span
from .pager import PAGE_SIZE, StorageError

#: Fsync policies accepted by the WAL and the page file.
FSYNC_ALWAYS = "always"
FSYNC_COMMIT = "commit"
FSYNC_NEVER = "never"
FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_COMMIT, FSYNC_NEVER)

REC_BEGIN = 1
REC_PAGE = 2
REC_COMMIT = 3

_FRAME = struct.Struct("<IIQBQ")  # crc32, payload_len, lsn, kind, txn
_PAGE_NO = struct.Struct("<I")
_MAX_PAYLOAD = _PAGE_NO.size + PAGE_SIZE

#: Conventional WAL path for a page file at *path*.
WAL_SUFFIX = ".wal"


def wal_path_for(path: str) -> str:
    """The conventional WAL path next to a page file."""
    return path + WAL_SUFFIX


def check_fsync_policy(policy: str) -> str:
    """Validate an fsync policy name and return it."""
    if policy not in FSYNC_POLICIES:
        raise ValueError(
            f"unknown fsync policy {policy!r} "
            f"(expected one of {', '.join(FSYNC_POLICIES)})"
        )
    return policy


@dataclass
class WalRecord:
    """One decoded log record."""

    lsn: int
    kind: int
    txn: int
    page_no: Optional[int] = None
    data: bytes = b""


@dataclass
class WalScan:
    """The valid prefix of a log file plus what was cut off."""

    records: List[WalRecord] = field(default_factory=list)
    valid_bytes: int = 0
    torn_bytes: int = 0

    @property
    def torn_tail(self) -> bool:
        """Whether the file ended in a torn (unparseable) record."""
        return self.torn_bytes > 0


def _frame(lsn: int, kind: int, txn: int, payload: bytes) -> bytes:
    body = _FRAME.pack(0, len(payload), lsn, kind, txn)[4:] + payload
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return struct.pack("<I", crc) + body


def scan_wal(path: str) -> WalScan:
    """Parse a log file up to the first torn or corrupt record.

    Everything before the tear is returned; the tear itself and anything
    after it (unreachable once one record is unframeable) is counted in
    ``torn_bytes`` and will be discarded by recovery.
    """
    scan = WalScan()
    if not os.path.exists(path):
        return scan
    raw = open(path, "rb").read()
    offset = 0
    while offset < len(raw):
        if offset + _FRAME.size > len(raw):
            break
        crc, length, lsn, kind, txn = _FRAME.unpack_from(raw, offset)
        end = offset + _FRAME.size + length
        if length > _MAX_PAYLOAD or end > len(raw):
            break
        if zlib.crc32(raw[offset + 4:end]) & 0xFFFFFFFF != crc:
            break
        payload = raw[offset + _FRAME.size:end]
        record = WalRecord(lsn=lsn, kind=kind, txn=txn)
        if kind == REC_PAGE:
            if length < _PAGE_NO.size:
                break
            (record.page_no,) = _PAGE_NO.unpack_from(payload, 0)
            record.data = payload[_PAGE_NO.size:]
            if len(record.data) != PAGE_SIZE:
                break
        scan.records.append(record)
        offset = end
    scan.valid_bytes = offset
    scan.torn_bytes = len(raw) - offset
    return scan


class WriteAheadLog:
    """An append-only, CRC-framed redo log for one page file.

    Appends happen at commit time (the page file's no-steal buffer hands
    over the final image of every touched page), so the log holds whole
    transactions back to back.  A crash mid-append leaves a torn tail
    that :func:`scan_wal` cuts off.
    """

    def __init__(self, path: str, fsync: str = FSYNC_COMMIT) -> None:
        self.path = path
        self.fsync_policy = check_fsync_policy(fsync)
        #: optional :class:`~repro.storage.faults.CrashPoint`
        self.crashpoint = None
        self.appends = 0
        scan = scan_wal(path)
        self._next_lsn = (scan.records[-1].lsn + 1) if scan.records else 1
        self._next_txn = (max((r.txn for r in scan.records), default=0) + 1)
        # unbuffered: the file's contents must always equal what was
        # written, even when a (simulated or real) crash abandons this
        # handle — a userspace buffer would make "committed" records
        # vanish, or flush stale bytes long after recovery ran
        self._file = open(path, "r+b" if os.path.exists(path) else "w+b",
                          buffering=0)
        # position after the valid prefix: a torn tail left by a crash is
        # overwritten by the next append instead of blocking it
        self._file.seek(scan.valid_bytes)
        self._file.truncate()

    # -- writing --------------------------------------------------------------

    def _write(self, data: bytes) -> None:
        if self.crashpoint is not None:
            self.crashpoint.write(self._file.write, data)
        else:
            self._file.write(data)
        self.appends += 1

    def _sync(self) -> None:
        with trace_span("wal.fsync"):
            self._file.flush()
            if self.crashpoint is not None:
                self.crashpoint.barrier(
                    lambda: os.fsync(self._file.fileno()))
            else:
                os.fsync(self._file.fileno())

    def append(self, kind: int, txn: int, payload: bytes = b"") -> int:
        """Append one framed record; returns its LSN."""
        lsn = self._next_lsn
        self._next_lsn += 1
        with trace_span("wal.append") as sp:
            data = _frame(lsn, kind, txn, payload)
            self._write(data)
            if self.fsync_policy == FSYNC_ALWAYS:
                self._sync()
            sp.incr("bytes", len(data))
        return lsn

    def begin(self) -> int:
        """Allocate a transaction id (the BEGIN marker is framed at
        commit, when the transaction's pages are known)."""
        txn = self._next_txn
        self._next_txn += 1
        return txn

    def log_transaction(self, txn: int,
                        pages: Dict[int, bytes]) -> int:
        """Frame one whole transaction: BEGIN, its pages, COMMIT.

        Returns the COMMIT record's LSN.  The commit fsync (policy
        ``always``/``commit``) is the durability point: once it
        returns, recovery will replay this transaction.
        """
        with trace_span("wal.commit") as sp:
            self.append(REC_BEGIN, txn)
            for page_no in sorted(pages):
                self.append(REC_PAGE, txn,
                            _PAGE_NO.pack(page_no) + pages[page_no])
            lsn = self.append(REC_COMMIT, txn)
            if self.fsync_policy in (FSYNC_ALWAYS, FSYNC_COMMIT):
                self._sync()
            sp.incr("pages", len(pages))
        return lsn

    # -- maintenance ----------------------------------------------------------

    @property
    def size(self) -> int:
        """Bytes currently in the log file."""
        self._file.flush()
        return os.path.getsize(self.path)

    def truncate(self) -> int:
        """Drop every record (the checkpoint step); returns bytes freed.

        Only call after the page file has been flushed and fsynced —
        truncating earlier would discard the only copy of committed
        changes that have not reached the pages yet.
        """
        with trace_span("wal.checkpoint") as sp:
            freed = self.size
            self._file.seek(0)
            self._file.truncate()
            if self.fsync_policy != FSYNC_NEVER:
                self._sync()
            sp.incr("bytes_freed", freed)
        return freed

    def close(self) -> None:
        """Flush and close the log file."""
        self._file.flush()
        self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class RecoveryResult:
    """What :func:`recover` found and did."""

    ran: bool = False
    wal_records: int = 0
    replayed_transactions: int = 0
    replayed_pages: int = 0
    discarded_records: int = 0
    torn_tail: bool = False
    wal_bytes: int = 0
    last_lsn: int = 0

    @property
    def clean(self) -> bool:
        """Whether the store needed no repair at all."""
        return self.replayed_transactions == 0 and self.discarded_records == 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (service ``stats`` / CLI ``--json``)."""
        return {
            "ran": self.ran,
            "clean": self.clean,
            "wal_records": self.wal_records,
            "replayed_transactions": self.replayed_transactions,
            "replayed_pages": self.replayed_pages,
            "discarded_records": self.discarded_records,
            "torn_tail": self.torn_tail,
            "wal_bytes": self.wal_bytes,
            "last_lsn": self.last_lsn,
        }


def recover(path: str, wal_path: Optional[str] = None,
            sync: bool = True) -> RecoveryResult:
    """Replay committed transactions into the page file, then truncate.

    Safe to run on a clean store (no-op), after a crash at any write
    boundary (torn WAL tail, torn page flush, missing page file), and
    repeatedly (replay is idempotent: it rewrites full page images).
    Must run *before* the page file is opened for validation — a crash
    between commit and page flush can leave pages, or the header itself,
    torn until the replay repairs them.
    """
    wal_path = wal_path if wal_path is not None else wal_path_for(path)
    result = RecoveryResult(ran=True)
    scan = scan_wal(wal_path)
    result.wal_records = len(scan.records)
    result.torn_tail = scan.torn_tail
    result.wal_bytes = scan.valid_bytes + scan.torn_bytes
    if scan.records:
        result.last_lsn = scan.records[-1].lsn
    committed = {r.txn for r in scan.records if r.kind == REC_COMMIT}
    replayed: List[Tuple[int, bytes]] = []
    replayed_txns = set()
    for record in scan.records:
        if record.kind == REC_PAGE and record.txn in committed:
            replayed.append((record.page_no, record.data))
            replayed_txns.add(record.txn)
        elif record.txn not in committed:
            result.discarded_records += 1
    result.replayed_transactions = len(replayed_txns)
    result.replayed_pages = len(replayed)
    if replayed:
        mode = "r+b" if os.path.exists(path) else "w+b"
        with open(path, mode) as pages:
            pages.seek(0, os.SEEK_END)
            length = pages.tell()
            for page_no, image in replayed:
                offset = page_no * PAGE_SIZE
                if offset > length:
                    # pages between the old end and this one are fresh
                    # allocations whose zero-fill never hit the disk
                    pages.seek(length)
                    pages.write(b"\x00" * (offset - length))
                pages.seek(offset)
                pages.write(image)
                length = max(length, offset + PAGE_SIZE)
            pages.flush()
            if sync:
                os.fsync(pages.fileno())
    if os.path.exists(wal_path) and result.wal_bytes:
        # the post-recovery checkpoint: everything replayable is now in
        # the pages (or was uncommitted garbage), so the log restarts
        with open(wal_path, "r+b") as log:
            log.truncate(0)
            log.flush()
            if sync:
                os.fsync(log.fileno())
    return result


class WalError(StorageError):
    """Transaction protocol misuse (nested begin, commit without begin)."""
