"""Crash-point fuzzing: kill the write path everywhere, prove recovery.

``python -m repro.storage.crashfuzz --seed 7`` runs a deterministic
mixed save/mutate workload against a durable :class:`GraphStore`, once
per possible crash point: the :class:`~repro.storage.faults.CrashPoint`
injector kills the write path (torn final write included) after N
operations, for every N the workload performs.  After each simulated
crash the store is reopened — which runs WAL recovery — and checked
against the **committed-prefix contract**:

* the recovered documents equal the workload state after exactly *j*
  operations for some ``committed <= j <= attempted`` (a commit whose
  call returned must survive; a commit in flight may land either way;
  nothing else may appear) — no torn graphs, no CRC errors;
* every recovered :attr:`Graph.version` equals the version the graph
  had when that state was saved (monotone across the crash);
* a checkpoint after recovery truncates the WAL to empty, and a second
  reopen finds a clean store.

The workload is pure: ``state_at(doc, round)`` rebuilds any document's
graph at any round from the seed alone, so the expected committed
prefix never depends on surviving in-memory state — exactly like the
restarted process the harness simulates.

The CI ``crash-recovery-fuzz`` job runs this for a seed matrix and
uploads the JSON report of the failing point on failure.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

from ..core.collection import GraphCollection
from ..core.graph import Graph
from .faults import CrashPoint, SimulatedCrash
from .graphstore import GraphStore
from .wal import scan_wal, wal_path_for

#: A crash budget no workload reaches — used to count total operations.
NEVER = 10 ** 9


class CrashFuzzWorkload:
    """A deterministic mixed save/mutate workload over several documents.

    The op sequence interleaves documents; op *k* for a document saves a
    fresh snapshot of that document's graph after one more mutation
    round (nodes/edges added, an edge removed, attributes touched).
    """

    def __init__(self, seed: int, docs: int = 3, rounds: int = 8,
                 base_nodes: int = 14) -> None:
        self.seed = seed
        self.docs = docs
        self.base_nodes = base_nodes
        #: (document name, mutation round) per save operation
        self.ops: List[Tuple[str, int]] = []
        counters = {f"doc{d}": 0 for d in range(docs)}
        rng = random.Random(seed)
        for _ in range(docs * rounds):
            doc = f"doc{rng.randrange(docs)}"
            counters[doc] += 1
            self.ops.append((doc, counters[doc]))

    @lru_cache(maxsize=None)
    def state_at(self, doc: str, rounds: int) -> Graph:
        """The document's graph after *rounds* mutation rounds (pure)."""
        index = int(doc[3:])
        rng = random.Random(f"{self.seed}:{index}:base")
        graph = Graph(doc, directed=index % 2 == 0)
        n = self.base_nodes + index
        for i in range(n):
            graph.add_node(f"v{i}", label=f"L{i % 4}",
                           weight=rng.random() * 10)
        for i in range(n - 1):
            graph.add_edge(f"v{i}", f"v{i + 1}", kind="chain")
        for round_no in range(1, rounds + 1):
            mrng = random.Random(f"{self.seed}:{index}:{round_no}")
            added = graph.add_node(f"r{round_no}",
                                   label=f"L{mrng.randrange(4)}",
                                   round=round_no)
            anchors = sorted(graph.node_ids())
            for _ in range(2):
                graph.add_edge(added.id, mrng.choice(anchors),
                               weight=float(round_no))
            removable = [e.id for e in graph.edges()
                         if e.tuple.get("kind") == "chain"]
            if removable:
                graph.remove_edge(mrng.choice(removable))
        return graph

    def expected_after(self, op_count: int) -> Dict[str, Graph]:
        """The committed document states once *op_count* ops are durable."""
        latest: Dict[str, int] = {}
        for doc, round_no in self.ops[:op_count]:
            latest[doc] = round_no
        return {doc: self.state_at(doc, round_no)
                for doc, round_no in latest.items()}

    def run(self, store: GraphStore) -> int:
        """Apply every op; returns how many saves returned (committed)."""
        committed = 0
        for doc, round_no in self.ops:
            store.save_document(doc, [self.state_at(doc, round_no)])
            committed += 1
        return committed


@dataclass
class FuzzReport:
    """Outcome of one fuzzing sweep (JSON-serializable for CI)."""

    seed: int
    total_ops: int = 0
    points_run: int = 0
    failures: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.points_run > 0 and not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "total_ops": self.total_ops,
            "points_run": self.points_run,
            "ok": self.ok,
            "failures": self.failures,
        }


def _documents_equal(recovered: Dict[str, GraphCollection],
                     expected: Dict[str, Graph]) -> bool:
    if set(recovered) != set(expected):
        return False
    for name, graph in expected.items():
        collection = recovered[name]
        if len(collection) != 1:
            return False
        back = collection[0]
        if not back.equals(graph) or back.version != graph.version:
            return False
    return True


def run_crash_point(workload: CrashFuzzWorkload, directory: str,
                    point: int, fsync: str = "commit") -> Optional[str]:
    """One crash → recover → verify cycle; returns an error or None."""
    path = os.path.join(directory, "store.db")
    crash = CrashPoint(point, tear=True,
                       seed=workload.seed * 100003 + point)
    store = GraphStore(path, durable=True, fsync=fsync, crashpoint=crash)
    committed = 0
    crashed = False
    try:
        for doc, round_no in workload.ops:
            store.save_document(doc, [workload.state_at(doc, round_no)])
            committed += 1
    except SimulatedCrash:
        crashed = True
    # a save in flight when the crash hit may be durable or not — both
    # are legal; a save that returned must be durable
    attempted = committed + 1 if crashed else committed
    try:
        recovered_store = GraphStore(path, durable=True, fsync="never")
    except Exception as exc:
        return f"reopen after crash at op {point} failed: {exc!r}"
    try:
        documents = recovered_store.load_documents()
        matched = None
        for j in range(committed, attempted + 1):
            if _documents_equal(documents, workload.expected_after(j)):
                matched = j
                break
        if matched is None:
            return (
                f"crash at op {point}: recovered state matches no "
                f"committed prefix in [{committed}, {attempted}] "
                f"(docs: { {k: len(v) for k, v in documents.items()} })"
            )
        recovered_store.checkpoint()
        if scan_wal(wal_path_for(path)).records:
            return f"crash at op {point}: checkpoint left WAL records"
        recovered_store.close()
        clean = GraphStore(path, durable=True, fsync="never")
        if not clean.recovery.clean:
            return (f"crash at op {point}: second reopen still had to "
                    f"repair: {clean.recovery.to_dict()}")
        if not _documents_equal(clean.load_documents(),
                                workload.expected_after(matched)):
            return f"crash at op {point}: state changed across clean reopen"
        clean.close()
    except Exception as exc:
        return f"verification after crash at op {point} raised: {exc!r}"
    return None


def fuzz(seed: int, min_points: int = 200,
         directory: Optional[str] = None,
         fsync: str = "commit", verbose: bool = True,
         docs: int = 3, rounds: int = 8, base_nodes: int = 14,
         max_points: Optional[int] = None) -> FuzzReport:
    """Sweep every crash point of a workload sized to *min_points*.

    *docs*/*rounds*/*base_nodes* shape the starting workload (the round
    count doubles until the workload has *min_points* crashable ops);
    *max_points* bounds the sweep for quick test runs — a bounded sweep
    is reported as such, never as full coverage.
    """
    report = FuzzReport(seed=seed)
    workload = CrashFuzzWorkload(seed, docs=docs, rounds=rounds,
                                 base_nodes=base_nodes)
    own_tmp = directory is None
    root = directory or tempfile.mkdtemp(prefix="crashfuzz-")
    try:
        while True:
            count_dir = os.path.join(root, "count")
            os.makedirs(count_dir, exist_ok=True)
            counter = CrashPoint(NEVER)
            store = GraphStore(os.path.join(count_dir, "store.db"),
                               durable=True, fsync=fsync,
                               crashpoint=counter)
            workload.run(store)
            store.close(checkpoint=False)
            shutil.rmtree(count_dir)
            if counter.ops >= min_points or rounds >= 64:
                break
            rounds *= 2
            workload = CrashFuzzWorkload(seed, docs=docs, rounds=rounds,
                                         base_nodes=base_nodes)
        report.total_ops = counter.ops
        sweep_to = report.total_ops
        if max_points is not None and max_points < sweep_to:
            sweep_to = max_points
            if verbose:
                print(f"crashfuzz seed={seed}: sweep capped at "
                      f"{sweep_to}/{report.total_ops} points", flush=True)
        if verbose:
            print(f"crashfuzz seed={seed}: {len(workload.ops)} saves, "
                  f"{report.total_ops} crashable ops", flush=True)
        for point in range(1, sweep_to + 1):
            point_dir = os.path.join(root, f"p{point}")
            os.makedirs(point_dir, exist_ok=True)
            error = run_crash_point(workload, point_dir, point, fsync)
            report.points_run += 1
            if error is not None:
                report.failures.append({"point": point, "error": error})
                if verbose:
                    print(f"FAIL {error}", flush=True)
            shutil.rmtree(point_dir, ignore_errors=True)
            if verbose and point % 50 == 0:
                print(f"  ... {point}/{report.total_ops} points, "
                      f"{len(report.failures)} failure(s)", flush=True)
    finally:
        if own_tmp:
            shutil.rmtree(root, ignore_errors=True)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.storage.crashfuzz",
        description="crash-point fuzzing of the durable storage layer",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="workload + tear-point seed")
    parser.add_argument("--min-points", type=int, default=200,
                        help="grow the workload until it has at least "
                             "this many crashable operations")
    parser.add_argument("--max-points", type=int, default=None,
                        help="bound the sweep (quick runs; the report "
                             "notes the cap)")
    parser.add_argument("--fsync", default="commit",
                        choices=("always", "commit", "never"),
                        help="fsync policy under test")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write a JSON report here")
    args = parser.parse_args(argv)
    report = fuzz(args.seed, min_points=args.min_points, fsync=args.fsync,
                  max_points=args.max_points)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
    status = "PASS" if report.ok else "FAIL"
    print(f"crashfuzz seed={report.seed}: {status} "
          f"({report.points_run} points, {len(report.failures)} failure(s))",
          flush=True)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
