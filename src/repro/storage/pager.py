"""Page-based physical storage for graph data (Section 7 direction).

The paper's first future-research direction asks how to *"store graphs on
disks for efficient storage and fast retrieval"*, including *"how to
decompose the large graph into small chunks and preserve locality"*.
This module is a working answer at the classic-textbook level:

* :class:`PageFile` — a file of fixed-size pages with a free list and a
  header page;
* :class:`SlottedPage` — variable-length records inside a page through a
  slot directory (forward-growing records, backward-growing slots);
* :class:`RecordFile` — record ids ``(page, slot)`` over a page file,
  with insert / read / delete and full-scan.

:mod:`repro.storage.graphstore` builds graph persistence and the BFS
clustering heuristic on top.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import Callable, Dict, Iterator, List, Optional, Tuple

PAGE_SIZE = 4096
_MAGIC = b"GQLP"
# magic, page_count, free_list_head, store_version (u64, appended by the
# durability work — old files read zeros out of the header padding)
_HEADER_FMT = "<4sIIQ"
_NO_PAGE = 0xFFFFFFFF


class StorageError(RuntimeError):
    """Raised on corrupt files or invalid record ids."""


class TransientIOError(StorageError):
    """A read fault that may succeed on retry (injected or environmental).

    :class:`RecordFile` retries these with bounded exponential backoff;
    anything still failing after the retry budget surfaces as-is.
    """


class ChecksumError(StorageError):
    """A page image failed its CRC32 verification (torn write, bit rot)."""


class PageFile:
    """A file of fixed-size pages with allocate/free and a header.

    Page 0 is the header; data pages start at 1.  Freed pages form a
    singly-linked free list threaded through their first four bytes.

    With a write-ahead log attached (:meth:`attach_wal`), page writes
    become transactional under a **no-steal** policy: between
    :meth:`begin` and :meth:`commit`, images accumulate in a pending
    buffer (reads see them — read-your-writes), commit frames them into
    the WAL, fsyncs it (the durability point), and only then writes the
    pages.  A crash at any step leaves either the old state (commit
    record never became durable) or a state the WAL replay repairs.
    ``store_version`` in the header counts committed transactions and is
    what lets :class:`~repro.core.graph.Graph` versions stay monotone
    across recoveries.
    """

    def __init__(self, path: str, fsync: str = "never") -> None:
        self.path = path
        self.fsync_policy = fsync
        #: attached :class:`~repro.storage.wal.WriteAheadLog`, if any
        self.wal = None
        #: optional :class:`~repro.storage.faults.CrashPoint` guarding
        #: raw file writes and fsyncs
        self.crashpoint = None
        self.store_version = 0
        self._txn: Optional[int] = None
        self._pending: Dict[int, bytes] = {}
        create = not os.path.exists(path) or os.path.getsize(path) == 0
        # unbuffered, like the WAL: an abandoned handle (crash) must
        # never hold page bytes that could flush after recovery ran
        self._file = open(path, "r+b" if not create else "w+b",
                          buffering=0)
        if create:
            self._page_count = 1
            self._free_head = _NO_PAGE
            self._file.write(b"\x00" * PAGE_SIZE)
            self._write_header()
        else:
            self._read_header()

    # -- header -----------------------------------------------------------------

    def _header_image(self) -> bytes:
        header = struct.pack(_HEADER_FMT, _MAGIC, self._page_count,
                             self._free_head, self.store_version)
        return header.ljust(PAGE_SIZE, b"\x00")[:PAGE_SIZE]

    def _write_header(self) -> None:
        if self.wal is not None:
            # with a log attached the header page is a page like any
            # other: it must never reach the file outside a transaction
            self.write_page(0, self._header_image())
            return
        self._raw_write(0, self._header_image())
        self._file.flush()

    def _read_header(self) -> None:
        header_size = struct.calcsize(_HEADER_FMT)
        self._file.seek(0)
        raw = self._file.read(header_size)
        if len(raw) < header_size:
            raise StorageError(
                f"{self.path}: truncated header ({len(raw)} bytes, "
                f"need {header_size}); not a page file or badly damaged"
            )
        magic, page_count, free_head, version = struct.unpack(
            _HEADER_FMT, raw)
        if magic != _MAGIC:
            raise StorageError(
                f"{self.path}: bad magic {magic!r} (expected {_MAGIC!r}); "
                "not a page file"
            )
        if page_count < 1:
            raise StorageError(
                f"{self.path}: header declares {page_count} pages; "
                "a page file has at least the header page"
            )
        actual = os.path.getsize(self.path)
        expected = page_count * PAGE_SIZE
        if actual < expected:
            raise StorageError(
                f"{self.path}: header declares {page_count} pages "
                f"({expected} bytes) but the file holds only {actual} bytes; "
                "the file is truncated"
            )
        self._page_count = page_count
        self._free_head = free_head
        self.store_version = version

    # -- page access ---------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Total pages including the header."""
        return self._page_count

    def read_page(self, page_no: int) -> bytes:
        """Read one page (header page 0 included).

        Inside a transaction, pages this transaction has written are
        served from the pending buffer (read-your-writes)."""
        if page_no >= self._page_count:
            raise StorageError(f"page {page_no} out of range")
        pending = self._pending.get(page_no)
        if pending is not None:
            return pending
        self._file.seek(page_no * PAGE_SIZE)
        data = self._file.read(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"short read on page {page_no}")
        return data

    def _raw_write(self, page_no: int, data: bytes) -> None:
        """Write bytes at a page offset, through the crash injector."""
        self._file.seek(page_no * PAGE_SIZE)
        if self.crashpoint is not None:
            self.crashpoint.write(self._file.write, data)
        else:
            self._file.write(data)

    def write_page(self, page_no: int, data: bytes) -> None:
        """Write one full page.

        With a WAL attached, the write joins the open transaction's
        pending buffer (a write outside any transaction is wrapped in
        an implicit single-write transaction, so no page write can ever
        bypass the log)."""
        if len(data) != PAGE_SIZE:
            raise StorageError("page data must be exactly PAGE_SIZE bytes")
        if page_no >= self._page_count:
            raise StorageError(f"page {page_no} out of range")
        if self.wal is not None:
            if self._txn is None:
                self.begin()
                self._pending[page_no] = bytes(data)
                self.commit()
            else:
                self._pending[page_no] = bytes(data)
            return
        self._raw_write(page_no, data)

    def allocate_page(self) -> int:
        """Allocate a page (reusing the free list when possible)."""
        if self._free_head != _NO_PAGE:
            page_no = self._free_head
            raw = self.read_page(page_no)
            (self._free_head,) = struct.unpack("<I", raw[:4])
            self._write_header()
            return page_no
        page_no = self._page_count
        self._page_count += 1
        # physical zero-extension happens immediately even inside a
        # transaction: reserving space is harmless to recover from (an
        # uncommitted extension just leaves fresh all-zero pages behind)
        self._raw_write(page_no, b"\x00" * PAGE_SIZE)
        self._write_header()
        return page_no

    def free_page(self, page_no: int) -> None:
        """Return a page to the free list."""
        if page_no == 0 or page_no >= self._page_count:
            raise StorageError(f"cannot free page {page_no}")
        data = struct.pack("<I", self._free_head).ljust(PAGE_SIZE, b"\x00")
        self.write_page(page_no, data)
        self._free_head = page_no
        self._write_header()

    # -- durability -----------------------------------------------------------

    def attach_wal(self, wal) -> None:
        """Route all further page writes through a write-ahead log."""
        self.wal = wal

    @property
    def in_transaction(self) -> bool:
        """Whether a WAL transaction is open."""
        return self._txn is not None

    def begin(self) -> int:
        """Open a WAL transaction; page writes buffer until commit."""
        if self.wal is None:
            raise StorageError("no write-ahead log attached")
        if self._txn is not None:
            raise StorageError("transaction already open (no nesting)")
        self._txn = self.wal.begin()
        return self._txn

    def commit(self) -> int:
        """Make the open transaction durable, then write its pages.

        Sequence: stamp the bumped ``store_version`` into the pending
        header image, frame BEGIN/pages/COMMIT into the WAL and fsync it
        (the durability point), then flush the pending pages and the
        file.  Returns the commit LSN.
        """
        if self._txn is None:
            raise StorageError("commit without an open transaction")
        self.store_version += 1
        self._write_header()  # lands in the pending buffer
        txn, self._txn = self._txn, None
        pending, self._pending = self._pending, {}
        try:
            lsn = self.wal.log_transaction(txn, pending)
            for page_no in sorted(pending):
                self._raw_write(page_no, pending[page_no])
            self.flush()
        except BaseException:
            # a failed commit (crash injection, disk error) must not
            # leave half a version bump behind in memory
            self.store_version -= 1
            raise
        return lsn

    def abort(self) -> None:
        """Drop the open transaction's buffered writes.

        The WAL never receives a COMMIT for the transaction id, so
        recovery discards anything already framed.  In-memory header
        state (page count, free list) may run ahead of the committed
        header; that only over-reserves zero pages, which reopening
        resolves.
        """
        self._txn = None
        self._pending = {}

    def flush(self, sync: Optional[bool] = None) -> None:
        """Flush buffered writes; fsync according to the policy.

        ``sync=True`` forces an fsync, ``sync=False`` suppresses it, and
        the default follows ``fsync_policy`` (``never`` skips it)."""
        self._file.flush()
        if sync is None:
            sync = self.fsync_policy != "never"
        if sync:
            if self.crashpoint is not None:
                self.crashpoint.barrier(
                    lambda: os.fsync(self._file.fileno()))
            else:
                os.fsync(self._file.fileno())

    def checkpoint(self) -> int:
        """Sync the page file, then truncate the WAL; returns bytes freed.

        Everything the log was protecting is durably in the pages after
        the sync, so the log restarts empty.  No-op without a WAL.
        """
        if self.wal is None:
            return 0
        if self._txn is not None:
            raise StorageError("cannot checkpoint inside a transaction")
        self.flush(sync=self.fsync_policy != "never")
        return self.wal.truncate()

    def close(self) -> None:
        """Flush and close the backing file (and the WAL, if attached).

        An open transaction is aborted, not committed: close during an
        exception unwind must not make half-applied work durable.
        """
        if self._txn is not None:
            self.abort()
        if self.wal is not None:
            # committed state already persisted its own header; a plain
            # header rewrite here would bypass the log
            self._file.flush()
            self._file.close()
            self.wal.close()
            return
        self._write_header()
        self._file.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# slotted page layout:
#   [u16 slot_count][u16 free_offset][u32 crc32] ...records...   ...slots...
# each slot: [u16 offset][u16 length]; offset 0xFFFF marks a deleted slot
# (offset 0 cannot be used as a tombstone — it would clash with legal
# zero-length records, and real offsets start past the page header).
# The CRC32 covers the whole page image with the crc field zeroed; it is
# stamped by to_bytes() (i.e. on every write-out) and verified when a
# page image is parsed, so torn writes and bit flips are detected at
# read time instead of surfacing as garbled records later.
_PAGE_HEADER = struct.Struct("<HHI")
_SLOT = struct.Struct("<HH")
_DELETED = 0xFFFF
_CRC_OFFSET = 4  # byte offset of the u32 crc within the page header


class SlottedPage:
    """Variable-length records within one page via a slot directory."""

    def __init__(self, data: Optional[bytes] = None, verify: bool = True) -> None:
        if data is None:
            self._buf = bytearray(PAGE_SIZE)
            self.slot_count = 0
            self.free_offset = _PAGE_HEADER.size
            self._store_header()
        else:
            self._buf = bytearray(data)
            if not any(self._buf):
                # a freshly allocated, never-written page: treat as empty
                self.slot_count = 0
                self.free_offset = _PAGE_HEADER.size
                self._store_header()
                return
            self.slot_count, self.free_offset, stored_crc = (
                _PAGE_HEADER.unpack_from(self._buf, 0)
            )
            if verify and stored_crc != self._compute_crc():
                raise ChecksumError(
                    f"page checksum mismatch (stored {stored_crc:#010x}, "
                    f"computed {self._compute_crc():#010x}); the page was "
                    "torn or corrupted"
                )

    def _compute_crc(self) -> int:
        """CRC32 of the page image with the crc field zeroed."""
        crc = zlib.crc32(self._buf[:_CRC_OFFSET])
        crc = zlib.crc32(b"\x00\x00\x00\x00", crc)
        return zlib.crc32(self._buf[_CRC_OFFSET + 4:], crc) & 0xFFFFFFFF

    def _store_header(self, crc: int = 0) -> None:
        _PAGE_HEADER.pack_into(self._buf, 0, self.slot_count,
                               self.free_offset, crc)

    def _slot_position(self, slot: int) -> int:
        return PAGE_SIZE - (slot + 1) * _SLOT.size

    def _read_slot(self, slot: int) -> Tuple[int, int]:
        if slot >= self.slot_count:
            raise StorageError(f"slot {slot} out of range")
        return _SLOT.unpack_from(self._buf, self._slot_position(slot))

    def free_space(self) -> int:
        """Bytes available for one more record (including its slot)."""
        directory_start = PAGE_SIZE - self.slot_count * _SLOT.size
        return max(0, directory_start - self.free_offset - _SLOT.size)

    def insert(self, record: bytes) -> Optional[int]:
        """Insert a record; returns its slot or None when full."""
        if len(record) > self.free_space():
            return None
        offset = self.free_offset
        self._buf[offset:offset + len(record)] = record
        slot = self.slot_count
        self.slot_count += 1
        self.free_offset = offset + len(record)
        _SLOT.pack_into(self._buf, self._slot_position(slot), offset,
                        len(record))
        self._store_header()
        return slot

    def read(self, slot: int) -> bytes:
        """Read a record by slot (StorageError when deleted)."""
        offset, length = self._read_slot(slot)
        if offset == _DELETED:
            raise StorageError(f"slot {slot} is deleted")
        return bytes(self._buf[offset:offset + length])

    def delete(self, slot: int) -> None:
        """Mark a slot deleted (space is reclaimed on page rebuild)."""
        self._read_slot(slot)  # range check
        _SLOT.pack_into(self._buf, self._slot_position(slot), _DELETED, 0)

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Iterate live ``(slot, record)`` pairs."""
        for slot in range(self.slot_count):
            offset, length = self._read_slot(slot)
            if offset != _DELETED:
                yield (slot, bytes(self._buf[offset:offset + length]))

    def to_bytes(self) -> bytes:
        """The raw page image, with a freshly stamped CRC32."""
        self._store_header(crc=self._compute_crc())
        return bytes(self._buf)


RecordId = Tuple[int, int]  # (page number, slot)

#: Usable record payload bound (page minus header minus one slot).
MAX_RECORD = PAGE_SIZE - _PAGE_HEADER.size - _SLOT.size


class RecordFile:
    """Record-id addressed storage over a :class:`PageFile`.

    Reads retry on :class:`TransientIOError` with bounded exponential
    backoff (*max_retries* attempts beyond the first, starting at
    *retry_backoff* seconds and doubling), so a storage layer with
    sporadic read faults — see :class:`repro.storage.faults.FaultyPageFile`
    — still serves records; persistent faults surface after the budget.

    *sleep* is the delay function the backoff uses; tests inject a fake
    to assert the schedule (1ms, 2ms, 4ms, ...) without burning
    wall-clock time.
    """

    def __init__(
        self,
        pagefile: PageFile,
        max_retries: int = 5,
        retry_backoff: float = 0.001,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.pagefile = pagefile
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.sleep = sleep
        self.retries_performed = 0
        self._data_pages: List[int] = [
            p for p in range(1, pagefile.num_pages)
        ]
        self._last_page: Optional[int] = (
            self._data_pages[-1] if self._data_pages else None
        )

    def _read_page(self, page_no: int) -> bytes:
        """Read one page, retrying transient faults with backoff."""
        attempt = 0
        while True:
            try:
                return self.pagefile.read_page(page_no)
            except TransientIOError:
                if attempt >= self.max_retries:
                    raise
                if self.retry_backoff > 0:
                    self.sleep(self.retry_backoff * (2 ** attempt))
                attempt += 1
                self.retries_performed += 1

    def insert(self, record: bytes) -> RecordId:
        """Append a record, allocating pages as needed."""
        if len(record) > MAX_RECORD:
            raise StorageError(
                f"record of {len(record)} bytes exceeds page capacity"
            )
        if self._last_page is not None:
            page = SlottedPage(self._read_page(self._last_page))
            slot = page.insert(record)
            if slot is not None:
                self.pagefile.write_page(self._last_page, page.to_bytes())
                return (self._last_page, slot)
        page_no = self.pagefile.allocate_page()
        self._data_pages.append(page_no)
        self._last_page = page_no
        page = SlottedPage()
        slot = page.insert(record)
        assert slot is not None
        self.pagefile.write_page(page_no, page.to_bytes())
        return (page_no, slot)

    def read(self, record_id: RecordId) -> bytes:
        """Read a record by id."""
        page_no, slot = record_id
        page = SlottedPage(self._read_page(page_no))
        return page.read(slot)

    def delete(self, record_id: RecordId) -> None:
        """Delete a record by id."""
        page_no, slot = record_id
        page = SlottedPage(self._read_page(page_no))
        page.delete(slot)
        self.pagefile.write_page(page_no, page.to_bytes())

    def scan(self) -> Iterator[Tuple[RecordId, bytes]]:
        """Iterate all live records in page order."""
        for page_no in self._data_pages:
            page = SlottedPage(self._read_page(page_no))
            for slot, record in page.records():
                yield ((page_no, slot), record)
