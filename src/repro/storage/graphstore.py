"""Graph persistence over slotted pages, with locality clustering.

Builds on :mod:`repro.storage.pager` to answer the Section 7 question of
how to lay graphs out on disk:

* nodes and edges are binary records (a compact tag/attribute encoding);
* a **clustering policy** decides record order: ``"insertion"`` writes
  nodes as declared, ``"bfs"`` writes them in breadth-first order so a
  node and its neighborhood co-locate on pages — the locality heuristic
  the paper suggests for decomposing a large graph into chunks;
* :meth:`GraphStore.neighborhood_page_span` measures the effect: the
  average number of distinct pages a radius-1 neighborhood touches.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..core.collection import GraphCollection
from ..core.graph import Graph
from ..core.tuples import AttributeTuple
from .pager import PageFile, RecordFile, StorageError
from .wal import RecoveryResult, WriteAheadLog, recover, wal_path_for

_TYPE_INT = 0
_TYPE_FLOAT = 1
_TYPE_STR = 2
_TYPE_BOOL = 3

_REC_GRAPH = 0
_REC_NODE = 1
_REC_EDGE = 2
_REC_DOC = 3


def _encode_value(value: Any) -> bytes:
    if isinstance(value, bool):
        return struct.pack("<BB", _TYPE_BOOL, int(value))
    if isinstance(value, int):
        return struct.pack("<Bq", _TYPE_INT, value)
    if isinstance(value, float):
        return struct.pack("<Bd", _TYPE_FLOAT, value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return struct.pack("<BH", _TYPE_STR, len(raw)) + raw
    raise StorageError(f"cannot encode value of type {type(value).__name__}")


def _decode_value(buf: bytes, offset: int) -> Tuple[Any, int]:
    kind = buf[offset]
    offset += 1
    if kind == _TYPE_BOOL:
        return (bool(buf[offset]), offset + 1)
    if kind == _TYPE_INT:
        (value,) = struct.unpack_from("<q", buf, offset)
        return (value, offset + 8)
    if kind == _TYPE_FLOAT:
        (value,) = struct.unpack_from("<d", buf, offset)
        return (value, offset + 8)
    if kind == _TYPE_STR:
        (length,) = struct.unpack_from("<H", buf, offset)
        offset += 2
        return (buf[offset:offset + length].decode("utf-8"), offset + length)
    raise StorageError(f"unknown value type tag {kind}")


def _encode_str(text: Optional[str]) -> bytes:
    raw = (text or "").encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _decode_str(buf: bytes, offset: int) -> Tuple[Optional[str], int]:
    (length,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    text = buf[offset:offset + length].decode("utf-8")
    return (text or None, offset + length)


def _encode_tuple(attrs: AttributeTuple) -> bytes:
    parts = [_encode_str(attrs.tag), struct.pack("<H", len(attrs))]
    for name, value in attrs.items():
        parts.append(_encode_str(name))
        parts.append(_encode_value(value))
    return b"".join(parts)


def _decode_tuple(buf: bytes, offset: int) -> Tuple[AttributeTuple, int]:
    tag, offset = _decode_str(buf, offset)
    (count,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    attrs: Dict[str, Any] = {}
    for _ in range(count):
        name, offset = _decode_str(buf, offset)
        value, offset = _decode_value(buf, offset)
        attrs[name or ""] = value
    return (AttributeTuple(attrs, tag=tag), offset)


def encode_node(node_id: str, attrs: AttributeTuple) -> bytes:
    """Binary node record."""
    return bytes([_REC_NODE]) + _encode_str(node_id) + _encode_tuple(attrs)


def encode_edge(edge_id: str, source: str, target: str,
                attrs: AttributeTuple) -> bytes:
    """Binary edge record."""
    return (bytes([_REC_EDGE]) + _encode_str(edge_id) + _encode_str(source)
            + _encode_str(target) + _encode_tuple(attrs))


def encode_graph_header(name: Optional[str], directed: bool,
                        attrs: AttributeTuple, version: int = 0) -> bytes:
    """Binary graph-header record.

    *version* persists :attr:`Graph.version` at save time, so a reload
    (including crash recovery) restores a mutation counter no smaller
    than any the running system handed out for this graph — service
    caches keyed on the version can never alias across a recovery.
    Records written before this field existed decode as version 0.
    """
    return (bytes([_REC_GRAPH]) + _encode_str(name)
            + struct.pack("<B", int(directed)) + _encode_tuple(attrs)
            + struct.pack("<Q", version))


def encode_document_marker(name: str) -> bytes:
    """Binary document-boundary record.

    Marks the start of a full snapshot of one named document; the
    snapshot runs until the next marker.  Re-registering a document
    appends a fresh snapshot, and :meth:`GraphStore.load_documents`
    keeps the last one per name (the store is log-structured).
    """
    return bytes([_REC_DOC]) + _encode_str(name)


class GraphStore:
    """Persist and reload graphs in a page file.

    With ``durable=True`` the store opens with crash recovery (replaying
    the write-ahead log next to the page file), wraps every save in a
    WAL transaction, and exposes :meth:`checkpoint`.  *fsync* is the
    durability/throughput trade-off (``always``/``commit``/``never``,
    see :mod:`repro.storage.wal`); *crashpoint* threads a
    :class:`~repro.storage.faults.CrashPoint` into both the page file
    and the log for the crash-fuzz harness.
    """

    def __init__(self, path: str, clustering: str = "bfs",
                 durable: bool = False, fsync: str = "commit",
                 run_recovery: bool = True, crashpoint=None) -> None:
        if clustering not in ("bfs", "insertion"):
            raise ValueError(f"unknown clustering policy {clustering!r}")
        self.clustering = clustering
        self.durable = durable
        self.recovery: Optional[RecoveryResult] = None
        self.checkpoints = 0
        if durable:
            if run_recovery:
                self.recovery = recover(path, sync=fsync != "never")
            self.pagefile = PageFile(path, fsync=fsync)
            wal = WriteAheadLog(wal_path_for(path), fsync=fsync)
            if crashpoint is not None:
                self.pagefile.crashpoint = crashpoint
                wal.crashpoint = crashpoint
            self.pagefile.attach_wal(wal)
        else:
            self.pagefile = PageFile(path)
        self.records = RecordFile(self.pagefile)
        self._node_pages: Dict[str, int] = {}

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        """The attached write-ahead log (durable stores only)."""
        return self.pagefile.wal

    @property
    def store_version(self) -> int:
        """Committed-transaction counter from the page-file header."""
        return self.pagefile.store_version

    # -- writing -----------------------------------------------------------------

    def node_order(self, graph: Graph) -> List[str]:
        """The record order the clustering policy chooses."""
        if self.clustering == "insertion":
            return graph.node_ids()
        order: List[str] = []
        seen = set()
        for root in graph.node_ids():
            if root in seen:
                continue
            seen.add(root)
            queue = deque([root])
            while queue:
                node_id = queue.popleft()
                order.append(node_id)
                for neighbor in graph.all_neighbors(node_id):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        queue.append(neighbor)
        return order

    def _write_graph(self, graph: Graph) -> None:
        self.records.insert(
            encode_graph_header(graph.name, graph.directed, graph.tuple,
                                version=graph.version)
        )
        for node_id in self.node_order(graph):
            record_id = self.records.insert(
                encode_node(node_id, graph.node(node_id).tuple)
            )
            self._node_pages[node_id] = record_id[0]
        for edge in graph.edges():
            self.records.insert(
                encode_edge(edge.id, edge.source, edge.target, edge.tuple)
            )

    def save(self, graph: Graph) -> None:
        """Write one graph (header, nodes in cluster order, edges).

        On a durable store the whole graph is one WAL transaction: a
        crash anywhere inside leaves either the previous committed state
        or the complete new graph, never a torn middle.
        """
        if self.durable:
            self.pagefile.begin()
            try:
                self._write_graph(graph)
            except BaseException:
                self.pagefile.abort()
                raise
            self.pagefile.commit()
            return
        self._write_graph(graph)

    def save_document(self, name: str,
                      graphs: Union[GraphCollection, List[Graph]]) -> None:
        """Write a full snapshot of one named document atomically.

        One WAL transaction covers the document marker and every member
        graph (plain append without a marker on non-durable stores).
        """
        def write_all() -> None:
            self.records.insert(encode_document_marker(name))
            for graph in graphs:
                self._write_graph(graph)

        if not self.durable:
            write_all()
            return
        self.pagefile.begin()
        try:
            write_all()
        except BaseException:
            self.pagefile.abort()
            raise
        self.pagefile.commit()

    # -- reading ------------------------------------------------------------------

    def _scan_events(self) -> Iterator[Tuple[str, Any]]:
        """Decode the record stream into ``("doc", name)`` and
        ``("graph", graph)`` events (edges resolved, versions restored)."""
        current: Optional[Graph] = None
        pending_edges: List[Tuple[str, str, str, AttributeTuple]] = []
        saved_version = 0

        def finish(graph: Optional[Graph]) -> Optional[Graph]:
            if graph is None:
                return None
            for edge_id, source, target, attrs in pending_edges:
                edge = graph.add_edge(source, target, edge_id=edge_id)
                edge.tuple = attrs
            pending_edges.clear()
            # rebuilding performs at most as many mutations as the saved
            # graph had seen, so restoring the saved counter never goes
            # backwards — versions stay monotone across recoveries
            graph.version = max(graph.version, saved_version)
            return graph

        for _record_id, raw in self.records.scan():
            kind = raw[0]
            if kind == _REC_DOC:
                done = finish(current)
                current = None
                if done is not None:
                    yield ("graph", done)
                name, _ = _decode_str(raw, 1)
                yield ("doc", name or "")
            elif kind == _REC_GRAPH:
                done = finish(current)
                if done is not None:
                    yield ("graph", done)
                name, offset = _decode_str(raw, 1)
                (directed,) = struct.unpack_from("<B", raw, offset)
                offset += 1
                attrs, offset = _decode_tuple(raw, offset)
                saved_version = 0
                if offset + 8 <= len(raw):  # pre-versioning records end here
                    (saved_version,) = struct.unpack_from("<Q", raw, offset)
                current = Graph(name, attrs, directed=bool(directed))
            elif kind == _REC_NODE:
                if current is None:
                    raise StorageError("node record before graph header")
                node_id, offset = _decode_str(raw, 1)
                attrs, _ = _decode_tuple(raw, offset)
                node = current.add_node(node_id)
                node.tuple = attrs
            elif kind == _REC_EDGE:
                if current is None:
                    raise StorageError("edge record before graph header")
                edge_id, offset = _decode_str(raw, 1)
                source, offset = _decode_str(raw, offset)
                target, offset = _decode_str(raw, offset)
                attrs, _ = _decode_tuple(raw, offset)
                pending_edges.append((edge_id or "", source or "",
                                      target or "", attrs))
            else:
                raise StorageError(f"unknown record kind {kind}")
        done = finish(current)
        if done is not None:
            yield ("graph", done)

    def load_all(self) -> List[Graph]:
        """Reload every graph stored in the file (markers ignored)."""
        return [item for event, item in self._scan_events()
                if event == "graph"]

    def load_documents(self) -> Dict[str, GraphCollection]:
        """Reload named documents (last snapshot per name wins).

        Graphs saved outside any document marker fall back to a document
        named after the graph (anonymous graphs group under ``"data"``).
        """
        documents: Dict[str, GraphCollection] = {}
        current_doc: Optional[str] = None
        for event, item in self._scan_events():
            if event == "doc":
                current_doc = item
                documents[item] = GraphCollection(name=item)
            else:
                if current_doc is None:
                    name = item.name or "data"
                    documents.setdefault(name, GraphCollection(name=name))
                    documents[name].add(item)
                else:
                    documents[current_doc].add(item)
        return documents

    # -- locality measurement ------------------------------------------------------

    def neighborhood_page_span(self, graph: Graph) -> float:
        """Average distinct pages a radius-1 neighborhood touches.

        Lower is better: with BFS clustering, neighbors tend to share
        pages, so traversals fault fewer pages.
        """
        if not self._node_pages:
            raise StorageError("save a graph before measuring locality")
        total = 0
        counted = 0
        for node_id in graph.node_ids():
            pages = {self._node_pages[node_id]}
            for neighbor in graph.all_neighbors(node_id):
                pages.add(self._node_pages[neighbor])
            total += len(pages)
            counted += 1
        return total / counted if counted else 0.0

    def checkpoint(self) -> int:
        """Sync pages, truncate the WAL; returns log bytes freed."""
        freed = self.pagefile.checkpoint()
        if self.durable:
            self.checkpoints += 1
        return freed

    def close(self, checkpoint: bool = True) -> None:
        """Close the underlying page file (and WAL).

        A durable store checkpoints first by default, so a cleanly
        closed store restarts with an empty log and a no-op recovery.
        """
        if self.durable and checkpoint and not self.pagefile.in_transaction:
            self.checkpoint()
        self.pagefile.close()

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
