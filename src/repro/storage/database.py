"""The graph database facade.

A :class:`GraphDatabase` holds named collections (a single large graph is
a one-graph collection — the paper treats the two uniformly), resolves
``doc(name)`` for FLWR queries, caches per-graph access-method state
(matchers with their indexes and statistics), and runs GraphQL text
end-to-end.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.collection import GraphCollection
from ..core.graph import Graph
from ..core.pattern import GraphPattern, GroundPattern
from ..lang.compiler import compile_pattern_text, compile_program
from ..matching.planner import GraphMatcher, MatchOptions, MatchReport
from ..runtime import ExecutionContext
from .graphstore import GraphStore
from .serializer import _atomic_write_text, load_collection, save_collection
from .wal import RecoveryResult


class GraphDatabase:
    """Named collections of graphs plus cached access methods."""

    #: Collections with at least this many graphs get a path index for
    #: filter+verify selection (the paper's category-1 access method).
    COLLECTION_INDEX_THRESHOLD = 32

    def __init__(self) -> None:
        self._collections: Dict[str, GraphCollection] = {}
        self._matchers: Dict[int, GraphMatcher] = {}
        self._collection_indexes: Dict[str, "object"] = {}
        self._store: Optional[GraphStore] = None
        #: what opening the durable store found/repaired (see
        #: :meth:`attach_durable`); ``None`` until a store is attached
        self.recovery: Optional[RecoveryResult] = None

    # -- collection management ----------------------------------------------------

    def register(self, name: str, collection: Union[GraphCollection, Graph]) -> None:
        """Register a collection (or a single large graph) under a name."""
        if isinstance(collection, Graph):
            collection = GraphCollection([collection], name=name)
        collection.name = collection.name or name
        self._collections[name] = collection

    def doc(self, name: str) -> GraphCollection:
        """Resolve ``doc(name)`` (FLWR data source)."""
        if name not in self._collections:
            raise KeyError(f"unknown document {name!r}")
        return self._collections[name]

    def names(self) -> list:
        """All registered document names."""
        return list(self._collections)

    def load(self, name: str, path: Union[str, Path], directed: bool = False) -> None:
        """Load a collection from a GraphQL text file."""
        self.register(name, load_collection(path, directed=directed))

    def save(self, name: str, path: Union[str, Path]) -> None:
        """Save a collection to a GraphQL text file."""
        save_collection(self.doc(name), path)

    def save_all(self, directory: Union[str, Path]) -> None:
        """Persist every collection to a directory (one ``.gql`` file per
        document plus a ``MANIFEST`` listing names and directedness)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest_lines = []
        for name in self.names():
            collection = self.doc(name)
            directed = any(g.directed for g in collection)
            filename = f"{name}.gql"
            save_collection(collection, directory / filename)
            manifest_lines.append(f"{name}\t{filename}\t{int(directed)}")
        _atomic_write_text(directory / "MANIFEST",
                           "\n".join(manifest_lines) + "\n")

    # -- the durable-mutation path ---------------------------------------------

    @property
    def durable_store(self) -> Optional[GraphStore]:
        """The attached WAL-backed store, or ``None``."""
        return self._store

    def attach_durable(self, path: Union[str, Path],
                       fsync: str = "commit",
                       clustering: str = "bfs") -> RecoveryResult:
        """Open a WAL-backed :class:`GraphStore` as the mutation backend.

        Recovery runs first (replaying committed transactions, cutting
        torn tails), then every document the store holds is registered —
        with each graph's persisted :attr:`Graph.version` restored, so
        version-keyed caches stay monotone across the restart.  Further
        :meth:`register_durable` calls write through the store before
        the in-memory registration becomes visible.
        """
        if self._store is not None:
            raise RuntimeError("a durable store is already attached")
        store = GraphStore(str(path), clustering=clustering,
                           durable=True, fsync=fsync)
        self._store = store
        self.recovery = store.recovery
        for name, collection in store.load_documents().items():
            self.register(name, collection)
        return store.recovery

    def register_durable(self, name: str,
                         collection: Union[GraphCollection, Graph]) -> None:
        """Persist a document through the WAL, then register it.

        The store write is one transaction (document marker + every
        member graph): a crash leaves either the previous registered
        snapshot or the complete new one.  Write-through ordering means
        a registration that returned is durable.
        """
        if self._store is None:
            raise RuntimeError(
                "no durable store attached (call attach_durable first)")
        if isinstance(collection, Graph):
            collection = GraphCollection([collection], name=name)
        self._store.save_document(name, list(collection))
        self.register(name, collection)

    def checkpoint(self) -> int:
        """Checkpoint the durable store; returns WAL bytes freed."""
        if self._store is None:
            return 0
        return self._store.checkpoint()

    def close_store(self, checkpoint: bool = True) -> None:
        """Checkpoint (by default) and close the durable store."""
        if self._store is None:
            return
        store, self._store = self._store, None
        store.close(checkpoint=checkpoint)

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "GraphDatabase":
        """Reopen a database directory written by :meth:`save_all`."""
        directory = Path(directory)
        manifest = directory / "MANIFEST"
        if not manifest.exists():
            raise FileNotFoundError(f"no MANIFEST in {directory}")
        database = cls()
        for line in manifest.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            name, filename, directed = line.split("\t")
            database.load(name, directory / filename,
                          directed=bool(int(directed)))
        return database

    # -- access methods --------------------------------------------------------------

    def matcher_for(self, graph: Graph, radius: int = 1) -> GraphMatcher:
        """The cached access-method pipeline for one data graph."""
        key = id(graph)
        matcher = self._matchers.get(key)
        if matcher is None or matcher.profile_index is None or (
            matcher.profile_index.radius != radius
        ):
            matcher = GraphMatcher(graph, radius=radius)
            self._matchers[key] = matcher
        return matcher

    def match(
        self,
        document: str,
        pattern: Union[GraphPattern, GroundPattern, str],
        options: Optional[MatchOptions] = None,
        context: Optional[ExecutionContext] = None,
    ) -> Dict[str, MatchReport]:
        """Match a pattern against every graph of a document.

        Returns one :class:`MatchReport` per graph, keyed by graph name
        (or positional index when unnamed).  Pattern text is compiled on
        the fly.  A *context* is shared by the per-graph searches: once
        it trips, remaining graphs are skipped and each produced report
        carries the outcome snapshot at the time it finished.
        """
        if isinstance(pattern, str):
            pattern = compile_pattern_text(pattern)
        reports: Dict[str, MatchReport] = {}
        for position, graph in enumerate(self.doc(document)):
            if context is not None and context.is_interrupted:
                break
            matcher = self.matcher_for(graph)
            if isinstance(pattern, GroundPattern):
                report = matcher.match(pattern, options, context=context)
            else:
                report = matcher.match_pattern(pattern, options,
                                               context=context)
            reports[graph.name or f"#{position}"] = report
        return reports

    def collection_index_for(self, document: str, max_length: int = 3):
        """The cached path index of a document (built on first use).

        Only collections of at least :data:`COLLECTION_INDEX_THRESHOLD`
        graphs are indexed; smaller ones return ``None`` (scanning wins).
        """
        from ..index.path_index import PathIndex

        collection = self.doc(document)
        if len(collection) < self.COLLECTION_INDEX_THRESHOLD:
            return None
        index = self._collection_indexes.get(document)
        if index is None or index.collection is not collection:
            index = PathIndex(collection, max_length=max_length)
            self._collection_indexes[document] = index
        return index

    def select(
        self,
        document: str,
        pattern: Union[GraphPattern, GroundPattern, str],
        exhaustive: bool = True,
        context: Optional[ExecutionContext] = None,
    ) -> GraphCollection:
        """σ_P over a document, using filter+verify for big collections.

        Small collections (and patterns without label constraints) fall
        back to a plain scan; results are identical either way.  When the
        collection path index cannot be built (e.g. a storage fault), the
        selection degrades to the plain scan instead of failing.
        """
        from ..core.algebra import select as scan_select

        if isinstance(pattern, str):
            pattern = compile_pattern_text(pattern)
        if isinstance(pattern, GraphPattern):
            grounds = pattern.ground()
        else:
            grounds = [pattern]
        try:
            index = self.collection_index_for(document)
        except Exception:
            index = None
        if index is None:
            out = GraphCollection()
            for ground in grounds:
                out.extend(scan_select(self.doc(document), ground,
                                       exhaustive=exhaustive,
                                       context=context))
            return out
        out = GraphCollection()
        for ground in grounds:
            if context is not None and context.is_interrupted:
                break
            out.extend(index.select(ground, exhaustive=exhaustive))
        return out

    # -- full query execution ------------------------------------------------------------

    def query(
        self,
        source: str,
        env: Optional[Dict[str, Any]] = None,
        context: Optional[ExecutionContext] = None,
    ) -> Dict[str, Any]:
        """Compile and run a GraphQL program; returns the environment.

        The last statement's value is available under ``"__result__"``.
        With a *context*, an interrupted run returns the environment as
        built so far (``context.outcome()`` tells why it stopped).
        """
        compiled = compile_program(source)
        return compiled.run(self, env, context=context)
