"""A buffer pool: LRU page caching over a :class:`PageFile`.

Completes the Section 7 storage stack: disk-resident systems read pages
through a buffer pool, so layout quality shows up as hit rate.  The pool
wraps a page file with the same interface (``read_page`` / ``write_page``
/ ``allocate_page``), caches page images with LRU eviction, writes back
dirty pages on eviction and close, and counts hits/misses/evictions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from .pager import PAGE_SIZE, PageFile


class BufferStats:
    """Hit/miss counters for one buffer pool."""

    __slots__ = ("hits", "misses", "evictions", "writebacks")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"BufferStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.2%})"
        )


class BufferPool:
    """LRU page cache in front of a page file."""

    def __init__(self, pagefile: PageFile, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.pagefile = pagefile
        self.capacity = capacity
        self.stats = BufferStats()
        self._frames: "OrderedDict[int, bytearray]" = OrderedDict()
        self._dirty: Dict[int, bool] = {}

    # -- the PageFile interface -----------------------------------------------

    @property
    def num_pages(self) -> int:
        """Total pages in the underlying file."""
        return self.pagefile.num_pages

    def read_page(self, page_no: int) -> bytes:
        """Read through the cache."""
        frame = self._frames.get(page_no)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(page_no)
            return bytes(frame)
        self.stats.misses += 1
        data = self.pagefile.read_page(page_no)
        self._admit(page_no, bytearray(data), dirty=False)
        return data

    def write_page(self, page_no: int, data: bytes) -> None:
        """Write into the cache (flushed on eviction/close)."""
        if len(data) != PAGE_SIZE:
            raise ValueError("page data must be exactly PAGE_SIZE bytes")
        frame = self._frames.get(page_no)
        if frame is not None:
            frame[:] = data
            self._frames.move_to_end(page_no)
        else:
            self._admit(page_no, bytearray(data), dirty=True)
            return
        self._dirty[page_no] = True

    def allocate_page(self) -> int:
        """Allocate in the underlying file."""
        return self.pagefile.allocate_page()

    def free_page(self, page_no: int) -> None:
        """Free in the underlying file, dropping any cached frame."""
        self._frames.pop(page_no, None)
        self._dirty.pop(page_no, None)
        self.pagefile.free_page(page_no)

    # -- cache mechanics ----------------------------------------------------------

    def _admit(self, page_no: int, frame: bytearray, dirty: bool) -> None:
        while len(self._frames) >= self.capacity:
            victim, victim_frame = self._frames.popitem(last=False)
            self.stats.evictions += 1
            if self._dirty.pop(victim, False):
                self.stats.writebacks += 1
                self.pagefile.write_page(victim, bytes(victim_frame))
        self._frames[page_no] = frame
        self._dirty[page_no] = dirty

    def flush(self) -> None:
        """Write back every dirty frame (cache content retained)."""
        for page_no, frame in self._frames.items():
            if self._dirty.get(page_no):
                self.pagefile.write_page(page_no, bytes(frame))
                self.stats.writebacks += 1
                self._dirty[page_no] = False

    def close(self) -> None:
        """Flush and close the underlying file."""
        self.flush()
        self.pagefile.close()

    def __enter__(self) -> "BufferPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
