"""Text serialization of graphs and collections in GraphQL syntax.

Graphs round-trip through the language's own concrete syntax (the same
declarations the parser reads), so a saved database is also a readable
GraphQL document.  Collections are stored as a sequence of graph
declarations in one file.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Any, List, Union

from ..core.collection import GraphCollection
from ..core.graph import Graph
from ..core.tuples import AttributeTuple
from ..lang.compiler import compile_graph
from ..lang.parser import parse_program
from ..lang.ast import GraphDeclAst


def _format_value(value: Any) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, bool):
        return "1" if value else "0"
    return repr(value)


def _format_tuple(attrs: AttributeTuple) -> str:
    if attrs.tag is None and len(attrs) == 0:
        return ""
    parts: List[str] = []
    if attrs.tag is not None:
        parts.append(attrs.tag)
    parts.extend(f"{name}={_format_value(value)}" for name, value in attrs.items())
    return " <" + " ".join(parts) + ">"


def graph_to_text(graph: Graph) -> str:
    """Render a graph as a GraphQL declaration."""
    name = f" {graph.name}" if graph.name else ""
    lines = [f"graph{name}{_format_tuple(graph.tuple)} {{"]
    for node in graph.nodes():
        lines.append(f"  node {node.id}{_format_tuple(node.tuple)};")
    for edge in graph.edges():
        lines.append(
            f"  edge {edge.id} ({edge.source}, {edge.target})"
            f"{_format_tuple(edge.tuple)};"
        )
    lines.append("};")
    return "\n".join(lines)


def graph_from_text(text: str, directed: bool = False) -> Graph:
    """Parse one graph declaration back into a graph."""
    from ..lang.parser import parse_graph_decl

    return compile_graph(parse_graph_decl(text), directed=directed)


def collection_to_text(collection: GraphCollection) -> str:
    """Render a collection as consecutive graph declarations."""
    return "\n\n".join(graph_to_text(g) for g in collection)


def collection_from_text(text: str, directed: bool = False) -> GraphCollection:
    """Parse consecutive graph declarations into a collection."""
    ast = parse_program(text)
    collection = GraphCollection()
    for statement in ast.statements:
        if not isinstance(statement, GraphDeclAst):
            raise ValueError(
                f"collection files may only contain graph declarations, "
                f"found {type(statement).__name__}"
            )
        collection.add(compile_graph(statement, directed=directed))
    return collection


def _atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Replace *path*'s contents all-or-nothing.

    The text is written to a temporary file in the *same directory*
    (``os.replace`` must not cross filesystems), flushed and fsynced,
    then renamed over the target — so a crash at any point leaves either
    the complete old file or the complete new one, never a truncated
    mix.  The temporary file is removed on failure.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp",
                               dir=str(path.parent) or ".")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_collection(collection: GraphCollection, path: Union[str, Path]) -> None:
    """Write a collection to a file (atomically: temp file + rename)."""
    _atomic_write_text(path, collection_to_text(collection) + "\n")


def load_collection(path: Union[str, Path], directed: bool = False) -> GraphCollection:
    """Read a collection from a file."""
    return collection_from_text(Path(path).read_text(encoding="utf-8"), directed)


def save_graph(graph: Graph, path: Union[str, Path]) -> None:
    """Write one graph to a file (atomically: temp file + rename)."""
    _atomic_write_text(path, graph_to_text(graph) + "\n")


def load_graph(path: Union[str, Path], directed: bool = False) -> Graph:
    """Read one graph from a file."""
    return graph_from_text(Path(path).read_text(encoding="utf-8"), directed)
