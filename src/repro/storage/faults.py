"""Storage fault injection: exercising the corruption/recovery paths.

A disk-resident system's corruption handling is only trustworthy if the
error paths actually run.  :class:`FaultyPageFile` wraps the page file
with deterministic, seeded fault injection:

* **transient read faults** (*read_error_rate*) — raise
  :class:`~repro.storage.pager.TransientIOError`; each call re-rolls, so
  a retrying reader (:class:`~repro.storage.pager.RecordFile`) recovers;
* **persistent write faults** (*write_error_rate*) — raise
  :class:`~repro.storage.pager.StorageError` before touching the file;
* **torn pages** (*torn_write_rate*) — silently persist only a prefix of
  the page, the classic partial-write failure; the per-page CRC32 in
  :class:`~repro.storage.pager.SlottedPage` detects it on the next read;
* **bit flips** (*corrupt_read_rate*) — flip one random bit in the data
  returned from a read (the file itself stays intact), modelling bus or
  media bit rot; again caught by the page CRC.

The header page (page 0) is exempt from torn/bit-flip corruption by
default so a harnessed file stays openable; set ``corrupt_header=True``
to remove even that mercy.

Usage::

    pf = FaultyPageFile(path, read_error_rate=0.05, seed=7)
    rf = RecordFile(pf)          # retries ride over the 5% faults
    ...
    pf.stats.read_faults         # how many faults were injected
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from contextlib import contextmanager
from typing import Callable

from .pager import PAGE_SIZE, PageFile, StorageError, TransientIOError


class SimulatedCrash(StorageError):
    """The write path was killed by a :class:`CrashPoint`.

    Models a power cut / SIGKILL: the operation in flight may have
    persisted only a prefix, and **nothing after it runs** — every
    further guarded operation raises again, like a dead process.  The
    harness abandons the live objects and reopens the files through
    recovery, exactly as a restarted process would.
    """


class CrashPoint:
    """Kill the storage write path after N guarded operations.

    Page-file writes, WAL appends and fsyncs each count as one
    operation.  Operations ``1..crash_after-1`` proceed normally;
    operation ``crash_after`` crashes: a *write* persists only a
    seeded-random prefix (``tear=True``, the torn-write case — possibly
    the empty prefix) before :class:`SimulatedCrash` is raised, a
    *barrier* (fsync) raises before syncing.  A budget larger than the
    workload never trips — which is how a harness counts a workload's
    total operations.
    """

    def __init__(self, crash_after: int, tear: bool = True,
                 seed: int = 0) -> None:
        if crash_after < 1:
            raise ValueError("crash_after must be >= 1")
        self.crash_after = crash_after
        self.tear = tear
        self.ops = 0
        self.tripped = False
        self._rng = random.Random(seed)

    def _arm(self) -> bool:
        """Count one operation; True when this one must crash."""
        if self.tripped:
            raise SimulatedCrash("process already crashed")
        self.ops += 1
        if self.ops >= self.crash_after:
            self.tripped = True
            return True
        return False

    def write(self, write: Callable[[bytes], object], data: bytes) -> None:
        """Guard one file write (the crashing write tears first)."""
        if not self._arm():
            write(data)
            return
        if self.tear and data:
            prefix = data[:self._rng.randrange(0, len(data))]
        else:
            prefix = b"" if self.tear else data
        if prefix:
            write(prefix)
        raise SimulatedCrash(
            f"simulated crash on write op {self.ops} "
            f"({len(prefix)}/{len(data)} bytes persisted)"
        )

    def barrier(self, sync: Callable[[], object]) -> None:
        """Guard one fsync (the crashing barrier never syncs)."""
        if self._arm():
            raise SimulatedCrash(
                f"simulated crash on sync op {self.ops}")
        sync()


@dataclass
class FaultStats:
    """Counters of injected faults (for assertions in tests)."""

    read_faults: int = 0
    write_faults: int = 0
    torn_pages: int = 0
    bit_flips: int = 0
    torn_page_numbers: list = field(default_factory=list)

    @property
    def total(self) -> int:
        """All injected faults."""
        return (self.read_faults + self.write_faults
                + self.torn_pages + self.bit_flips)


class FaultyPageFile(PageFile):
    """A :class:`PageFile` with seeded, configurable fault injection."""

    def __init__(
        self,
        path: str,
        read_error_rate: float = 0.0,
        write_error_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        corrupt_read_rate: float = 0.0,
        corrupt_header: bool = False,
        seed: int = 0,
    ) -> None:
        for name, rate in (("read_error_rate", read_error_rate),
                           ("write_error_rate", write_error_rate),
                           ("torn_write_rate", torn_write_rate),
                           ("corrupt_read_rate", corrupt_read_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.read_error_rate = read_error_rate
        self.write_error_rate = write_error_rate
        self.torn_write_rate = torn_write_rate
        self.corrupt_read_rate = corrupt_read_rate
        self.corrupt_header = corrupt_header
        self.stats = FaultStats()
        self._rng = random.Random(seed)
        self._armed = False  # keep construction (header I/O) fault-free
        super().__init__(path)
        self._armed = True

    @contextmanager
    def suspended(self):
        """Temporarily disable injection (test setup/verification)."""
        was_armed = self._armed
        self._armed = False
        try:
            yield self
        finally:
            self._armed = was_armed

    # -- injected I/O ---------------------------------------------------------

    def read_page(self, page_no: int) -> bytes:
        if self._armed and self._rng.random() < self.read_error_rate:
            self.stats.read_faults += 1
            raise TransientIOError(
                f"injected transient read fault on page {page_no}"
            )
        data = super().read_page(page_no)
        if (self._armed
                and (page_no != 0 or self.corrupt_header)
                and self._rng.random() < self.corrupt_read_rate):
            self.stats.bit_flips += 1
            position = self._rng.randrange(len(data))
            flipped = bytearray(data)
            flipped[position] ^= 1 << self._rng.randrange(8)
            return bytes(flipped)
        return data

    def write_page(self, page_no: int, data: bytes) -> None:
        if self._armed and self._rng.random() < self.write_error_rate:
            self.stats.write_faults += 1
            raise StorageError(
                f"injected write failure on page {page_no}"
            )
        if (self._armed
                and (page_no != 0 or self.corrupt_header)
                and self._rng.random() < self.torn_write_rate):
            # a torn write: only a prefix of the page reaches the disk,
            # and the caller is not told — exactly how a power cut
            # mid-write looks.  The page CRC catches it on read.
            self.stats.torn_pages += 1
            self.stats.torn_page_numbers.append(page_no)
            prefix_len = self._rng.randrange(1, PAGE_SIZE)
            torn = data[:prefix_len] + self._stale_suffix(page_no, prefix_len)
            super().write_page(page_no, torn)
            return
        super().write_page(page_no, data)

    def _stale_suffix(self, page_no: int, prefix_len: int) -> bytes:
        """What the un-written tail of a torn page still holds on disk."""
        with self.suspended():
            try:
                old = super().read_page(page_no)
            except StorageError:
                old = b"\x00" * PAGE_SIZE
        return old[prefix_len:]
