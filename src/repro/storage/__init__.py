"""Persistence: GraphQL-syntax serialization and the database facade."""

from .buffer import BufferPool, BufferStats
from .database import GraphDatabase
from .graphstore import GraphStore
from .pager import PAGE_SIZE, PageFile, RecordFile, SlottedPage, StorageError
from .serializer import (
    collection_from_text,
    collection_to_text,
    graph_from_text,
    graph_to_text,
    load_collection,
    load_graph,
    save_collection,
    save_graph,
)

__all__ = [
    "BufferPool",
    "BufferStats",
    "GraphDatabase",
    "GraphStore",
    "PAGE_SIZE",
    "PageFile",
    "RecordFile",
    "SlottedPage",
    "StorageError",
    "collection_from_text",
    "collection_to_text",
    "graph_from_text",
    "graph_to_text",
    "load_collection",
    "load_graph",
    "save_collection",
    "save_graph",
]
