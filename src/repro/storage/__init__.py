"""Persistence: GraphQL-syntax serialization and the database facade."""

from .buffer import BufferPool, BufferStats
from .database import GraphDatabase
from .faults import FaultStats, FaultyPageFile
from .graphstore import GraphStore
from .pager import (
    PAGE_SIZE,
    ChecksumError,
    PageFile,
    RecordFile,
    SlottedPage,
    StorageError,
    TransientIOError,
)
from .serializer import (
    collection_from_text,
    collection_to_text,
    graph_from_text,
    graph_to_text,
    load_collection,
    load_graph,
    save_collection,
    save_graph,
)

__all__ = [
    "BufferPool",
    "BufferStats",
    "ChecksumError",
    "FaultStats",
    "FaultyPageFile",
    "GraphDatabase",
    "GraphStore",
    "PAGE_SIZE",
    "PageFile",
    "RecordFile",
    "SlottedPage",
    "StorageError",
    "TransientIOError",
    "collection_from_text",
    "collection_to_text",
    "graph_from_text",
    "graph_to_text",
    "load_collection",
    "load_graph",
    "save_collection",
    "save_graph",
]
