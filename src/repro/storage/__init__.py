"""Persistence: GraphQL-syntax serialization and the database facade."""

from .buffer import BufferPool, BufferStats
from .database import GraphDatabase
from .faults import CrashPoint, FaultStats, FaultyPageFile, SimulatedCrash
from .graphstore import GraphStore
from .pager import (
    PAGE_SIZE,
    ChecksumError,
    PageFile,
    RecordFile,
    SlottedPage,
    StorageError,
    TransientIOError,
)
from .serializer import (
    collection_from_text,
    collection_to_text,
    graph_from_text,
    graph_to_text,
    load_collection,
    load_graph,
    save_collection,
    save_graph,
)
from .wal import (
    FSYNC_ALWAYS,
    FSYNC_COMMIT,
    FSYNC_NEVER,
    RecoveryResult,
    WalError,
    WriteAheadLog,
    recover,
    scan_wal,
    wal_path_for,
)

__all__ = [
    "BufferPool",
    "BufferStats",
    "ChecksumError",
    "CrashPoint",
    "FSYNC_ALWAYS",
    "FSYNC_COMMIT",
    "FSYNC_NEVER",
    "FaultStats",
    "FaultyPageFile",
    "GraphDatabase",
    "GraphStore",
    "PAGE_SIZE",
    "PageFile",
    "RecordFile",
    "RecoveryResult",
    "SimulatedCrash",
    "SlottedPage",
    "StorageError",
    "TransientIOError",
    "WalError",
    "WriteAheadLog",
    "collection_from_text",
    "collection_to_text",
    "graph_from_text",
    "graph_to_text",
    "load_collection",
    "load_graph",
    "recover",
    "save_collection",
    "save_graph",
    "scan_wal",
    "wal_path_for",
]
