"""The wire protocol: newline-delimited JSON over TCP.

One request per line, one response line per request, in order.  A
connection is a sequential session; clients that want concurrent queries
open several connections (the server multiplexes them onto the shared
:class:`~repro.service.QueryService` pool, where admission control
applies globally).

Requests (``op`` selects the operation)::

    {"op": "query", "id": "q1", "query": "graph P {...}",
     "document": "data", "client": "alice", "limit": 100,
     "timeout": 1.5, "max_steps": 100000, "max_memory": 1000000,
     "baseline": false, "no_cache": false}
    {"op": "cancel", "id": "c1", "target": "q1"}
    {"op": "stats", "id": "s1", "format": "json"}
    {"op": "explain", "id": "e1", "query": "graph P {...}",
     "document": "data", "analyze": false, "baseline": false}
    {"op": "ping", "id": "p1"}
    {"op": "health", "id": "h1"}
    {"op": "ready", "id": "r1"}

``query`` additionally accepts ``"attempt"`` (1-based retry counter, for
the server's retried-arrival metric), ``"idempotency_key"`` (opting a
mutation-bearing retry into the duplicate-request table) and a remote
trace context — ``"trace"``/``"parent"`` integer span ids — under which
the server roots its request span, so a multi-process fan-out (see
:mod:`repro.cluster`) reconstructs offline as one trace tree; ``health``
returns a liveness report and ``ready`` a boolean plus reason and the
server's bound ``host``/``port`` — the same documents the ``/health``
and ``/ready`` HTTP routes serve.

``stats`` accepts ``"format": "prometheus"`` to receive the text
exposition as ``{"stats_text": "..."}`` instead of the JSON snapshot;
``explain`` responds with ``{"explain": {...}}`` — the same document
``repro-gql explain --json`` prints.

Responses always echo ``id`` and carry ``ok``::

    {"id": "q1", "ok": true, "op": "query", "results": [...],
     "outcome": {"status": "COMPLETE", ...}, "cache": "miss", ...}
    {"id": "c1", "ok": true, "op": "cancel", "cancelled": true}
    {"id": "x", "ok": false, "error": "..."}

``outcome`` is exactly :meth:`repro.runtime.QueryOutcome.to_dict` — the
same serialization ``repro-gql match --json`` prints, so tooling can
consume both uniformly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Protocol revision, echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Upper bound on one request/response line (guards server memory
#: against a hostile or broken peer).
MAX_LINE_BYTES = 16 * 1024 * 1024

VALID_OPS = ("query", "cancel", "stats", "explain", "ping",
             "health", "ready")


class ProtocolError(ValueError):
    """A malformed request or response line."""


def encode(message: Dict[str, Any]) -> bytes:
    """One message as a newline-terminated JSON line."""
    line = json.dumps(message, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8") + b"\n"
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line limit"
        )
    return line


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("line exceeds the protocol size limit")
    if not line.strip():
        # empty and whitespace-only lines get a structured error rather
        # than a json.JSONDecodeError with a confusing position
        raise ProtocolError("empty line (a message must be a JSON object)")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("a message must be a JSON object")
    return message


def validate_request(message: Dict[str, Any]) -> str:
    """Check a request's shape; returns the operation name."""
    op = message.get("op")
    if op not in VALID_OPS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(VALID_OPS)})"
        )
    if op in ("query", "explain") and not isinstance(
            message.get("query"), str):
        raise ProtocolError(f'"{op}" op requires a "query" text field')
    if op == "stats" and message.get("format") not in (
            None, "json", "prometheus"):
        raise ProtocolError(
            '"stats" format must be "json" or "prometheus"')
    if op == "cancel" and not isinstance(message.get("target"), str):
        raise ProtocolError('"cancel" op requires a "target" request id')
    return op


def error_response(request_id: Optional[str], error: str) -> Dict[str, Any]:
    """The failure envelope (``ok: false``)."""
    return {"id": request_id, "ok": False, "error": error}
