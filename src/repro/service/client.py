"""A small synchronous client for the ndjson wire protocol.

One :class:`ServiceClient` wraps one TCP connection (a sequential
session); use several clients — they are cheap — for concurrent load.

    with ServiceClient("127.0.0.1", 7687) as client:
        reply = client.query('graph P { node u <label="A">; }',
                             timeout=1.0)
        print(reply.outcome, len(reply.results))
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.trace import current_span
from ..runtime import QueryOutcome
from .protocol import MAX_LINE_BYTES, ProtocolError, decode, encode


@dataclass
class ClientReply:
    """A decoded query response (wire dict plus typed outcome)."""

    ok: bool
    request_id: Optional[str]
    results: List[Dict[str, Any]] = field(default_factory=list)
    outcome: QueryOutcome = field(default_factory=QueryOutcome)
    cache: str = "bypass"
    error: Optional[str] = None
    retry_after: Optional[float] = None
    duplicate: bool = False
    #: per-document snapshot versions the server answered against
    #: (replica divergence checks compare these)
    versions: Dict[str, int] = field(default_factory=dict)
    raw: Dict[str, Any] = field(default_factory=dict)

    @property
    def rejected(self) -> bool:
        """Whether admission control turned this request away."""
        return self.outcome.status.value == "REJECTED"

    @property
    def shed(self) -> bool:
        """Whether load shedding or a breaker turned this request away."""
        return self.outcome.status.value == "SHED"


class ServiceClient:
    """Blocking client for one server connection.

    *timeout* is the overall per-call budget (socket reads and every
    retry attempt are carved from it); *connect_timeout* bounds TCP
    connection establishment alone and defaults to *timeout* — it is
    the one knob every connect honours, including retry reconnects.

    Retries are off by default (``retries=0``), preserving strict
    one-shot semantics.  With ``retries=N`` the client retries
    *idempotent* calls (queries, reads, cancels — all read-only here)
    up to N extra attempts on connection failures, timeouts and
    protocol desync, reconnecting with full-jitter exponential backoff
    and tagging each resend with an ``attempt`` counter so the server
    can answer declared retries from its duplicate-request table.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7687,
                 timeout: Optional[float] = 30.0,
                 client_name: str = "anon",
                 connect_timeout: Optional[float] = None,
                 retries: int = 0,
                 backoff_base: float = 0.05,
                 backoff_max: float = 2.0,
                 retry_seed: Optional[int] = None) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = (connect_timeout if connect_timeout
                                is not None else timeout)
        self.client_name = client_name
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._rng = random.Random(retry_seed)
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._ids = itertools.count(1)
        self._ever_connected = False
        #: observability: attempts beyond the first, and reconnects
        self.retry_count = 0
        self.reconnects = 0

    # -- connection -----------------------------------------------------------

    def connect(self) -> "ServiceClient":
        """Open the TCP connection (idempotent)."""
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout)
            self._sock.settimeout(self.timeout)
            self._reader = self._sock.makefile("rb")
            if self._ever_connected:
                self.reconnects += 1
            self._ever_connected = True
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the protocol ---------------------------------------------------------

    def call(self, message: Dict[str, Any],
             retryable: bool = False) -> Dict[str, Any]:
        """Send one request dict, block for its response dict.

        With *retryable* true (idempotent calls only) and ``retries``
        configured, connection failures, timeouts and response desync
        trigger a reconnect-and-resend, all attempts sharing one
        overall ``timeout`` budget.
        """
        message.setdefault("id", f"{self.client_name}-{next(self._ids)}")
        # propagate trace context: with tracing enabled, the server roots
        # its request span under this caller's active span, so a cluster
        # fan-out reconstructs offline as ONE tree across processes
        active = current_span()
        if active.enabled:
            message.setdefault("trace", active.trace_id)
            message.setdefault("parent", active.span_id)
        attempts = (self.retries + 1) if retryable else 1
        deadline = (time.monotonic() + self.timeout
                    if self.timeout is not None else None)
        last_exc: Optional[Exception] = None
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                message["attempt"] = attempt
                self.retry_count += 1
                self._backoff(attempt, deadline)
            try:
                return self._call_once(message, deadline)
            except (ConnectionError, ProtocolError, OSError) as exc:
                last_exc = exc
                # the stream may be desynced (a late response could
                # still arrive): drop the connection before retrying
                self.close()
                out_of_time = (deadline is not None
                               and time.monotonic() >= deadline)
                if attempt >= attempts or out_of_time:
                    raise
        raise last_exc  # type: ignore[misc]  # unreachable

    def _call_once(self, message: Dict[str, Any],
                   deadline: Optional[float]) -> Dict[str, Any]:
        """One send/receive exchange under the remaining budget."""
        self.connect()
        assert self._sock is not None and self._reader is not None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout("call budget exhausted")
            # per-attempt deadline: whatever is left of the overall
            # budget, so N retries never exceed one configured timeout
            self._sock.settimeout(remaining)
        self._sock.sendall(encode(message))
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        reply = decode(line)
        reply_id = reply.get("id")
        if reply_id is not None and reply_id != message["id"]:
            # a stale or duplicated frame (e.g. after packet games on a
            # flaky path): the session is out of sync beyond repair
            raise ProtocolError(
                f"response id {reply_id!r} does not match "
                f"request id {message['id']!r}")
        return reply

    def _backoff(self, attempt: int, deadline: Optional[float]) -> None:
        """Sleep with full jitter, capped by the remaining budget."""
        cap = min(self.backoff_max,
                  self.backoff_base * (2 ** (attempt - 2)))
        delay = self._rng.uniform(0.0, cap)
        if deadline is not None:
            delay = min(delay, max(0.0, deadline - time.monotonic()))
        if delay > 0:
            time.sleep(delay)

    def query(
        self,
        query_text: str,
        document: str = "data",
        request_id: Optional[str] = None,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
        max_steps: Optional[int] = None,
        max_memory: Optional[int] = None,
        baseline: bool = False,
        no_cache: bool = False,
        idempotency_key: Optional[str] = None,
    ) -> ClientReply:
        """Run one pattern query; returns a typed :class:`ClientReply`.

        Queries are read-only, so they are retried whenever the client
        has ``retries`` configured.  Passing *idempotency_key* lets the
        server answer a retry from its duplicate-request table instead
        of executing twice (the replayed reply carries
        ``duplicate=True``).
        """
        message: Dict[str, Any] = {
            "op": "query", "query": query_text, "document": document,
            "client": self.client_name,
        }
        if request_id is not None:
            message["id"] = request_id
        if idempotency_key is not None:
            message["idempotency_key"] = idempotency_key
        for key, value in (("limit", limit), ("timeout", timeout),
                           ("max_steps", max_steps),
                           ("max_memory", max_memory)):
            if value is not None:
                message[key] = value
        if baseline:
            message["baseline"] = True
        if no_cache:
            message["no_cache"] = True
        reply = self.call(message, retryable=True)
        outcome = (QueryOutcome.from_dict(reply["outcome"])
                   if isinstance(reply.get("outcome"), dict)
                   else QueryOutcome())
        retry_after = reply.get("retry_after")
        return ClientReply(
            ok=bool(reply.get("ok")),
            request_id=reply.get("id"),
            results=list(reply.get("results", [])),
            outcome=outcome,
            cache=str(reply.get("cache", "bypass")),
            error=reply.get("error"),
            retry_after=(float(retry_after)
                         if retry_after is not None else None),
            duplicate=bool(reply.get("duplicate", False)),
            versions={str(doc): int(version) for doc, version
                      in (reply.get("versions") or {}).items()},
            raw=reply,
        )

    def cancel(self, target: str,
               reason: str = "cancelled by client") -> bool:
        """Cancel an in-flight request by id; True when it was found."""
        reply = self.call({"op": "cancel", "target": target,
                           "reason": reason}, retryable=True)
        if not reply.get("ok"):
            raise ProtocolError(reply.get("error", "cancel failed"))
        return bool(reply.get("cancelled"))

    def stats(self, format: Optional[str] = None):
        """The server's metrics snapshot.

        ``format="prometheus"`` returns the text exposition string;
        the default (or ``"json"``) returns the JSON snapshot dict.
        """
        message: Dict[str, Any] = {"op": "stats"}
        if format is not None:
            message["format"] = format
        reply = self.call(message, retryable=True)
        if not reply.get("ok"):
            raise ProtocolError(reply.get("error", "stats failed"))
        if format == "prometheus":
            return reply["stats_text"]
        return reply["stats"]

    def explain(
        self,
        query_text: str,
        document: str = "data",
        analyze: bool = False,
        baseline: bool = False,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """The server's EXPLAIN [ANALYZE] document for one query."""
        message: Dict[str, Any] = {
            "op": "explain", "query": query_text, "document": document,
        }
        if analyze:
            message["analyze"] = True
        if baseline:
            message["baseline"] = True
        for key, value in (("limit", limit), ("timeout", timeout)):
            if value is not None:
                message[key] = value
        reply = self.call(message, retryable=True)
        if not reply.get("ok"):
            raise ProtocolError(reply.get("error", "explain failed"))
        return reply["explain"]

    def ping(self) -> Dict[str, Any]:
        """Round-trip liveness check; returns the server's ping reply."""
        reply = self.call({"op": "ping"}, retryable=True)
        if not reply.get("ok"):
            raise ProtocolError(reply.get("error", "ping failed"))
        return reply

    def health(self) -> Dict[str, Any]:
        """The server's liveness report (drain, recovery, breakers)."""
        reply = self.call({"op": "health"}, retryable=True)
        if not reply.get("ok"):
            raise ProtocolError(reply.get("error", "health failed"))
        return reply["health"]

    def ready(self) -> Tuple[bool, str]:
        """Whether the server is accepting work, plus the reason."""
        reply = self.call({"op": "ready"}, retryable=True)
        if not reply.get("ok"):
            raise ProtocolError(reply.get("error", "ready failed"))
        return bool(reply.get("ready")), str(reply.get("reason", ""))
