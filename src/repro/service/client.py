"""A small synchronous client for the ndjson wire protocol.

One :class:`ServiceClient` wraps one TCP connection (a sequential
session); use several clients — they are cheap — for concurrent load.

    with ServiceClient("127.0.0.1", 7687) as client:
        reply = client.query('graph P { node u <label="A">; }',
                             timeout=1.0)
        print(reply.outcome, len(reply.results))
"""

from __future__ import annotations

import itertools
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..runtime import QueryOutcome
from .protocol import MAX_LINE_BYTES, ProtocolError, decode, encode


@dataclass
class ClientReply:
    """A decoded query response (wire dict plus typed outcome)."""

    ok: bool
    request_id: Optional[str]
    results: List[Dict[str, Any]] = field(default_factory=list)
    outcome: QueryOutcome = field(default_factory=QueryOutcome)
    cache: str = "bypass"
    error: Optional[str] = None
    raw: Dict[str, Any] = field(default_factory=dict)

    @property
    def rejected(self) -> bool:
        """Whether the service shed this request at admission."""
        return self.outcome.status.value == "REJECTED"


class ServiceClient:
    """Blocking client for one server connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7687,
                 timeout: Optional[float] = 30.0,
                 client_name: str = "anon") -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_name = client_name
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._ids = itertools.count(1)

    # -- connection -----------------------------------------------------------

    def connect(self) -> "ServiceClient":
        """Open the TCP connection (idempotent)."""
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
            self._reader = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the protocol ---------------------------------------------------------

    def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request dict, block for its response dict."""
        self.connect()
        message.setdefault("id", f"{self.client_name}-{next(self._ids)}")
        assert self._sock is not None and self._reader is not None
        self._sock.sendall(encode(message))
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode(line)

    def query(
        self,
        query_text: str,
        document: str = "data",
        request_id: Optional[str] = None,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
        max_steps: Optional[int] = None,
        max_memory: Optional[int] = None,
        baseline: bool = False,
        no_cache: bool = False,
    ) -> ClientReply:
        """Run one pattern query; returns a typed :class:`ClientReply`."""
        message: Dict[str, Any] = {
            "op": "query", "query": query_text, "document": document,
            "client": self.client_name,
        }
        if request_id is not None:
            message["id"] = request_id
        for key, value in (("limit", limit), ("timeout", timeout),
                           ("max_steps", max_steps),
                           ("max_memory", max_memory)):
            if value is not None:
                message[key] = value
        if baseline:
            message["baseline"] = True
        if no_cache:
            message["no_cache"] = True
        reply = self.call(message)
        outcome = (QueryOutcome.from_dict(reply["outcome"])
                   if isinstance(reply.get("outcome"), dict)
                   else QueryOutcome())
        return ClientReply(
            ok=bool(reply.get("ok")),
            request_id=reply.get("id"),
            results=list(reply.get("results", [])),
            outcome=outcome,
            cache=str(reply.get("cache", "bypass")),
            error=reply.get("error"),
            raw=reply,
        )

    def cancel(self, target: str,
               reason: str = "cancelled by client") -> bool:
        """Cancel an in-flight request by id; True when it was found."""
        reply = self.call({"op": "cancel", "target": target,
                           "reason": reason})
        if not reply.get("ok"):
            raise ProtocolError(reply.get("error", "cancel failed"))
        return bool(reply.get("cancelled"))

    def stats(self, format: Optional[str] = None):
        """The server's metrics snapshot.

        ``format="prometheus"`` returns the text exposition string;
        the default (or ``"json"``) returns the JSON snapshot dict.
        """
        message: Dict[str, Any] = {"op": "stats"}
        if format is not None:
            message["format"] = format
        reply = self.call(message)
        if not reply.get("ok"):
            raise ProtocolError(reply.get("error", "stats failed"))
        if format == "prometheus":
            return reply["stats_text"]
        return reply["stats"]

    def explain(
        self,
        query_text: str,
        document: str = "data",
        analyze: bool = False,
        baseline: bool = False,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """The server's EXPLAIN [ANALYZE] document for one query."""
        message: Dict[str, Any] = {
            "op": "explain", "query": query_text, "document": document,
        }
        if analyze:
            message["analyze"] = True
        if baseline:
            message["baseline"] = True
        for key, value in (("limit", limit), ("timeout", timeout)):
            if value is not None:
                message[key] = value
        reply = self.call(message)
        if not reply.get("ok"):
            raise ProtocolError(reply.get("error", "explain failed"))
        return reply["explain"]

    def ping(self) -> Dict[str, Any]:
        """Round-trip liveness check; returns the server's ping reply."""
        reply = self.call({"op": "ping"})
        if not reply.get("ok"):
            raise ProtocolError(reply.get("error", "ping failed"))
        return reply
