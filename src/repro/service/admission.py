"""Admission control: bounded in-flight work with per-client quotas.

The controller never blocks and never queues unboundedly: a request is
either *admitted* (it may run now or wait in the executor's bounded
backlog) or *rejected* with a machine-readable reason.  Rejection is
load shedding — the caller gets a structured ``REJECTED`` outcome in
microseconds instead of a timeout after seconds in a hopeless queue.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from .config import ServiceConfig

#: Reason strings returned to rejected clients (stable, greppable).
REASON_QUEUE_FULL = "queue full"
REASON_CLIENT_QUOTA = "client quota exceeded"
REASON_DRAINING = "service draining"
REASON_DUPLICATE_ID = "duplicate request id"
REASON_INVALID_QUERY = "invalid_query"


class AdmissionController:
    """Tracks in-flight requests against the configured bounds."""

    def __init__(self, config: ServiceConfig) -> None:
        self._config = config
        self._lock = threading.Lock()
        self._in_flight = 0
        self._per_client: Dict[str, int] = {}
        self._draining = False

    def try_admit(self, client: str) -> Optional[str]:
        """Admit a request or return a rejection reason.

        On admission the request counts against the global and per-client
        bounds until :meth:`release` is called (exactly once).
        """
        with self._lock:
            if self._draining:
                return REASON_DRAINING
            if self._in_flight >= self._config.max_in_flight:
                return REASON_QUEUE_FULL
            if self._per_client.get(client, 0) >= self._config.per_client:
                return REASON_CLIENT_QUOTA
            self._in_flight += 1
            self._per_client[client] = self._per_client.get(client, 0) + 1
            return None

    def release(self, client: str) -> None:
        """Return an admitted request's slots (call exactly once)."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            remaining = self._per_client.get(client, 0) - 1
            if remaining > 0:
                self._per_client[client] = remaining
            else:
                self._per_client.pop(client, None)

    def start_draining(self) -> None:
        """Stop admitting; already admitted requests keep their slots."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        """Whether the controller has stopped admitting."""
        with self._lock:
            return self._draining

    @property
    def in_flight(self) -> int:
        """Currently admitted, not yet released requests."""
        with self._lock:
            return self._in_flight

    def client_load(self, client: str) -> int:
        """One client's current in-flight count."""
        with self._lock:
            return self._per_client.get(client, 0)
