"""The serving layer: concurrent query execution over registered graphs.

The matcher, planner and FLWR engine are single-caller library code; this
package turns them into a *service* — the shape the ROADMAP's "heavy
traffic" north star requires:

* :class:`QueryService` — the facade: a bounded worker pool, admission
  control with per-client quotas and load shedding, a prepared-query /
  plan cache, an LRU result cache invalidated by graph versions, and
  per-request cancellation built on the runtime governance primitives.
* :class:`QueryServer` / :class:`ServiceClient` — a newline-delimited
  JSON wire protocol over TCP (``repro-gql serve``), with graceful drain
  on SIGTERM.
* :class:`ServiceMetrics` — admitted/rejected/cache/outcome counters and
  a latency histogram, exposed through the ``stats`` request.

See ``docs/service.md`` for the protocol specification and tuning notes.
"""

from .admission import AdmissionController
from .cache import CachedPlan, LRUCache, PlanCache, ResultCache
from .config import ServiceConfig
from .metrics import LatencyHistogram, ServiceMetrics
from .service import QueryRequest, QueryResponse, QueryService
from .client import ServiceClient
from .server import QueryServer

__all__ = [
    "AdmissionController",
    "CachedPlan",
    "LRUCache",
    "LatencyHistogram",
    "PlanCache",
    "QueryRequest",
    "QueryResponse",
    "QueryServer",
    "QueryService",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
]
